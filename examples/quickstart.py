#!/usr/bin/env python3
"""Quickstart: byte caching an encoder/decoder pair, no network needed.

Demonstrates the core public API of :mod:`repro.core`:

* configure a fingerprint scheme (the paper's w=16, k=4);
* build an encoder and a decoder sharing that scheme;
* push packets through and watch redundancy being eliminated;
* see what a lost packet does (§IV in three paragraphs).

Run:  python examples/quickstart.py
"""

import random

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.policies import DecoderPolicy, NaivePolicy, PacketMeta
from repro.net.checksum import payload_checksum

FLOW = ("server", 80, "client", 5000)


def main() -> None:
    rng = random.Random(7)
    scheme = FingerprintScheme(window=16, zero_bits=4)  # §III-B parameters

    encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
    decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())

    def send(index: int, payload: bytes, lose: bool = False) -> None:
        """Encode a packet, optionally 'lose' it, decode at the far end."""
        meta = PacketMeta(packet_id=index, flow=FLOW,
                          tcp_seq=index * 1460, counter=index)
        result = encoder.encode(payload, meta)
        saved = result.bytes_in - result.bytes_out
        status = "lost in transit!" if lose else ""
        print(f"  pkt {index}: {result.bytes_in:5d} B -> "
              f"{result.bytes_out:5d} B on the wire "
              f"({max(0, saved):4d} B saved, "
              f"{len(result.regions)} region(s)) {status}")
        if lose:
            return
        decoded = decoder.decode(result.data, meta,
                                 checksum=payload_checksum(payload))
        if decoded.ok:
            assert decoded.payload == payload
        else:
            print(f"         decoder DROPPED pkt {index}: {decoded.status.value}"
                  f" (missing {len(decoded.missing)} fingerprint(s))")

    print("== 1. Fresh content passes through (nothing cached yet)")
    base = rng.randbytes(1460)
    send(0, base)

    print("\n== 2. Repeated content is eliminated")
    send(1, base)                                    # identical packet
    send(2, base[:700] + rng.randbytes(760))         # half overlap

    print("\n== 3. Packet loss desynchronises the caches (§IV)")
    fresh = rng.randbytes(1460)
    send(3, fresh, lose=True)      # carrier packet never reaches the decoder
    send(4, fresh)                 # encoded against pkt 3 -> undecodable

    print("\nEncoder stats:", encoder.stats)
    print("Decoder stats:", decoder.stats)
    print("\nThe paper's loss-robust policies (cache_flush / tcp_seq /"
          " k_distance)\nprevent step 3 from snowballing into a stalled"
          " connection — see\nexamples/wireless_download.py")


if __name__ == "__main__":
    main()
