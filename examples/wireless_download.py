#!/usr/bin/env python3
"""Reproduce the paper's core experiment on the simulated testbed.

A client downloads a ~574 KB file from a server across a 1 MB/s wireless
segment (Fig. 3).  For a set of packet loss rates, every encoding policy
is compared against a no-DRE baseline on the paper's two metrics: bytes
crossing the constrained link and download time.

Run:  python examples/wireless_download.py [loss% ...]
"""

import sys

from repro.experiments import ExperimentConfig, run_transfer
from repro.metrics import format_table


def main() -> None:
    losses = [float(arg) / 100 for arg in sys.argv[1:]] or [0.0, 0.01, 0.05]
    policies = [
        ("(no DRE)", None, {}),
        ("naive", "naive", {}),
        ("cache_flush", "cache_flush", {}),
        ("tcp_seq", "tcp_seq", {}),
        ("k_distance", "k_distance", {"k": 8}),
        ("adaptive_k", "adaptive_k", {}),
    ]

    for loss in losses:
        rows = []
        baseline = None
        for label, policy, kwargs in policies:
            result = run_transfer(ExperimentConfig(
                corpus="file1", policy=policy, policy_kwargs=dict(kwargs),
                loss_rate=loss, seed=11))
            if policy is None:
                baseline = result
            if result.download_time is None:
                time_cell = "stalled"
                ratio_cell = "-"
            else:
                time_cell = f"{result.download_time:.2f}s"
                ratio_cell = f"{result.download_time / baseline.download_time:.2f}x"
            rows.append([
                label,
                "yes" if result.completed else "NO",
                f"{result.forward_bytes_on_link:,}",
                f"{result.forward_bytes_on_link / baseline.forward_bytes_on_link:.2f}",
                time_cell,
                ratio_cell,
                f"{result.perceived_loss_rate:.1%}",
            ])
        print(format_table(
            f"574 KB download at {loss:.0%} packet loss (1 MB/s link)",
            ["policy", "done", "bytes on link", "bytes ratio",
             "time", "time ratio", "perceived loss"],
            rows))
        print()

    print("Reading guide: the naive policy stalls at any non-zero loss")
    print("(§IV); cache_flush keeps the lowest delay penalty (§VII); the")
    print("perceived loss column shows the §VII amplification effect.")


if __name__ == "__main__":
    main()
