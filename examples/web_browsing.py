#!/usr/bin/env python3
"""A browsing session over HTTP through the byte-caching gateways.

Table I's web-page row comes from temporal locality: pages of one site
share templates, navigation and assets, so each successive page costs
less on the constrained link.  This example drives the real HTTP layer
(requests, status lines, Content-Length) across the Fig. 3 testbed and
prints the per-page cost as the gateway caches warm up — byte caching
needs no knowledge of HTTP to do this (§I: protocol independence).

Run:  python examples/web_browsing.py
"""

from repro.app.http import HTTPClient, HTTPServer
from repro.experiments import ExperimentConfig
from repro.experiments.runner import SERVER_ADDR, build_testbed
from repro.metrics import format_table
from repro.workload.objects import generate_webpage_session

PAGE_SIZE = 24 * 1024
N_PAGES = 8


def split_pages(blob: bytes, n_pages: int):
    """Slice a browsing-session byte stream into per-page resources."""
    return {f"/page{i}.html": blob[i * PAGE_SIZE: (i + 1) * PAGE_SIZE]
            for i in range(n_pages)}


def main() -> None:
    config = ExperimentConfig(policy="cache_flush", loss_rate=0.0, seed=11)
    testbed = build_testbed(config)
    session = generate_webpage_session(N_PAGES * PAGE_SIZE, seed=3,
                                       page_size=PAGE_SIZE)
    pages = split_pages(session, N_PAGES)
    HTTPServer(testbed.server_stack, pages)
    client = HTTPClient(testbed.client_stack, testbed.sim)

    rows = []
    state = {"before": 0, "index": 0}

    def browse(index: int) -> None:
        state["before"] = testbed.bottleneck_forward.stats.bytes_offered
        path = f"/page{index}.html"

        def done(response) -> None:
            cost = (testbed.bottleneck_forward.stats.bytes_offered
                    - state["before"])
            rows.append([path, response.status, len(response.body),
                         cost, f"{cost / max(1, len(response.body)):.2f}"])
            if index + 1 < N_PAGES:
                testbed.sim.after(0.02, browse, index + 1)
            else:
                testbed.sim.stop()

        client.get(SERVER_ADDR, path, on_done=done)

    browse(0)
    testbed.sim.run(until=60)

    print(format_table(
        f"browsing {N_PAGES} pages of one site through byte-caching "
        "gateways",
        ["page", "status", "page bytes", "link bytes", "link/page"],
        rows))
    total_pages = sum(row[2] for row in rows)
    total_link = sum(row[3] for row in rows)
    print(f"\nsession total: {total_pages:,} page bytes for "
          f"{total_link:,} bytes on the wireless link "
          f"({1 - total_link / total_pages:.0%} saved)")
    print("The first page pays full price; every later page rides the")
    print("site template already sitting in the gateway caches — the")
    print("temporal locality behind Table I's web-page numbers.")


if __name__ == "__main__":
    main()
