#!/usr/bin/env python3
"""k-distance byte caching over UDP (§V-C).

The k-distance scheme inspects no TCP state, so it "is applicable to
not only TCP but also UDP traffic".  This example streams media-like
datagrams (a container header plus content half-overlapping the
previous frame) across the lossy wireless segment and measures byte
savings and frame delivery for several k.

There are no retransmissions here: a frame either survives (possibly
thanks only to reference packets bounding the damage) or it is gone —
exactly the trade-off a streaming deployment cares about.

Run:  python examples/udp_streaming.py
"""

from repro.experiments.streaming import StreamingConfig, run_streaming
from repro.metrics import format_table


def main() -> None:
    for loss in (0.0, 0.05):
        baseline = run_streaming(StreamingConfig(policy=None,
                                                 loss_rate=loss))
        rows = [["(no DRE)", baseline.frames_delivered,
                 f"{baseline.bytes_on_link:,}", "1.00", 0]]
        for k in (4, 8, 32):
            result = run_streaming(StreamingConfig(policy="k_distance",
                                                   k=k, loss_rate=loss))
            rows.append([
                f"k_distance(k={k})", result.frames_delivered,
                f"{result.bytes_on_link:,}",
                f"{result.bytes_on_link / baseline.bytes_on_link:.2f}",
                result.undecodable,
            ])
        print(format_table(
            f"UDP stream: {baseline.frames_sent} frames of 1200 B at "
            f"{loss:.0%} loss",
            ["scheme", "frames delivered", "bytes on link", "bytes ratio",
             "undecodable"],
            rows))
        print()
    print("Larger k compresses better but each loss now knocks out more")
    print("of the following frames (no retransmissions on UDP) — the")
    print("§V-C trade-off in its purest form.")


if __name__ == "__main__":
    main()
