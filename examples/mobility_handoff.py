#!/usr/bin/env python3
"""The §II mobility story: why byte caching belongs at the IP layer.

A client downloads a file over a "cellular" path equipped with
byte-caching gateways, then hands off to a "WiFi" path with none
(its address is preserved, as Mobile IP would).  Three gateway modes:

* ``none``      — no byte caching: TCP is end-to-end, handoff is fine;
* ``ip-dre``    — IP-level byte caching (this paper's design): TCP is
  still end-to-end; packets lost in the handoff are retransmitted via
  the new path and the download resumes (§II-B);
* ``tcp-proxy`` — transparent split-TCP byte caching (how commercial
  appliances deploy, Fig. 1): three separate TCP connections pretend to
  be one.  After the handoff the client's ACKs reach the *real* server
  inside a connection whose sequence numbers they do not match, and the
  transfer stalls (Fig. 1, t5).

Run:  python examples/mobility_handoff.py
"""

from repro.experiments.mobility import MobilityConfig, run_mobility
from repro.metrics import format_table


def main() -> None:
    rows = []
    for mode, label in (("none", "no byte caching"),
                        ("ip-dre", "IP-level DRE (this paper)"),
                        ("tcp-proxy", "split-TCP DRE (appliances)")):
        result = run_mobility(MobilityConfig(
            mode=mode, handoff_at=0.25, loss_rate_a=0.01, seed=11))
        outcome = result.outcome
        rows.append([
            label,
            "completed" if result.completed else "STALLED",
            f"{outcome.bytes_received:,} / {outcome.expected_size:,}",
            (f"{outcome.finished_at:.2f}s" if outcome.finished_at is not None
             and result.completed else "-"),
            f"{result.bytes_path_a:,}",
            f"{result.bytes_path_b:,}",
        ])
    print(format_table(
        "574 KB download with a cellular→WiFi handoff at t=0.25 s",
        ["gateway mode", "outcome", "bytes received", "finish",
         "bytes path A", "bytes path B"],
        rows))
    print()
    print("The split-TCP proxy compresses beautifully on path A — and dies")
    print("at the handoff: the client's ACKs land in the server's own TCP")
    print("connection with alien sequence numbers.  IP-level byte caching")
    print("(this paper's setting) keeps TCP end-to-end and survives, at")
    print("the cost of the loss-sensitivity the rest of the paper studies.")


if __name__ == "__main__":
    main()
