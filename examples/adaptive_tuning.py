#!/usr/bin/env python3
"""The §IX "tune-able" byte caching scheme in action.

The paper's conclusion asks for a scheme that "can dynamically adapt
how aggressively it compresses packets based on the packet loss rate in
the underlying communication channel".  ``AdaptiveKDistancePolicy``
does exactly that: it estimates the loss rate from observed TCP
retransmissions and widens or narrows the k-distance reference spacing
(k ≈ target / p̂).

This example runs the adaptive policy against fixed-k configurations
across a loss sweep, then shows the estimator tracking a mid-transfer
loss-rate change.

Run:  python examples/adaptive_tuning.py
"""

from repro.app.transfer import FileClient, FileServer
from repro.experiments import ExperimentConfig, run_transfer
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.metrics import format_table
from repro.workload.corpus import corpus_object


def sweep() -> None:
    losses = (0.0, 0.02, 0.08)
    schemes = [("k_distance(k=4)", "k_distance", {"k": 4}),
               ("k_distance(k=32)", "k_distance", {"k": 32}),
               ("adaptive_k", "adaptive_k", {})]
    rows = []
    for label, policy, kwargs in schemes:
        cells = [label]
        for loss in losses:
            result = run_transfer(ExperimentConfig(
                corpus="file1", policy=policy, policy_kwargs=dict(kwargs),
                loss_rate=loss, seed=11))
            if result.download_time is None:
                cells.append("stalled")
            else:
                cells.append(f"{result.download_time:.2f}s / "
                             f"{result.forward_bytes_on_link // 1000}kB")
        rows.append(cells)
    print(format_table(
        "download time / bytes on link, fixed k vs adaptive",
        ["scheme"] + [f"{loss:.0%} loss" for loss in losses], rows))
    print()


def track_changing_channel() -> None:
    """Flip the channel from clean to 10 % loss mid-transfer and watch
    the adaptive policy shrink k."""
    config = ExperimentConfig(corpus="file1", policy="adaptive_k",
                              seed=11, time_limit=300.0)
    testbed = build_testbed(config)
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                 on_done=lambda _o: testbed.sim.stop())

    def degrade():
        testbed.bottleneck_forward.loss_rate = 0.10
        print(f"t={testbed.sim.now:6.3f}s  channel degrades to 10% loss")

    policy = testbed.gateways.encoder.policy
    samples = []

    def sample():
        samples.append((testbed.sim.now, policy.loss_estimate, policy.k))
        testbed.sim.after(0.25, sample)

    testbed.sim.after(0.20, degrade)
    testbed.sim.after(0.05, sample)
    testbed.sim.run(until=60.0)

    print("\n   time    loss estimate    chosen k")
    for when, estimate, k in samples[:24]:
        print(f"  {when:6.2f}s   {estimate:8.3f}       {k:4d}")
    print("\nThe estimator reacts to the retransmission burst and pulls k")
    print("down toward 1/p, trading compression for decodability (§VII).")


if __name__ == "__main__":
    sweep()
    track_changing_channel()
