#!/usr/bin/env python3
"""Anatomy of the §IV TCP connection stall, packet by packet.

Forces the loss of exactly one data packet under the naive encoding
policy and prints the resulting circular dependency as it unfolds:
retransmissions leave the encoder ~20 bytes long (encoded against a
copy of themselves), the decoder drops every one of them, TCP backs off
exponentially, and the connection finally aborts.

Run:  python examples/stall_anatomy.py
"""

from repro.app.transfer import FileClient, FileServer
from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.workload.corpus import corpus_object


def main() -> None:
    config = ExperimentConfig(
        corpus="ebook", file_size=30 * 1460, corpus_seed=3,
        policy="naive", seed=2, tcp_max_retries=6,
        tcp_min_rto=0.05, tcp_max_rto=1.0, time_limit=60.0)
    testbed = build_testbed(config)
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data))

    link = testbed.bottleneck_forward
    original_send = link.send
    state = {"count": 0, "dropped": False}

    def tampering_send(pkt):
        segment = pkt.tcp
        if segment is not None and segment.data:
            state["count"] += 1
            if state["count"] == 4 and not state["dropped"]:
                state["dropped"] = True
                print(f"t={testbed.sim.now * 1000:7.1f} ms   "
                      f"XX seq={segment.seq:6d} {len(segment.data):5d} B"
                      f"   <-- THE packet loss")
                return
            marker = "  "
            note = ""
            if state["dropped"] and len(segment.data) < 60:
                note = "  <-- retransmission encoded against itself"
            print(f"t={testbed.sim.now * 1000:7.1f} ms   "
                  f"{marker} seq={segment.seq:6d} {len(segment.data):5d} B"
                  f"{note}")
        original_send(pkt)

    link.send = tampering_send
    print("packets offered to the 1 MB/s wireless segment "
          "(sizes are DRE-encoded):\n")
    testbed.sim.run(until=config.time_limit)

    print()
    decoder_stats = testbed.gateways.decoder.stats
    server_conn = testbed.server_stack.connections()[0]
    print(f"decoder drops (undecodable): {decoder_stats.dropped_total}")
    print(f"server connection: {server_conn.state.value} "
          f"({server_conn.close_reason}) after "
          f"{server_conn.stats.timeouts} timeouts")
    print(f"client received {outcome.bytes_received:,} of {len(data):,} "
          f"bytes ({outcome.fraction_retrieved:.1%}) — "
          "the transfer came to an end at the first loss (§IV-C)")


if __name__ == "__main__":
    main()
