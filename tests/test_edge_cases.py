"""Edge-case coverage across the core and gateway layers."""

import random

import pytest

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.policies import (DecoderPolicy, NaivePolicy,
                                 PacketMeta)
from repro.net.checksum import payload_checksum

FLOW = ("s", 80, "c", 5000)


def pair(**scheme_kwargs):
    scheme = FingerprintScheme(**scheme_kwargs)
    return (ByteCachingEncoder(scheme, ByteCache(), NaivePolicy()),
            ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy()))


def roundtrip(encoder, decoder, payload, index=0):
    meta = PacketMeta(packet_id=index, flow=FLOW, tcp_seq=index * 1460,
                      counter=index)
    result = encoder.encode(payload, meta)
    outcome = decoder.decode(result.data, meta,
                             checksum=payload_checksum(payload))
    assert outcome.ok
    assert outcome.payload == payload
    return result


class TestTinyPayloads:
    def test_empty_payload(self):
        encoder, decoder = pair()
        result = roundtrip(encoder, decoder, b"")
        assert not result.encoded
        assert result.bytes_out == 2  # shim only

    def test_single_byte(self):
        encoder, decoder = pair()
        roundtrip(encoder, decoder, b"x")

    def test_below_window_size(self):
        encoder, decoder = pair()
        roundtrip(encoder, decoder, b"a" * 15)   # window is 16

    def test_exactly_window_size(self):
        encoder, decoder = pair()
        roundtrip(encoder, decoder, bytes(range(16)))

    def test_repeated_tiny_payloads_never_encoded(self):
        """Payloads shorter than min_region_length can never produce a
        worthwhile region."""
        encoder, decoder = pair()
        blob = b"0123456789abcd"  # 14 bytes == FIELD_SIZE
        for index in range(5):
            result = roundtrip(encoder, decoder, blob, index)
            assert not result.encoded


class TestSamplingDensities:
    def test_zero_bits_zero_selects_every_offset(self):
        encoder, decoder = pair(zero_bits=0)
        rng = random.Random(0)
        base = rng.randbytes(800)
        roundtrip(encoder, decoder, base, 0)
        result = roundtrip(encoder, decoder, base, 1)
        assert result.encoded

    def test_sparse_sampling_still_roundtrips(self):
        encoder, decoder = pair(zero_bits=8)
        rng = random.Random(1)
        base = rng.randbytes(1460)
        roundtrip(encoder, decoder, base, 0)
        roundtrip(encoder, decoder, base, 1)

    def test_wide_window(self):
        encoder, decoder = pair(window=64)
        rng = random.Random(2)
        base = rng.randbytes(1460)
        roundtrip(encoder, decoder, base, 0)
        result = roundtrip(encoder, decoder, base, 1)
        assert result.encoded


class TestHighlyRepetitivePayloads:
    def test_all_zero_payload(self):
        encoder, decoder = pair()
        zero = bytes(1460)
        roundtrip(encoder, decoder, zero, 0)
        result = roundtrip(encoder, decoder, zero, 1)
        # Constant content: every window has the same fingerprint; the
        # second copy must still reconstruct exactly.
        assert result.bytes_out <= result.bytes_in + 2

    def test_periodic_payload(self):
        encoder, decoder = pair()
        periodic = b"abcdefgh" * 180
        roundtrip(encoder, decoder, periodic, 0)
        roundtrip(encoder, decoder, periodic, 1)

    def test_internal_self_similarity(self):
        """A payload repeating its own first half: regions may only
        reference *cached* packets, never the packet itself."""
        encoder, decoder = pair()
        rng = random.Random(3)
        half = rng.randbytes(730)
        roundtrip(encoder, decoder, half + half, 0)


class TestOracleArmedBoundaries:
    """§III-B's ``len > 14`` region floor and degenerate payloads, with
    the verification oracles armed — the edge geometry must neither
    corrupt bytes nor trip a safety oracle."""

    @staticmethod
    def _armed_pair(policy_name, **scheme_kwargs):
        from repro.core.policies import make_policy_pair
        from repro.verify import VerificationHarness

        scheme = FingerprintScheme(**scheme_kwargs)
        enc_policy, dec_policy = make_policy_pair(policy_name)
        encoder = ByteCachingEncoder(scheme, ByteCache(), enc_policy)
        decoder = ByteCachingDecoder(scheme, ByteCache(), dec_policy)
        harness = VerificationHarness()
        harness.attach_cores(encoder, decoder)
        return encoder, decoder, harness

    @pytest.mark.parametrize("policy", ["cache_flush", "tcp_seq",
                                        "k_distance"])
    def test_zero_length_payloads_with_oracles(self, policy):
        encoder, decoder, harness = self._armed_pair(policy)
        for index in range(3):
            meta = PacketMeta(packet_id=index, flow=FLOW,
                              tcp_seq=index * 1460, counter=index)
            result = encoder.encode(b"", meta)
            assert not result.encoded
            outcome = decoder.decode(result.data, meta,
                                     checksum=payload_checksum(b""))
            assert outcome.ok and outcome.payload == b""
        assert harness.violations == 0

    def _boundary_roundtrip(self, shared):
        """Ship a payload sharing exactly ``len(shared)`` bytes with a
        cached packet; returns how many regions reached the oracles.

        The harness's ``on_region`` hook fires at the region finder,
        *before* the encoder's whole-packet net-loss veto, so
        ``regions_checked`` observes the §III-B length floor exactly
        (a 15-byte region may clear the floor yet still ship raw
        because one encoding field does not pay for itself).
        """
        # window=8 < 14 so sub-floor matches are constructible;
        # zero_bits=0 anchors every offset so the shared run is found.
        encoder, decoder, harness = self._armed_pair(
            "tcp_seq", window=8, zero_bits=0)
        stored = b"\xf0" * 20 + shared + b"\xf1" * 20
        fresh = b"\xf2" * 20 + shared + b"\xf3" * 20
        for index, payload in enumerate((stored, fresh)):
            meta = PacketMeta(packet_id=index, flow=FLOW,
                              tcp_seq=index * 1460, counter=index)
            result = encoder.encode(payload, meta)
            outcome = decoder.decode(result.data, meta,
                                     checksum=payload_checksum(payload))
            assert outcome.ok and outcome.payload == payload
        assert harness.violations == 0
        return harness.regions_checked

    def test_at_or_below_region_floor_never_found(self):
        """§III-B line B.8 encodes only when a region beats the 14-byte
        encoding field; the implementation floor is
        ``MIN_REGION_LENGTH = FIELD_SIZE + 1`` with a ``<=`` guard, so
        14- and 15-byte shared runs must never reach the region stream."""
        assert self._boundary_roundtrip(bytes(range(1, 15))) == 0   # == FIELD_SIZE
        assert self._boundary_roundtrip(bytes(range(1, 16))) == 0   # == floor

    def test_first_length_past_floor_is_found(self):
        """One byte past the floor the region is found and judged by
        the oracles — and the payload still reconstructs exactly."""
        assert self._boundary_roundtrip(bytes(range(1, 17))) == 1


class TestGatewayAccounting:
    def test_wire_tag_charges_options_bytes(self):
        from repro.gateway import GatewayPair
        from repro.net.checksum import payload_checksum as cksum
        from repro.net.packet import IPPacket, PROTO_TCP, TCPSegment
        from repro.sim import Simulator

        sim = Simulator()
        gateways = GatewayPair.create(sim, policy="ack_gated",
                                      data_dst="10.0.1.1")

        class Sink:
            def __init__(self):
                self.packets = []

            def send(self, pkt):
                self.packets.append(pkt)

        sink = Sink()
        gateways.encoder.set_default_route(sink)
        data = random.Random(4).randbytes(1000)
        segment = TCPSegment(src_port=80, dst_port=5000, seq=0, ack=0,
                             flags=TCPSegment.ACK, window=100, data=data,
                             checksum=cksum(data))
        pkt = IPPacket(src="10.0.2.1", dst="10.0.1.1", proto=PROTO_TCP,
                       payload=segment)
        before_header = segment.header_size
        gateways.encoder.receive(pkt)
        out = sink.packets[0]
        assert out.tcp.dre_wire_tag is not None
        assert out.tcp.header_size == before_header + 4

    def test_custom_forward_predicate(self):
        from repro.core.cache import ByteCache as Cache
        from repro.gateway.middlebox import EncoderGateway
        from repro.net.packet import IPPacket, PROTO_TCP, TCPSegment
        from repro.sim import Simulator

        sim = Simulator()
        gateway = EncoderGateway(
            sim, "enc", "10.255.9.1", FingerprintScheme(), Cache(),
            NaivePolicy(), forward_pred=lambda pkt: pkt.dst == "10.9.9.9")

        class Sink:
            def __init__(self):
                self.packets = []

            def send(self, pkt):
                self.packets.append(pkt)

        sink = Sink()
        gateway.set_default_route(sink)
        data = b"z" * 500
        segment = TCPSegment(src_port=80, dst_port=5000, seq=0, ack=0,
                             flags=TCPSegment.ACK, window=100, data=data)
        gateway.receive(IPPacket(src="a", dst="10.1.1.1", proto=PROTO_TCP,
                                 payload=segment))
        assert not sink.packets[0].tcp.dre_encoded  # predicate said no
        segment2 = TCPSegment(src_port=80, dst_port=5000, seq=0, ack=0,
                              flags=TCPSegment.ACK, window=100, data=data)
        gateway.receive(IPPacket(src="a", dst="10.9.9.9", proto=PROTO_TCP,
                                 payload=segment2))
        assert sink.packets[1].tcp.dre_encoded
