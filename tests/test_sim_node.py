"""Unit tests for nodes, hosts and static routing."""

import pytest

from repro.net.packet import IPPacket, PROTO_TCP, PROTO_UDP, TCPSegment
from repro.sim import Host, Link, Middlebox, Node, Simulator
from repro.sim.trace import Tracer


def make_packet(dst="10.0.0.2", proto=PROTO_TCP, ttl=64):
    segment = TCPSegment(src_port=1, dst_port=2, seq=0, ack=0,
                         flags=TCPSegment.ACK, window=0)
    return IPPacket(src="10.0.0.1", dst=dst, proto=proto,
                    payload=segment, ttl=ttl)


class SinkLink:
    """Link stand-in that records sends."""

    def __init__(self):
        self.sent = []

    def send(self, pkt):
        self.sent.append(pkt)


def test_node_forwards_via_route():
    sim = Simulator()
    node = Node(sim, "n1")
    sink = SinkLink()
    node.add_route("10.0.0.2", sink)
    node.receive(make_packet())
    assert len(sink.sent) == 1
    assert node.packets_forwarded == 1


def test_node_uses_default_route():
    sim = Simulator()
    node = Node(sim, "n1")
    sink = SinkLink()
    node.set_default_route(sink)
    node.receive(make_packet(dst="somewhere-else"))
    assert len(sink.sent) == 1


def test_specific_route_beats_default():
    sim = Simulator()
    node = Node(sim, "n1")
    specific, default = SinkLink(), SinkLink()
    node.add_route("10.0.0.2", specific)
    node.set_default_route(default)
    node.receive(make_packet())
    assert len(specific.sent) == 1
    assert len(default.sent) == 0


def test_no_route_drops():
    sim = Simulator()
    node = Node(sim, "n1")
    node.receive(make_packet())
    assert node.packets_dropped == 1


def test_ttl_expiry_drops():
    sim = Simulator()
    node = Node(sim, "n1")
    sink = SinkLink()
    node.set_default_route(sink)
    node.receive(make_packet(ttl=1))
    assert node.packets_dropped == 1
    assert sink.sent == []


def test_header_corrupt_packet_dropped_with_trace():
    sim = Simulator()
    tracer = Tracer()
    node = Node(sim, "n1", tracer)
    node.set_default_route(SinkLink())
    pkt = make_packet()
    pkt.header_corrupt = True
    node.receive(pkt)
    assert node.packets_dropped == 1
    assert tracer.count(event="drop_header_corrupt") == 1


def test_host_dispatches_to_protocol_handler():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.2")
    seen = []
    host.register_protocol(PROTO_TCP, seen.append)
    host.receive(make_packet())
    assert len(seen) == 1


def test_host_forwards_packets_not_for_it():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.9")
    sink = SinkLink()
    host.set_default_route(sink)
    host.receive(make_packet(dst="10.0.0.2"))
    assert len(sink.sent) == 1


def test_host_drops_unknown_protocol():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.2")
    host.receive(make_packet(proto=PROTO_UDP))
    assert host.packets_dropped == 1


def test_host_duplicate_protocol_registration_rejected():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.2")
    host.register_protocol(PROTO_TCP, lambda pkt: None)
    with pytest.raises(ValueError):
        host.register_protocol(PROTO_TCP, lambda pkt: None)


def test_host_send_requires_route():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.1")
    with pytest.raises(RuntimeError):
        host.send(make_packet())


def test_host_send_stamps_creation_time():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.1")
    sink = SinkLink()
    host.set_default_route(sink)
    sim.at(2.5, host.send, make_packet())
    sim.run()
    assert sink.sent[0].created_at == 2.5


def test_middlebox_process_none_consumes_packet():
    sim = Simulator()

    class Dropper(Middlebox):
        def process(self, pkt):
            return None

    box = Dropper(sim, "mb")
    sink = SinkLink()
    box.set_default_route(sink)
    box.receive(make_packet())
    assert sink.sent == []


def test_middlebox_default_passthrough_forwards():
    sim = Simulator()
    box = Middlebox(sim, "mb")
    sink = SinkLink()
    box.set_default_route(sink)
    box.receive(make_packet())
    assert len(sink.sent) == 1


def test_end_to_end_host_link_host():
    sim = Simulator()
    a = Host(sim, "a", "10.0.0.1")
    b = Host(sim, "b", "10.0.0.2")
    link = Link(sim, 1e6, 0.001)
    link.connect(b.receive)
    a.set_default_route(link)
    got = []
    b.register_protocol(PROTO_TCP, got.append)
    a.send(make_packet())
    sim.run()
    assert len(got) == 1
