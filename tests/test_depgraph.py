"""Tests for the dependency-graph analysis (§IV-B / §VII / Fig. 14)."""

from repro.metrics.depgraph import DependencyGraph, format_dependency_trace


def chain_graph():
    """1 <- 2 <- 3 <- 4 (each depends on its predecessor)."""
    graph = DependencyGraph()
    graph.add_packet(1)
    graph.add_packet(2, [1])
    graph.add_packet(3, [2])
    graph.add_packet(4, [3])
    return graph


class TestClosure:
    def test_no_loss_no_undecodable(self):
        graph = chain_graph()
        assert graph.undecodable_closure(set()) == set()

    def test_chain_cascades(self):
        graph = chain_graph()
        assert graph.undecodable_closure({1}) == {2, 3, 4}

    def test_mid_chain_loss(self):
        graph = chain_graph()
        assert graph.undecodable_closure({3}) == {4}

    def test_independent_packets_unaffected(self):
        graph = DependencyGraph()
        graph.add_packet(1)
        graph.add_packet(2, [1])
        graph.add_packet(3)        # no dependencies
        assert graph.undecodable_closure({1}) == {2}

    def test_diamond_dependencies(self):
        graph = DependencyGraph()
        graph.add_packet(1)
        graph.add_packet(2)
        graph.add_packet(3, [1, 2])
        assert graph.undecodable_closure({2}) == {3}

    def test_loss_amplification(self):
        graph = chain_graph()
        assert graph.loss_amplification({1}) == 3.0
        assert graph.loss_amplification(set()) == 0.0


class TestChains:
    def test_dependency_chain_reaches_root(self):
        graph = chain_graph()
        dead = graph.undecodable_closure({1}) | {1}
        assert graph.dependency_chain(4, dead) == [4, 3, 2, 1]

    def test_chain_limit(self):
        graph = DependencyGraph()
        graph.add_packet(0)
        for i in range(1, 50):
            graph.add_packet(i, [i - 1])
        dead = set(range(49))
        assert len(graph.dependency_chain(49, dead, limit=5)) <= 6


class TestDegrees:
    def test_average_degree_counts_encoded_only(self):
        graph = DependencyGraph()
        graph.add_packet(1)            # raw
        graph.add_packet(2, [1])
        graph.add_packet(3, [1, 2])
        assert graph.average_degree() == 1.5

    def test_average_degree_empty(self):
        assert DependencyGraph().average_degree() == 0.0


class TestCycles:
    def test_retransmission_self_cycle_detected(self):
        """§IV-B: copies of one TCP segment encoded against each other."""
        graph = DependencyGraph()
        graph.add_packet(10, [], segment=100)         # original, lost
        graph.add_packet(11, [10], segment=200)
        graph.add_packet(12, [11], segment=100)       # retrans enc. vs 11
        graph.add_packet(13, [12], segment=100)       # retrans enc. vs 12
        cycles = graph.segment_cycles()
        assert graph.has_self_dependency()
        assert any(100 in cycle for cycle in cycles)

    def test_two_segment_cycle(self):
        graph = DependencyGraph()
        graph.add_packet(1, [], segment=100)
        graph.add_packet(2, [1], segment=200)       # 200 -> 100
        graph.add_packet(3, [2], segment=100)       # 100 -> 200 (retrans)
        cycles = graph.segment_cycles()
        assert cycles
        assert set(cycles[0]) <= {100, 200}

    def test_acyclic_stream_has_no_cycles(self):
        graph = DependencyGraph()
        graph.add_packet(1, [], segment=100)
        graph.add_packet(2, [1], segment=200)
        graph.add_packet(3, [2], segment=300)
        assert graph.segment_cycles() == []
        assert not graph.has_self_dependency()


class TestFormatting:
    def test_trace_rendering(self):
        graph = chain_graph()
        dead = graph.undecodable_closure({1})
        text = format_dependency_trace(graph, dead)
        assert "DROPPED" in text
        assert "depends on" in text


class TestEndToEnd:
    def test_naive_run_shows_self_dependency(self):
        """The naive policy under one forced loss must show the §IV-B
        circular dependency in its measured dependency graph."""
        from repro.metrics.depgraph import graph_from_gateways
        from tests.test_integration_stall import run_with_event

        testbed, outcome, _state = run_with_event("naive")
        encoder = testbed.gateways.encoder
        decoder = testbed.gateways.decoder
        graph, lost = graph_from_gateways(
            encoder, delivered_ids=decoder.delivered_ids,
            segment_keys=encoder.segment_log)
        assert graph.sent
        assert graph.average_degree() >= 1.0
        assert graph.has_self_dependency()
        # The undecodable closure of the lost packets is non-trivial.
        assert lost

    def test_robust_run_has_no_self_dependency(self):
        from repro.metrics.depgraph import graph_from_gateways
        from tests.test_integration_stall import run_with_event

        testbed, outcome, _state = run_with_event("tcp_seq")
        encoder = testbed.gateways.encoder
        decoder = testbed.gateways.decoder
        graph, _ = graph_from_gateways(
            encoder, delivered_ids=decoder.delivered_ids,
            segment_keys=encoder.segment_log)
        assert outcome.completed
        assert not graph.has_self_dependency()
