"""Tests for the file-transfer application."""

import random

from repro.app.transfer import FileClient, FileServer

from tests.tcp_helpers import TcpTestbed, drop_data_segments


def body(n=20000, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def build(drop_s2c=None):
    testbed = TcpTestbed(drop_s2c=drop_s2c)
    data = body()
    server = FileServer(testbed.server_stack, {"thing": data})
    client = FileClient(testbed.client_stack, testbed.sim)
    return testbed, server, client, data


def test_successful_fetch():
    testbed, server, client, data = build()
    done = []
    outcome = client.fetch("10.0.0.2", "thing", expected_size=len(data),
                           expected_content=data, on_done=done.append)
    testbed.sim.run(until=30)
    assert outcome.completed
    assert outcome.content_ok is True
    assert outcome.bytes_received == len(data)
    assert outcome.duration is not None and outcome.duration > 0
    assert outcome.first_byte_at is not None
    assert outcome.fraction_retrieved == 1.0
    assert done == [outcome]
    assert server.requests_served == 1


def test_unknown_file_closes_without_body():
    testbed, server, client, data = build()
    outcome = client.fetch("10.0.0.2", "missing", expected_size=100)
    testbed.sim.run(until=10)
    assert outcome.bytes_received == 0
    assert not outcome.completed
    assert server.requests_failed == 1


def test_fetch_under_loss_still_completes():
    drops = drop_data_segments(*[k * 1460 for k in (1, 4, 9)])
    testbed, server, client, data = build(drop_s2c=drops)
    outcome = client.fetch("10.0.0.2", "thing", expected_size=len(data),
                           expected_content=data)
    testbed.sim.run(until=60)
    assert outcome.completed
    assert outcome.content_ok is True


def test_request_split_across_segments():
    """The request line may arrive in pieces; the server must buffer."""
    testbed = TcpTestbed()
    data = body(5000, seed=1)
    server = FileServer(testbed.server_stack, {"split": data})
    received = bytearray()
    conn = testbed.client_stack.connect("10.0.0.2", 80)
    conn.on_receive = received.extend

    def send_in_pieces():
        conn.send(b"GET ")
        testbed.sim.after(0.05, lambda: conn.send(b"spl"))
        testbed.sim.after(0.10, lambda: conn.send(b"it\n"))

    conn.on_established = send_in_pieces
    testbed.sim.run(until=10)
    assert bytes(received) == data


def test_add_file_after_startup():
    testbed = TcpTestbed()
    server = FileServer(testbed.server_stack, {})
    server.add_file("late", b"late-bytes")
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch("10.0.0.2", "late", expected_size=10)
    testbed.sim.run(until=10)
    assert outcome.completed


def test_multiple_sequential_fetches():
    testbed = TcpTestbed()
    data = body(8000, seed=2)
    FileServer(testbed.server_stack, {"x": data})
    client = FileClient(testbed.client_stack, testbed.sim)
    finished = []

    def on_done(outcome):
        finished.append(outcome)
        if len(finished) == 1:
            client.fetch("10.0.0.2", "x", expected_size=len(data),
                         on_done=on_done)

    client.fetch("10.0.0.2", "x", expected_size=len(data), on_done=on_done)
    testbed.sim.run(until=30)
    assert len(finished) == 2
    assert all(outcome.completed for outcome in finished)
