"""Unit tests for the gateway resilience layer (epochs / resync /
heartbeats / watchdog) and the cache primitives behind it."""

import random

import pytest

from repro.core.cache import ByteCache
from repro.gateway import GatewayPair, ResilienceConfig
from repro.gateway.resilience import (CONTROL_KIND_HEARTBEAT,
                                      CONTROL_KIND_HEARTBEAT_ACK,
                                      CONTROL_KIND_RESYNC,
                                      CONTROL_KIND_RESYNC_ACK,
                                      MODE_BYPASS, MODE_ENCODE, MODE_RAW)
from repro.net.checksum import payload_checksum
from repro.net.packet import (ControlMessage, IPPacket, PROTO_DRE_CONTROL,
                              PROTO_TCP, TCPSegment)
from repro.sim import Simulator

CLIENT = "10.0.1.1"
SERVER = "10.0.2.1"


class Sink:
    def __init__(self):
        self.packets = []

    def send(self, pkt):
        self.packets.append(pkt)

    def controls(self, kind=None):
        found = [p for p in self.packets if p.proto == PROTO_DRE_CONTROL]
        if kind is not None:
            found = [p for p in found if p.payload.kind == kind]
        return found


def data_packet(data: bytes, seq: int = 0) -> IPPacket:
    segment = TCPSegment(src_port=80, dst_port=5000, seq=seq, ack=0,
                         flags=TCPSegment.ACK, window=1000, data=data,
                         checksum=payload_checksum(data))
    return IPPacket(src=SERVER, dst=CLIENT, proto=PROTO_TCP, payload=segment)


def random_bytes(seed, n=1460):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def make_pair(policy="naive", config=None, **kwargs):
    sim = Simulator()
    if config is None:
        config = ResilienceConfig()
    pair = GatewayPair.create(sim, policy=policy, data_dst=CLIENT,
                              resilience=config, **kwargs)
    enc_out, dec_out = Sink(), Sink()
    pair.encoder.set_default_route(enc_out)
    pair.decoder.set_default_route(dec_out)
    return sim, pair, enc_out, dec_out


class TestCachePrimitives:
    def _populated(self, n=4):
        cache = ByteCache()
        for i in range(n):
            cache.insert_packet(random_bytes(i), anchors=[(0, 1000 + i)])
        return cache

    def test_flush_does_not_bump_epoch(self):
        cache = self._populated()
        cache.flush()
        assert cache.epoch == 0       # Cache Flush policy flushes per
        assert len(cache.store) == 0  # retransmission without divergence

    def test_bump_epoch_increments(self):
        cache = ByteCache()
        assert cache.bump_epoch() == 1
        assert cache.bump_epoch() == 2
        assert cache.epoch == 2

    def test_evict_oldest_removes_in_fifo_order(self):
        cache = self._populated(4)
        assert cache.store.evict_oldest(2) == 2
        assert len(cache.store) == 2
        # The oldest two are gone; their table entries invalidate lazily.
        assert cache.lookup(1000) is None
        assert cache.lookup(1003) is not None

    def test_evict_oldest_bounded_by_population(self):
        cache = self._populated(2)
        assert cache.store.evict_oldest(10) == 2
        assert len(cache.store) == 0

    def test_evict_fraction(self):
        cache = self._populated(4)
        assert cache.evict_fraction(0.5) == 2
        assert len(cache.store) == 2

    def test_evict_fraction_validates_range(self):
        cache = self._populated(2)
        with pytest.raises(ValueError):
            cache.evict_fraction(1.5)
        with pytest.raises(ValueError):
            cache.evict_fraction(-0.1)


class TestEpochStamping:
    def test_shimmed_payloads_carry_encoder_epoch(self):
        sim, pair, enc_out, dec_out = make_pair()
        pair.encoder.receive(data_packet(random_bytes(1)))
        pkt = enc_out.packets[0]
        assert pkt.tcp.dre_epoch == 0
        pair.encoder.cache.bump_epoch()
        pair.encoder.receive(data_packet(random_bytes(2), seq=1460))
        assert enc_out.packets[1].tcp.dre_epoch == 1

    def test_epoch_charges_one_shim_byte(self):
        sim, pair, enc_out, _ = make_pair()
        payload = random_bytes(3)
        pair.encoder.receive(data_packet(payload))
        with_layer = enc_out.packets[0].wire_size

        sim2 = Simulator()
        bare = GatewayPair.create(sim2, policy="naive", data_dst=CLIENT)
        bare_out = Sink()
        bare.encoder.set_default_route(bare_out)
        bare.encoder.receive(data_packet(payload))
        assert with_layer == bare_out.packets[0].wire_size + 1

    def test_matching_epoch_decodes_normally(self):
        sim, pair, enc_out, dec_out = make_pair()
        payload = random_bytes(4)
        for seq in (0, 1460):
            pair.encoder.receive(data_packet(payload, seq=seq))
        for pkt in enc_out.packets:
            pair.decoder.receive(pkt)
        assert [p.tcp.data for p in dec_out.packets] == [payload, payload]
        assert pair.decoder.resilience.stats.epoch_mismatch_dropped == 0


class TestResyncHandshake:
    def _diverged_pair(self):
        """Pair where the encoder has moved to epoch 1 behind the
        decoder's back (stand-in for any silent divergence)."""
        sim, pair, enc_out, dec_out = make_pair()
        payload = random_bytes(5)
        for seq in (0, 1460):
            pair.encoder.receive(data_packet(payload, seq=seq))
        for pkt in enc_out.packets:
            pair.decoder.receive(pkt)
        enc_out.packets.clear()
        dec_out.packets.clear()
        pair.encoder.cache.bump_epoch()
        return sim, pair, enc_out, dec_out, payload

    def test_epoch_mismatch_drops_and_signals(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))  # region-bearing
        pair.decoder.receive(enc_out.packets[0])
        dec = pair.decoder
        assert dec_out.packets[0].proto == PROTO_DRE_CONTROL  # nothing else out
        assert dec.resilience.stats.epoch_mismatch_dropped == 1
        assert dec.resilience.stats.resyncs_initiated == 1
        assert dec.resilience.resyncing
        assert dec.stats.desync_dropped == 1
        requests = dec_out.controls(CONTROL_KIND_RESYNC)
        assert len(requests) == 1
        assert requests[0].dst == pair.encoder.address
        # Detection-time flush: raw arrivals during the handshake must
        # land in an empty cache, not the diverged one.
        assert len(dec.cache.store) == 0

    def test_region_packets_dropped_while_resyncing_raw_pass(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))
        pair.decoder.receive(enc_out.packets[0])      # starts the resync
        pair.encoder.receive(data_packet(payload, seq=4380))
        pair.decoder.receive(enc_out.packets[1])      # still mid-resync
        assert pair.decoder.resilience.stats.desync_dropped == 1
        # A never-seen payload goes out raw (shim only, no regions) and
        # is not gated: it forwards and seeds the decoder's fresh cache.
        fresh = random_bytes(6)
        pair.encoder.receive(data_packet(fresh, seq=5840))
        pair.decoder.receive(enc_out.packets[2])
        delivered = [p for p in dec_out.packets if p.proto == PROTO_TCP]
        assert delivered and delivered[-1].tcp.data == fresh

    def test_full_handshake_adopts_new_epoch(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))
        pair.decoder.receive(enc_out.packets[0])
        request = dec_out.controls(CONTROL_KIND_RESYNC)[0]
        pair.encoder.receive(request)
        enc = pair.encoder
        assert enc.resilience.stats.resyncs_handled == 1
        assert enc.cache.epoch == 2               # flush + bump
        assert len(enc.cache.store) == 0
        ack = enc_out.controls(CONTROL_KIND_RESYNC_ACK)[0]
        pair.decoder.receive(ack)
        dec = pair.decoder
        assert not dec.resilience.resyncing
        assert dec.cache.epoch == 2               # adopted from the ack
        assert dec.resilience.stats.resyncs_completed == 1
        assert dec.resilience.stats.time_to_resync is not None

    def test_duplicate_resync_request_served_idempotently(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))
        pair.decoder.receive(enc_out.packets[0])
        request = dec_out.controls(CONTROL_KIND_RESYNC)[0]
        pair.encoder.receive(request)
        pair.encoder.receive(request)             # retried request
        enc = pair.encoder
        # One flush+bump, two acks — a second bump would invalidate the
        # epoch the first (possibly in-flight) ack advertised.
        assert enc.resilience.stats.resyncs_handled == 1
        assert enc.cache.epoch == 2
        assert len(enc_out.controls(CONTROL_KIND_RESYNC_ACK)) == 2

    def test_stale_ack_ignored(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))
        pair.decoder.receive(enc_out.packets[0])
        dec = pair.decoder
        stale = ControlMessage(kind=CONTROL_KIND_RESYNC_ACK,
                               payload=(999, 7))  # id from a dead attempt
        pkt = IPPacket(src=pair.encoder.address, dst=dec.address,
                       proto=PROTO_DRE_CONTROL, payload=stale)
        dec.receive(pkt)
        assert dec.resilience.resyncing            # still waiting
        assert dec.cache.epoch == 0

    def test_traffic_resumes_after_resync(self):
        sim, pair, enc_out, dec_out, payload = self._diverged_pair()
        pair.encoder.receive(data_packet(payload, seq=2920))
        pair.decoder.receive(enc_out.packets[0])
        pair.encoder.receive(dec_out.controls(CONTROL_KIND_RESYNC)[0])
        pair.decoder.receive(enc_out.controls(CONTROL_KIND_RESYNC_ACK)[0])
        # Post-flush grace: the retransmission ships raw-but-cached so
        # the reference chain restarts from entries both sides hold.
        assert pair.encoder.resilience.encode_mode() == MODE_RAW
        pair.encoder.receive(data_packet(payload, seq=4380))
        grace_pkt = enc_out.packets[-1]
        assert grace_pkt.tcp.dre_epoch == 2
        pair.decoder.receive(grace_pkt)
        delivered = [p for p in dec_out.packets if p.proto == PROTO_TCP]
        assert delivered[-1].tcp.data == payload
        assert pair.encoder.resilience.stats.grace_packets == 1


class TestWatchdog:
    def test_undecodable_run_trips_watchdog(self):
        """Same-epoch divergence (silent cache wipe): the epoch cannot
        see it, the undecodable-rate watchdog must."""
        config = ResilienceConfig(watchdog_window=4, watchdog_threshold=0.5)
        sim, pair, enc_out, dec_out = make_pair(config=config)
        payload = random_bytes(7)
        pair.encoder.receive(data_packet(payload, seq=0))
        pair.decoder.receive(enc_out.packets[0])
        pair.decoder.cache.flush()                # silent divergence
        dec = pair.decoder
        for i in range(1, 5):
            pair.encoder.receive(data_packet(payload, seq=i * 1460))
            pair.decoder.receive(enc_out.packets[i])
        assert dec.resilience.stats.watchdog_trips == 1
        assert dec.resilience.stats.resyncs_initiated == 1
        assert dec.resilience.resyncing

    def test_successful_decodes_keep_watchdog_quiet(self):
        config = ResilienceConfig(watchdog_window=4, watchdog_threshold=0.5)
        sim, pair, enc_out, dec_out = make_pair(config=config)
        payload = random_bytes(8)
        for i in range(8):
            pair.encoder.receive(data_packet(payload, seq=i * 1460))
            pair.decoder.receive(enc_out.packets[i])
        assert pair.decoder.resilience.stats.watchdog_trips == 0
        assert pair.decoder.stats.decoded_ok == 8


class TestResyncRetry:
    def test_unanswered_request_retried_with_backoff_then_abandoned(self):
        config = ResilienceConfig(heartbeat_interval=100.0,
                                  resync_timeout=0.05, resync_backoff=2.0,
                                  resync_max_retries=2)
        sim, pair, enc_out, dec_out = make_pair(config=config)
        dec = pair.decoder
        dec.resilience.start_resync()
        sim.run(until=2.0)                        # nothing ever delivered
        stats = dec.resilience.stats
        assert stats.resync_retries == 2
        assert stats.resync_failures == 1
        assert not dec.resilience.resyncing       # gave up ...
        assert len(dec_out.controls(CONTROL_KIND_RESYNC)) == 3
        dec.resilience.start_resync()             # ... but re-triggerable
        assert stats.resyncs_initiated == 2


class TestHeartbeatDegradation:
    def _config(self):
        return ResilienceConfig(heartbeat_interval=0.1,
                                heartbeat_timeout=0.25,
                                resync_grace=0.1)

    def test_decoder_answers_heartbeats(self):
        sim, pair, enc_out, dec_out = make_pair(config=self._config())
        beat = IPPacket(src=pair.encoder.address, dst=pair.decoder.address,
                        proto=PROTO_DRE_CONTROL,
                        payload=ControlMessage(kind=CONTROL_KIND_HEARTBEAT,
                                               payload=7))
        pair.decoder.receive(beat)
        assert pair.decoder.resilience.stats.heartbeats_answered == 1
        assert pair.decoder.stats.control_messages_received == 1
        acks = dec_out.controls(CONTROL_KIND_HEARTBEAT_ACK)
        assert len(acks) == 1 and acks[0].payload.payload == 7

    def test_silent_peer_degrades_encoder_to_passthrough(self):
        sim, pair, enc_out, dec_out = make_pair(config=self._config())
        sim.run(until=1.0)                        # acks never delivered
        enc = pair.encoder
        assert enc.resilience.stats.degraded
        assert enc.resilience.stats.degraded_entries == 1
        assert enc.resilience.stats.heartbeats_sent >= 3
        assert enc.resilience.encode_mode() == MODE_BYPASS
        payload = random_bytes(9)
        enc.receive(data_packet(payload))
        pkt = enc_out.packets[-1]
        assert not pkt.tcp.dre_encoded            # untouched pass-through
        assert pkt.tcp.data == payload
        assert enc.resilience.stats.degraded_packets == 1

    def test_ack_while_degraded_recovers_with_fresh_epoch(self):
        sim, pair, enc_out, dec_out = make_pair(config=self._config())
        sim.run(until=1.0)
        enc = pair.encoder
        assert enc.resilience.stats.degraded
        enc.resilience.on_control(CONTROL_KIND_HEARTBEAT_ACK, 1)
        assert not enc.resilience.stats.degraded
        assert enc.resilience.stats.degraded_time > 0
        assert enc.cache.epoch == 1               # flush+bump on recovery
        assert enc.resilience.encode_mode() == MODE_RAW
        # Peer stays responsive from here on: widen the timeout so the
        # run only lets the grace window elapse.
        enc.resilience.config.heartbeat_timeout = 100.0
        sim.run(until=2.0)
        assert enc.resilience.encode_mode() == MODE_ENCODE


class TestGatewayCrash:
    def test_down_gateway_drops_everything(self):
        sim, pair, enc_out, dec_out = make_pair()
        pair.decoder.fail()
        pair.encoder.receive(data_packet(random_bytes(10)))
        pair.decoder.receive(enc_out.packets[0])
        assert dec_out.packets == []
        assert pair.decoder.stats.dropped_while_down == 1

    def test_restart_comes_back_cold(self):
        sim, pair, enc_out, dec_out = make_pair()
        pair.encoder.receive(data_packet(random_bytes(11)))
        pair.decoder.receive(enc_out.packets[0])
        pair.decoder.cache.epoch = 3
        pair.decoder.fail()
        pair.decoder.restart()
        dec = pair.decoder
        assert not dec.down
        assert len(dec.cache.store) == 0
        assert dec.cache.epoch == 0
        # And it processes traffic again.
        pair.encoder.receive(data_packet(random_bytes(12), seq=1460))
        pair.decoder.receive(enc_out.packets[1])
        delivered = [p for p in dec_out.packets if p.proto == PROTO_TCP]
        assert len(delivered) == 2


def test_gateway_shim_overhead_includes_epoch_stamp():
    from repro.core.wire import EPOCH_STAMP_SIZE, SHIM_SIZE

    _sim, pair, _enc_out, _dec_out = make_pair()
    assert pair.encoder.encoder.shim_overhead == SHIM_SIZE + EPOCH_STAMP_SIZE

    sim2 = Simulator()
    bare = GatewayPair.create(sim2, policy="naive", data_dst=CLIENT)
    assert bare.encoder.encoder.shim_overhead == SHIM_SIZE
