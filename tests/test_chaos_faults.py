"""Tests for the chaos fault primitives.

Covers the new link-level windows (Gilbert-Elliott bursty loss, flaps,
partitions, control blackouts), the new injector actions (re-order,
duplicate), the gateway-level actions (memory pressure, clock skew) and
the idempotence hardening of detach/crash/restore.
"""

import math
import random

import pytest

from repro.core.cache import ByteCache
from repro.metrics.report import format_recovery
from repro.net.packet import (ControlMessage, IPPacket, PROTO_DRE_CONTROL,
                              PROTO_TCP, TCPSegment)
from repro.sim.engine import Simulator
from repro.sim.faults import (FaultInjector, GatewayFaultLog, all_of,
                              control_blackout, drop_indices, match_control,
                              match_nth_data, match_time_window,
                              schedule_bursty_loss, schedule_clock_skew,
                              schedule_gateway_restart, schedule_link_flap,
                              schedule_memory_pressure, schedule_partition)
from repro.sim.link import GilbertElliottLoss, Link, LinkStats

from tests.tcp_helpers import TcpTestbed


class Pkt:
    size = 1000
    wire_size = 1000


def data_packet(seq=0, data=b"x"):
    return IPPacket(src="a", dst="b", proto=PROTO_TCP,
                    payload=TCPSegment(src_port=1, dst_port=2, seq=seq,
                                       ack=0, flags=TCPSegment.ACK,
                                       window=0, data=data))


def control_packet(kind):
    return IPPacket(src="gw-a", dst="gw-b", proto=PROTO_DRE_CONTROL,
                    payload=ControlMessage(kind=kind, payload=[1]))


def wired_link(sim, **kwargs):
    delivered = []
    link = Link(sim, 1e6, 0.001, rng=random.Random(1), name="l", **kwargs)
    link.connect(delivered.append)
    return link, delivered


class TestGilbertElliott:
    def test_rejects_out_of_range_probabilities(self):
        for bad in ({"p_good_bad": -0.1}, {"p_bad_good": 1.5},
                    {"loss_good": 2.0}, {"loss_bad": -1.0}):
            with pytest.raises(ValueError):
                GilbertElliottLoss(random.Random(0), **bad)

    def test_stuck_bad_state_loses_everything(self):
        model = GilbertElliottLoss(random.Random(0), p_good_bad=1.0,
                                   p_bad_good=0.0, loss_bad=1.0,
                                   start_bad=True)
        assert all(model.lost() for _ in range(50))
        assert model.losses == 50

    def test_good_state_with_zero_loss_is_transparent(self):
        model = GilbertElliottLoss(random.Random(0), p_good_bad=0.0,
                                   loss_good=0.0, loss_bad=1.0)
        assert not any(model.lost() for _ in range(50))

    def test_same_seed_same_burst_pattern(self):
        draws = []
        for _ in range(2):
            model = GilbertElliottLoss(random.Random(42), p_good_bad=0.2,
                                       p_bad_good=0.3, loss_bad=0.7)
            draws.append([model.lost() for _ in range(200)])
        assert draws[0] == draws[1]
        assert any(draws[0])          # the pattern actually loses packets

    def test_model_replaces_uniform_loss_while_attached(self):
        # loss_rate=1.0 would kill every packet; a lossless GE model
        # attached on top must win.
        sim = Simulator()
        link, delivered = wired_link(sim, loss_rate=1.0)
        link.loss_model = GilbertElliottLoss(random.Random(0),
                                             p_good_bad=0.0, loss_bad=1.0)
        for i in range(10):
            sim.at(0.01 * (i + 1), link.send, Pkt())
        sim.run(until=1.0)
        assert len(delivered) == 10


class TestLinkWindows:
    def test_down_link_loses_every_packet(self):
        sim = Simulator()
        link, delivered = wired_link(sim)
        link.down = True
        sim.at(0.01, link.send, Pkt())
        sim.run(until=1.0)
        assert delivered == []
        assert link.stats.packets_lost == 1

    def test_link_flap_window(self):
        sim = Simulator()
        link, delivered = wired_link(sim)
        schedule_link_flap(sim, link, at=0.1, down_for=0.1)
        for t in (0.05, 0.15, 0.25):        # before, during, after
            sim.at(t, link.send, Pkt())
        sim.run(until=1.0)
        assert len(delivered) == 2
        assert link.stats.packets_lost == 1
        assert not link.down

    def test_repeated_flaps_need_period(self):
        sim = Simulator()
        link, _ = wired_link(sim)
        with pytest.raises(ValueError):
            schedule_link_flap(sim, link, at=0.0, down_for=0.2, flaps=2)
        with pytest.raises(ValueError):
            schedule_link_flap(sim, link, at=0.0, down_for=0.2, flaps=2,
                               period=0.1)
        events = schedule_link_flap(sim, link, at=0.0, down_for=0.1,
                                    flaps=3, period=0.3)
        assert len(events) == 6             # a down and an up per flap

    def test_partition_downs_both_directions(self):
        sim = Simulator()
        forward, fwd_delivered = wired_link(sim)
        reverse, rev_delivered = wired_link(sim)
        schedule_partition(sim, forward, reverse, at=0.1, duration=0.2)
        for t in (0.15, 0.2):
            sim.at(t, forward.send, Pkt())
            sim.at(t, reverse.send, Pkt())
        sim.at(0.5, forward.send, Pkt())
        sim.run(until=1.0)
        assert fwd_delivered != [] and len(fwd_delivered) == 1
        assert rev_delivered == []

    def test_bursty_loss_window_attaches_and_detaches(self):
        sim = Simulator()
        link, _ = wired_link(sim)
        model = schedule_bursty_loss(sim, link, 0.1, 0.3, random.Random(7),
                                     p_good_bad=0.5, loss_bad=0.8)
        states = {}
        sim.at(0.05, lambda: states.update(before=link.loss_model))
        sim.at(0.2, lambda: states.update(during=link.loss_model))
        sim.at(0.4, lambda: states.update(after=link.loss_model))
        sim.run(until=1.0)
        assert states["before"] is None
        assert states["during"] is model
        assert states["after"] is None

    def test_bursty_loss_detach_spares_a_newer_model(self):
        # An expiring window must not tear down a model some later
        # window attached in the meantime.
        sim = Simulator()
        link, _ = wired_link(sim)
        schedule_bursty_loss(sim, link, 0.0, 0.2, random.Random(1))
        newer = schedule_bursty_loss(sim, link, 0.1, 0.5, random.Random(2))
        state = {}
        sim.at(0.3, lambda: state.update(model=link.loss_model))
        sim.run(until=1.0)
        assert state["model"] is newer

    def test_bursty_loss_rejects_empty_window(self):
        sim = Simulator()
        link, _ = wired_link(sim)
        with pytest.raises(ValueError):
            schedule_bursty_loss(sim, link, 0.5, 0.5, random.Random(0))


class TestWindowedPredicates:
    def test_match_time_window(self):
        clock = {"now": 0.0}
        predicate = match_time_window(lambda: clock["now"], 1.0, 2.0)
        for now, expected in ((0.5, False), (1.0, True), (1.5, True),
                              (2.0, False)):
            clock["now"] = now
            assert predicate(None, 0) is expected

    def test_match_time_window_rejects_inverted(self):
        with pytest.raises(ValueError):
            match_time_window(lambda: 0.0, 2.0, 1.0)

    def test_all_of_short_circuits(self):
        # The stateful counter must not advance outside the window.
        counting = match_nth_data(1)
        predicate = all_of(lambda pkt, index: False, counting)
        assert not predicate(data_packet(), 0)
        assert counting(data_packet(), 1)   # still waiting for its 1st

    def test_all_of_rejects_empty(self):
        with pytest.raises(ValueError):
            all_of()

    def test_control_blackout_window(self):
        testbed = TcpTestbed()
        injectors = [FaultInjector(testbed.c2s), FaultInjector(testbed.s2c)]
        control_blackout(injectors, 1.0, 2.0)
        for t in (0.5, 1.5, 2.5):
            testbed.sim.at(t, testbed.c2s.send, control_packet("heartbeat"))
            testbed.sim.at(t, testbed.s2c.send,
                           control_packet("cache_resync"))
        testbed.sim.run(until=5)
        assert len(injectors[0].log.dropped) == 1
        assert len(injectors[1].log.dropped) == 1

    def test_control_blackout_filters_kinds(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        control_blackout([injector], 0.0, 10.0, "cache_resync")
        testbed.sim.at(0.5, testbed.s2c.send, control_packet("heartbeat"))
        testbed.sim.at(0.5, testbed.s2c.send, control_packet("cache_resync"))
        testbed.sim.run(until=2)
        assert len(injector.log.dropped) == 1


class TestReorderDuplicate:
    def fetch(self, testbed, size=20 * 1460, seed=3):
        rng = random.Random(seed)
        data = bytes(rng.randrange(256) for _ in range(size))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        return data, bytes(received)

    def test_reorder_delivers_in_full(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.reorder_when(match_nth_data(3), extra_delay=0.2)
        data, received = self.fetch(testbed)
        assert received == data
        assert len(injector.log.reordered) == 1
        assert injector.log.dropped == []

    def test_duplicate_delivers_exactly_once_to_the_app(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.duplicate_when(match_nth_data(2, 5))
        data, received = self.fetch(testbed)
        assert received == data
        assert len(injector.log.duplicated) == 2

    def test_duplicate_is_a_deep_copy_behind_the_original(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.duplicate_when(match_nth_data(1))
        testbed.sim.at(0.1, testbed.s2c.send, data_packet(data=b"payload"))
        testbed.sim.run(until=1)
        delivered = testbed.s2c.delivered
        assert len(delivered) == 2
        original, copy_ = delivered
        assert copy_ is not original
        assert copy_.payload is not original.payload
        assert copy_.payload.data == original.payload.data

    def test_validation(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        with pytest.raises(ValueError):
            injector.reorder_when(match_nth_data(1), extra_delay=0.0)
        with pytest.raises(ValueError):
            injector.duplicate_when(match_nth_data(1), delay=-0.1)


class TestDetachIdempotence:
    def test_detach_twice_is_a_noop(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(drop_indices(0))
        injector.detach()
        injector.detach()
        assert "send" not in testbed.s2c.__dict__

    def test_detached_injector_send_passes_through(self):
        # A stale scheduled event may still call the old bound _send
        # after detach; it must forward, not re-apply rules.
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(lambda pkt, index: True)
        injector.detach()
        injector._send(data_packet())
        testbed.sim.run(until=1)
        assert len(testbed.s2c.delivered) == 1
        assert injector.log.dropped == []

    def test_stacked_detach_in_reverse_order_restores_class_send(self):
        testbed = TcpTestbed()
        first = FaultInjector(testbed.s2c)
        second = FaultInjector(testbed.s2c)
        second.detach()
        first.detach()
        assert "send" not in testbed.s2c.__dict__

    def test_stacked_detach_bottom_first_keeps_top_armed(self):
        testbed = TcpTestbed()
        first = FaultInjector(testbed.s2c)
        second = FaultInjector(testbed.s2c).drop_when(drop_indices(0))
        first.detach()                       # bottom of the stack
        testbed.s2c.send(data_packet())      # dropped by the top injector
        testbed.s2c.send(data_packet())
        testbed.sim.run(until=1)
        assert len(second.log.dropped) == 1
        assert len(testbed.s2c.delivered) == 1
        # and the stale bottom patch was not resurrected
        second.detach()
        first.detach()


class FakeGateway:
    def __init__(self):
        self.name = "fake-gw"
        self.down = False
        self.restarts = 0
        self.resilience = None

    def fail(self):
        self.down = True

    def restart(self):
        self.down = False
        self.restarts += 1


class TestGatewayRestartIdempotence:
    def test_overlapping_crash_supersedes_first_restore(self):
        sim = Simulator()
        gateway = FakeGateway()
        log = GatewayFaultLog()
        schedule_gateway_restart(sim, gateway, at=0.1, downtime=0.5,
                                 log=log)
        schedule_gateway_restart(sim, gateway, at=0.3, downtime=0.5,
                                 log=log)
        probes = {}
        sim.at(0.7, lambda: probes.update(mid=gateway.down))
        sim.at(0.9, lambda: probes.update(end=gateway.down))
        sim.run(until=2)
        # The first restore (t=0.6) lands inside the second crash's
        # window and must not fire; only the second restore (t=0.8)
        # brings the gateway back.
        assert probes["mid"] is True
        assert probes["end"] is False
        assert gateway.restarts == 1
        assert log.crashes == [pytest.approx(0.1), pytest.approx(0.3)]
        assert log.restarts == [pytest.approx(0.8)]

    def test_stale_restore_after_manual_restart_is_a_noop(self):
        sim = Simulator()
        gateway = FakeGateway()
        schedule_gateway_restart(sim, gateway, at=0.1, downtime=0.5)
        sim.at(0.3, gateway.restart)         # operator beat the schedule
        sim.run(until=2)
        assert gateway.restarts == 1
        assert not gateway.down


class CachingGateway:
    def __init__(self, byte_budget=100_000):
        self.name = "caching-gw"
        self.cache = ByteCache(byte_budget=byte_budget)
        self.resilience = None


class TestMemoryPressure:
    def fill(self, gateway, packets=50, size=1400):
        for index in range(packets):
            gateway.cache.insert_packet(bytes([index % 251]) * size,
                                        [(0, index)])

    def test_squeeze_forces_eviction_storm(self):
        sim = Simulator()
        gateway = CachingGateway()
        self.fill(gateway)
        log = GatewayFaultLog()
        schedule_memory_pressure(sim, gateway, at=0.1, fraction=0.25,
                                 log=log)
        sim.run(until=1)
        assert len(log.pressure) == 1
        _, evicted = log.pressure[0]
        assert evicted > 0
        store = gateway.cache.store
        assert store.bytes_used <= store.byte_budget

    def test_budget_restored_after_duration_entries_stay_gone(self):
        sim = Simulator()
        gateway = CachingGateway()
        self.fill(gateway)
        used_before = gateway.cache.store.bytes_used
        schedule_memory_pressure(sim, gateway, at=0.1, fraction=0.25,
                                 duration=0.2)
        sim.run(until=1)
        store = gateway.cache.store
        assert store.byte_budget == 100_000       # budget came back
        assert store.bytes_used < used_before     # the entries did not

    def test_validation(self):
        sim = Simulator()
        gateway = CachingGateway()
        with pytest.raises(ValueError):
            schedule_memory_pressure(sim, gateway, at=0.1, fraction=0.0)
        with pytest.raises(ValueError):
            schedule_memory_pressure(sim, gateway, at=0.1, fraction=1.5)
        with pytest.raises(ValueError):
            schedule_memory_pressure(sim, gateway, at=0.1, duration=-1.0)


class SkewableResilience:
    clock_skew = 1.0


class TestClockSkew:
    def test_skew_applied_and_restored(self):
        sim = Simulator()
        gateway = FakeGateway()
        gateway.resilience = SkewableResilience()
        log = GatewayFaultLog()
        schedule_clock_skew(sim, gateway, at=0.1, factor=4.0, duration=0.5,
                            log=log)
        probes = {}
        sim.at(0.3, lambda: probes.update(mid=gateway.resilience.clock_skew))
        sim.run(until=2)
        assert probes["mid"] == 4.0
        assert gateway.resilience.clock_skew == 1.0
        assert log.skews == [(pytest.approx(0.1), 4.0),
                             (pytest.approx(0.6), 1.0)]

    def test_requires_a_heartbeat_clock(self):
        sim = Simulator()
        gateway = FakeGateway()                  # resilience is None
        schedule_clock_skew(sim, gateway, at=0.1, factor=2.0)
        with pytest.raises(RuntimeError):
            sim.run(until=1)

    def test_validation(self):
        sim = Simulator()
        gateway = FakeGateway()
        with pytest.raises(ValueError):
            schedule_clock_skew(sim, gateway, at=0.1, factor=0.0)
        with pytest.raises(ValueError):
            schedule_clock_skew(sim, gateway, at=0.1, factor=2.0,
                                duration=0.0)


class TestMeasurementEdges:
    """Satellite hardening: unmeasurable values render, never raise."""

    def test_zero_packet_link_loss_fraction_is_nan(self):
        stats = LinkStats()
        assert math.isnan(stats.loss_fraction)

    def test_loss_fraction_still_measures_normally(self):
        stats = LinkStats(packets_offered=10, packets_lost=3)
        assert stats.loss_fraction == pytest.approx(0.3)

    def test_format_recovery_renders_dashes_for_missing(self):
        summary = {
            "link_loss": float("nan"),       # zero-packet link
            "resyncs_completed": 0,
            "time_to_resync": None,          # never resynced
            "heartbeat_state": "ok",
        }
        text = format_recovery("recovery", [summary], labels=["run0"])
        assert "—" in text
        assert "None" not in text
        assert "nan" not in text
