"""Adversarial-input fuzzing: the decoder must never crash and never
silently accept wrong bytes, whatever arrives on the wire.

All randomness comes from hypothesis draws or named
:class:`~repro.sim.rng.RngRegistry` streams seeded by draws — no
module-level ``random`` state, so failures replay bit-identically from
the hypothesis seed alone.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.decoder import DecodeStatus
from repro.core.policies import DecoderPolicy, NaivePolicy, PacketMeta
from repro.core.wire import WireFormatError, parse_payload
from repro.net.checksum import payload_checksum
from repro.sim.rng import RngRegistry

FLOW = ("s", 80, "c", 5000)


def _stream(data, name):
    """A named deterministic stream keyed by a hypothesis-drawn seed."""
    seed = data.draw(st.integers(0, 2 ** 16))
    return RngRegistry(seed).stream(name)


@given(st.binary(max_size=4000))
def test_parse_payload_never_crashes(blob):
    """Arbitrary bytes either parse or raise WireFormatError — nothing
    else escapes."""
    try:
        parse_payload(blob)
    except WireFormatError:
        pass


@given(st.binary(min_size=2, max_size=4000))
def test_decoder_never_crashes_on_garbage(blob):
    scheme = FingerprintScheme()
    decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())
    result = decoder.decode(blob, PacketMeta(packet_id=1, flow=FLOW),
                            checksum=0)
    assert result.status in DecodeStatus


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_tampered_encodings_never_accepted_as_wrong_bytes(data):
    """Flip bytes anywhere in a genuine encoded payload: the decoder
    must either reconstruct the exact original (flip was in a region it
    could tolerate — impossible here since any accepted decode must
    match the checksum) or drop the packet."""
    rng = _stream(data, "fuzz.tampered")
    scheme = FingerprintScheme()
    encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
    decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())

    base = rng.randbytes(1460)
    meta0 = PacketMeta(packet_id=0, flow=FLOW, tcp_seq=0, counter=0)
    result0 = encoder.encode(base, meta0)
    decoder.decode(result0.data, meta0, checksum=payload_checksum(base))

    payload = base[:900] + rng.randbytes(560)
    meta1 = PacketMeta(packet_id=1, flow=FLOW, tcp_seq=1460, counter=1)
    result1 = encoder.encode(payload, meta1)
    assert result1.encoded

    wire = bytearray(result1.data)
    n_flips = data.draw(st.integers(1, 6))
    for _ in range(n_flips):
        position = data.draw(st.integers(0, len(wire) - 1))
        wire[position] ^= data.draw(st.integers(1, 255))

    outcome = decoder.decode(bytes(wire), meta1,
                             checksum=payload_checksum(payload))
    if outcome.ok:
        assert outcome.payload == payload  # flips cancelled out / benign
    else:
        assert outcome.payload is None


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_truncated_encodings_rejected(data):
    rng = _stream(data, "fuzz.truncated")
    scheme = FingerprintScheme()
    encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
    decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())
    base = rng.randbytes(1460)
    meta0 = PacketMeta(packet_id=0, flow=FLOW, tcp_seq=0, counter=0)
    result0 = encoder.encode(base, meta0)
    decoder.decode(result0.data, meta0, checksum=payload_checksum(base))
    meta1 = PacketMeta(packet_id=1, flow=FLOW, tcp_seq=1460, counter=1)
    result1 = encoder.encode(base, meta1)
    cut = data.draw(st.integers(0, max(0, len(result1.data) - 1)))
    outcome = decoder.decode(result1.data[:cut], meta1,
                             checksum=payload_checksum(base))
    if outcome.ok:
        assert outcome.payload == base
    else:
        assert outcome.status in (DecodeStatus.MALFORMED,
                                  DecodeStatus.CHECKSUM_MISMATCH,
                                  DecodeStatus.MISSING)


# ---------------------------------------------------------------------------
# scenario fuzzer determinism (repro.verify.fuzz)
# ---------------------------------------------------------------------------

def test_scenario_fuzzer_does_not_touch_global_random_state():
    """Generating and running a fuzz case must not consume or perturb
    the module-level ``random`` stream — all its randomness flows
    through named RngRegistry streams."""
    from repro.verify.fuzz import generate_case, run_case

    random.seed(1234)
    expected = [random.random() for _ in range(5)]
    random.seed(1234)
    case = generate_case(7, 0)
    run_case(case)
    observed = [random.random() for _ in range(5)]
    assert observed == expected


def test_scenario_fuzzer_outcome_is_reproducible():
    """The same case runs to the identical observable outcome."""
    from repro.verify.fuzz import generate_case, run_case

    case = generate_case(7, 2)
    first = run_case(case)
    second = run_case(case)
    assert first == second
