"""Integration tests: gateway crash/restart mid-transfer.

A decoder gateway restarting with a cold cache is the cache-level
analogue of the paper's §IV packet-loss pathology: every region-bearing
packet that references pre-crash entries is undecodable, and no
per-packet policy can repair it (the entries are simply gone).  The
resilience layer (epochs + resync + heartbeats) must turn that into a
bounded hiccup; without it the transfer either stalls outright (naive)
or limps home on raw TCP retransmissions after a storm of undecodable
drops (tcp_seq).

The workload is generated with *long-range* redundancy: references
point at long-ACKed segments that TCP will never retransmit, so a
cold decoder cache cannot be rebuilt by the data stream itself — the
divergence is persistent unless explicitly repaired.
"""

from repro.app.transfer import FileClient, FileServer
from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.sim.faults import (FaultInjector, GatewayFaultLog,
                              match_nth_control,
                              schedule_asymmetric_eviction,
                              schedule_gateway_restart)
from repro.workload.redundancy import (DependencyFileSpec,
                                       generate_dependency_file)

#: history_window/locality_scale push matches far behind the TCP window:
#: the decoder needs its *old* cache entries, not the in-flight ones.
DATA = generate_dependency_file(DependencyFileSpec(
    size=250 * 1460, avg_dependencies=3.0, redundancy=0.5,
    history_window=300, locality_scale=100.0, seed=7))

#: Fast protocol tunables so the whole scenario fits in <1 s simulated.
RESILIENCE_KWARGS = dict(heartbeat_interval=0.02, heartbeat_timeout=0.06,
                         resync_timeout=0.05, resync_grace=0.02,
                         watchdog_window=8)


def build(policy="tcp_seq", resilience=True, time_limit=30.0, seed=5):
    config = ExperimentConfig(
        corpus="file1", policy=policy, seed=seed,
        tcp_max_retries=8, tcp_min_rto=0.05, tcp_max_rto=0.5,
        time_limit=time_limit, resilience=resilience,
        resilience_kwargs=RESILIENCE_KWARGS if resilience else {})
    testbed = build_testbed(config)
    FileServer(testbed.server_stack, {FILE_NAME: DATA})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(DATA),
                           on_done=lambda _o: testbed.sim.stop())
    return testbed, outcome


class TestDecoderRestartWithResilience:
    def test_transfer_completes_and_compression_recovers(self):
        """The acceptance scenario: restart mid-transfer, connection
        completes, and the post-resync bytes-sent ratio is back < 1."""
        testbed, outcome = build(policy="tcp_seq", resilience=True)
        log = GatewayFaultLog()
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.1, log=log)
        testbed.sim.run(until=30)

        assert outcome.completed
        assert log.crashes == [0.12]

        enc = testbed.gateways.encoder
        dec = testbed.gateways.decoder
        assert dec.resilience.stats.resyncs_completed >= 1
        assert dec.resilience.stats.time_to_resync is not None
        # The crash was fully repaired: no lingering resync, heartbeat
        # state healthy again.
        assert not dec.resilience.resyncing
        assert not enc.resilience.stats.degraded

        # Compression is effective again after the resync: bytes sent
        # on the constrained link over bytes entering the encoder,
        # counted from the flush+bump snapshot onwards.
        marker = enc.resilience.resync_marker
        assert marker is not None
        before = enc.stats.bytes_before - marker[0]
        after = enc.stats.bytes_after - marker[1]
        assert before > 0
        assert after / before < 1.0

    def test_downtime_degrades_encoder_then_recovers(self):
        """The 0.1 s outage exceeds the heartbeat timeout: the encoder
        must fall back to pass-through rather than feed a dead peer,
        then recover when heartbeat acks resume."""
        testbed, outcome = build(policy="tcp_seq", resilience=True)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.1)
        testbed.sim.run(until=30)
        assert outcome.completed
        enc = testbed.gateways.encoder
        assert enc.resilience.stats.degraded_entries >= 1
        assert enc.resilience.stats.degraded_time > 0
        assert not enc.resilience.stats.degraded        # recovered

    def test_short_outage_caught_by_watchdog(self):
        """A restart faster than the heartbeat timeout restores epoch 0
        on both sides — the epoch stamp cannot flag it.  The
        undecodable-rate watchdog must trip instead."""
        testbed, outcome = build(policy="tcp_seq", resilience=True)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.01)
        testbed.sim.run(until=30)
        assert outcome.completed
        dec = testbed.gateways.decoder
        assert dec.resilience.stats.watchdog_trips >= 1
        assert dec.resilience.stats.resyncs_completed >= 1

    def test_resync_survives_control_loss(self):
        """The handshake itself rides the lossy links: losing the first
        request (and, separately, the first ack) must only cost a
        retry, not the recovery."""
        for kind, attr in (("cache_resync", "bottleneck_reverse"),
                           ("cache_resync_ack", "bottleneck_forward")):
            testbed, outcome = build(policy="tcp_seq", resilience=True)
            schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                     at=0.12, downtime=0.01)
            injector = FaultInjector(getattr(testbed, attr))
            injector.drop_when(match_nth_control(kind, 1))
            testbed.sim.run(until=30)
            assert outcome.completed, kind
            stats = testbed.gateways.decoder.resilience.stats
            assert stats.resyncs_completed >= 1, kind
            assert stats.resync_retries >= 1, kind
            assert injector.log.dropped, kind

    def test_asymmetric_eviction_repaired(self):
        """One-sided eviction at the decoder: no packet is ever lost and
        no epoch changes, yet references start missing.  Watchdog path."""
        testbed, outcome = build(policy="tcp_seq", resilience=True)
        log = GatewayFaultLog()
        schedule_asymmetric_eviction(testbed.sim, testbed.gateways.decoder,
                                     at=0.15, fraction=0.9, log=log)
        testbed.sim.run(until=30)
        assert outcome.completed
        assert log.evictions and log.evictions[0][1] > 0
        dec = testbed.gateways.decoder
        assert dec.resilience.stats.watchdog_trips >= 1
        assert dec.resilience.stats.resyncs_completed >= 1


class TestDecoderRestartWithoutResilience:
    def test_tcp_seq_suffers_persistent_undecodable_drops(self):
        """Without the layer the decoder silently decodes against a cold
        cache: every long-range reference misses, persistently."""
        testbed, outcome = build(policy="tcp_seq", resilience=False)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.1)
        testbed.sim.run(until=30)
        dec = testbed.gateways.decoder
        assert dec.stats.undecodable_dropped > 30
        assert dec.stats.desync_dropped == 0     # no layer, no gating

    def test_naive_stalls_outright_resilience_unstalls(self):
        """With circular-dependency-prone encoding the cold cache is
        fatal: TCP exhausts its retries.  The identical scenario with
        the layer enabled completes."""
        testbed, outcome = build(policy="naive", resilience=False)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.1)
        testbed.sim.run(until=30)
        assert not outcome.completed

        testbed, outcome = build(policy="naive", resilience=True)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.1)
        testbed.sim.run(until=30)
        assert outcome.completed
        assert testbed.gateways.decoder.resilience.stats.resyncs_completed >= 1

    def test_resilience_restores_near_baseline_download_time(self):
        """Headline number: the restart costs ~5x download time without
        the layer and well under 2x with it."""
        baseline, outcome = build(policy="tcp_seq", resilience=False)
        baseline.sim.run(until=30)
        assert outcome.completed
        fault_free = outcome.duration

        with_layer, outcome = build(policy="tcp_seq", resilience=True)
        schedule_gateway_restart(with_layer.sim, with_layer.gateways.decoder,
                                 at=0.12, downtime=0.1)
        with_layer.sim.run(until=30)
        assert outcome.completed
        repaired = outcome.duration

        without, outcome = build(policy="tcp_seq", resilience=False)
        schedule_gateway_restart(without.sim, without.gateways.decoder,
                                 at=0.12, downtime=0.1)
        without.sim.run(until=30)
        assert outcome.completed
        unrepaired = outcome.duration

        assert repaired / fault_free < 2.0
        assert unrepaired / fault_free > 2.0
        assert repaired < unrepaired
