"""Unit tests for RTO estimation."""

import pytest

from repro.net.tcp.timer import RtoEstimator


def test_initial_rto():
    estimator = RtoEstimator(initial_rto=1.0)
    assert estimator.rto == 1.0


def test_first_sample_initialises_srtt():
    estimator = RtoEstimator(min_rto=0.0)
    estimator.sample(0.1)
    assert estimator.srtt == pytest.approx(0.1)
    assert estimator.rttvar == pytest.approx(0.05)
    assert estimator.rto == pytest.approx(0.1 + 4 * 0.05)


def test_smoothing_converges():
    estimator = RtoEstimator(min_rto=0.0)
    for _ in range(100):
        estimator.sample(0.2)
    assert estimator.srtt == pytest.approx(0.2, rel=0.01)
    assert estimator.rttvar == pytest.approx(0.0, abs=0.01)


def test_min_rto_clamp():
    estimator = RtoEstimator(min_rto=0.2)
    for _ in range(50):
        estimator.sample(0.001)
    assert estimator.rto == 0.2


def test_max_rto_clamp():
    estimator = RtoEstimator(max_rto=8.0)
    estimator.sample(10.0)
    assert estimator.rto == 8.0


def test_backoff_doubles():
    estimator = RtoEstimator(min_rto=0.2, max_rto=60.0, initial_rto=1.0)
    estimator.sample(0.5)
    base = estimator.rto
    estimator.back_off()
    assert estimator.rto == pytest.approx(2 * base)
    estimator.back_off()
    assert estimator.rto == pytest.approx(4 * base)


def test_backoff_capped_at_max():
    estimator = RtoEstimator(max_rto=4.0)
    estimator.sample(1.0)
    for _ in range(20):
        estimator.back_off()
    assert estimator.rto == 4.0
    assert estimator.backoff_exponent < 20  # stops growing at the cap


def test_sample_resets_backoff():
    estimator = RtoEstimator(min_rto=0.0)
    estimator.sample(0.5)
    estimator.back_off()
    estimator.back_off()
    estimator.sample(0.5)
    assert estimator.backoff_exponent == 0


def test_reset_backoff():
    estimator = RtoEstimator()
    estimator.back_off()
    estimator.reset_backoff()
    assert estimator.backoff_exponent == 0


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RtoEstimator().sample(-0.1)


def test_variance_tracks_jitter():
    smooth = RtoEstimator(min_rto=0.0)
    jittery = RtoEstimator(min_rto=0.0)
    for i in range(50):
        smooth.sample(0.2)
        jittery.sample(0.1 if i % 2 else 0.3)
    assert jittery.rto > smooth.rto
