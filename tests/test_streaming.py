"""Tests for the UDP streaming experiments (§V-C)."""

from repro.experiments.streaming import (StreamingConfig, make_frames,
                                         run_streaming)


def config(**kwargs) -> StreamingConfig:
    defaults = dict(frame_count=150, seed=11)
    defaults.update(kwargs)
    return StreamingConfig(**defaults)


class TestFrameGenerator:
    def test_counts_and_sizes(self):
        frames = make_frames(config())
        assert len(frames) == 150
        assert all(len(frame) == 1200 for frame in frames)

    def test_deterministic(self):
        assert make_frames(config()) == make_frames(config())

    def test_overlap_present(self):
        frames = make_frames(config())
        # Each frame embeds the previous frame's tail (at a different
        # offset — which is exactly what content-defined fingerprints
        # tolerate and fixed-offset comparison would miss).
        assert frames[1][-400:] in frames[2]


class TestCleanChannel:
    def test_all_frames_delivered_no_dre(self):
        result = run_streaming(config(policy=None))
        assert result.frames_delivered == result.frames_sent

    def test_k_distance_compresses_and_delivers(self):
        raw = run_streaming(config(policy=None))
        dre = run_streaming(config(policy="k_distance", k=8))
        assert dre.frames_delivered == dre.frames_sent
        assert dre.bytes_on_link < 0.8 * raw.bytes_on_link

    def test_larger_k_compresses_more(self):
        k4 = run_streaming(config(policy="k_distance", k=4))
        k32 = run_streaming(config(policy="k_distance", k=32))
        assert k32.bytes_on_link < k4.bytes_on_link


class TestLossyChannel:
    def test_loss_costs_frames_without_retransmission(self):
        result = run_streaming(config(policy=None, loss_rate=0.05))
        assert result.frames_delivered < result.frames_sent
        assert result.channel_lost > 0

    def test_dependency_amplification_grows_with_k(self):
        """§V-C's trade in pure form: larger k → more undecodable
        frames per channel loss (no retransmissions to repair them)."""
        k4 = run_streaming(config(policy="k_distance", k=4,
                                  loss_rate=0.05))
        k32 = run_streaming(config(policy="k_distance", k=32,
                                   loss_rate=0.05))
        assert k32.undecodable > k4.undecodable
        assert k32.delivery_fraction < k4.delivery_fraction

    def test_k_bounds_damage(self):
        """A single loss costs at most ~k frames."""
        result = run_streaming(config(policy="k_distance", k=4,
                                      loss_rate=0.02))
        assert result.undecodable <= result.channel_lost * 4

    def test_naive_policy_on_udp_also_works_but_amplifies(self):
        """Without references, a loss can poison everything after it
        (until the content chain naturally breaks)."""
        naive = run_streaming(config(policy="naive", loss_rate=0.02))
        kdist = run_streaming(config(policy="k_distance", k=8,
                                     loss_rate=0.02))
        assert naive.undecodable >= kdist.undecodable
