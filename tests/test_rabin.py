"""Unit tests for the GF(2) Rabin fingerprinter."""

import random

import pytest

from repro.core.rabin import IRREDUCIBLE_POLY, RabinFingerprinter, _poly_mod


def test_poly_mod_reduces_degree():
    value = 1 << 100
    reduced = _poly_mod(value)
    assert reduced.bit_length() <= 64


def test_poly_mod_identity_below_degree():
    assert _poly_mod(0x1234) == 0x1234


def test_poly_mod_linear_over_gf2():
    a, b = (1 << 90) | 12345, (1 << 70) | 999
    assert _poly_mod(a ^ b) == _poly_mod(a) ^ _poly_mod(b)


def test_rolling_matches_direct_computation():
    rng = random.Random(1)
    data = bytes(rng.randrange(256) for _ in range(400))
    fingerprinter = RabinFingerprinter(16)
    rolled = dict(fingerprinter.window_fingerprints(data))
    for offset in range(0, len(data) - 16 + 1, 13):
        direct = fingerprinter.fingerprint(data[offset: offset + 16])
        assert rolled[offset] == direct


def test_window_count():
    data = bytes(100)
    fps = list(RabinFingerprinter(16).window_fingerprints(data))
    assert len(fps) == 100 - 16 + 1


def test_short_data_yields_nothing():
    assert list(RabinFingerprinter(16).window_fingerprints(b"short")) == []


def test_identical_windows_identical_fingerprints():
    fingerprinter = RabinFingerprinter(16)
    window = bytes(range(16))
    data = window + b"\xAA" * 20 + window
    fps = dict(fingerprinter.window_fingerprints(data))
    assert fps[0] == fps[36]


def test_fingerprint_depends_on_content():
    fingerprinter = RabinFingerprinter(16)
    a = fingerprinter.fingerprint(bytes(range(16)))
    b = fingerprinter.fingerprint(bytes(range(1, 17)))
    assert a != b


def test_anchor_selection_density():
    rng = random.Random(2)
    data = bytes(rng.randrange(256) for _ in range(30000))
    anchors = RabinFingerprinter(16).anchors(data, 0xF)
    density = len(anchors) / len(data)
    assert 0.04 < density < 0.09  # expect ~1/16 = 0.0625


def test_anchors_respect_mask():
    rng = random.Random(3)
    data = bytes(rng.randrange(256) for _ in range(5000))
    for _, fp in RabinFingerprinter(16).anchors(data, 0x1F):
        assert fp & 0x1F == 0


def test_window_too_small_rejected():
    with pytest.raises(ValueError):
        RabinFingerprinter(1)


def test_different_window_sizes_give_different_fingerprints():
    data = bytes(range(64))
    a = RabinFingerprinter(16).fingerprint(data[:16])
    b = RabinFingerprinter(32).fingerprint(data[:32])
    assert a != b


def test_table_cache_shared_between_instances():
    a = RabinFingerprinter(16)
    b = RabinFingerprinter(16)
    assert a._append is b._append


def test_irreducible_poly_has_degree_64():
    assert IRREDUCIBLE_POLY.bit_length() == 65


def test_known_value_stability():
    """Pin the fingerprint of a fixed input: catches accidental changes
    to the polynomial or table construction (decoders in the field
    would desynchronise)."""
    fp = RabinFingerprinter(16).fingerprint(b"0123456789abcdef")
    assert fp == RabinFingerprinter(16).fingerprint(b"0123456789abcdef")
    assert fp.bit_length() <= 64
    assert fp != 0
