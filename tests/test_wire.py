"""Unit tests for the encoded-packet wire format."""

import pytest

from repro.core.region import Region
from repro.core.wire import (ENCODED_HEADER_SIZE, FIELD_SIZE,
                             MIN_REGION_LENGTH, EncodedPayload,
                             MissingFingerprintError, WireFormatError,
                             encode_payload, encoded_size, is_encoded,
                             parse_payload, reconstruct, wrap_raw)


def region(fp=0xAB, off_new=0, off_stored=0, length=20):
    return Region(fingerprint=fp, offset_new=off_new,
                  offset_stored=off_stored, length=length)


class TestRawPath:
    def test_wrap_and_parse_raw(self):
        payload = b"hello world"
        shimmed = wrap_raw(payload)
        assert len(shimmed) == len(payload) + 2
        assert not is_encoded(shimmed)
        assert parse_payload(shimmed) == payload

    def test_empty_payload(self):
        assert parse_payload(wrap_raw(b"")) == b""


class TestEncodedPath:
    def test_roundtrip_single_region(self):
        stored = bytes(range(200))
        payload = b"head" + stored[50:100] + b"tail"
        regions = [region(off_new=4, off_stored=50, length=50)]
        wire = encode_payload(payload, regions)
        assert is_encoded(wire)
        parsed = parse_payload(wire)
        assert isinstance(parsed, EncodedPayload)
        rebuilt = reconstruct(parsed, lambda fp: stored)
        assert rebuilt == payload

    def test_roundtrip_multiple_regions(self):
        stored = bytes(range(256))
        payload = (b"A" * 10 + stored[0:30] + b"B" * 5
                   + stored[100:140] + b"C" * 7)
        regions = [
            Region(fingerprint=1, offset_new=10, offset_stored=0, length=30),
            Region(fingerprint=2, offset_new=45, offset_stored=100, length=40),
        ]
        wire = encode_payload(payload, regions)
        rebuilt = reconstruct(parse_payload(wire), lambda fp: stored)
        assert rebuilt == payload

    def test_field_size_matches_paper(self):
        """§III-B: fp 8 B + offsets 2+2 B + length 2 B = 14 bytes."""
        assert FIELD_SIZE == 14
        assert MIN_REGION_LENGTH == 15  # encode only when len > 14

    def test_wire_size_accounting(self):
        stored = bytes(range(200))
        payload = stored[:100] + b"x" * 60
        regions = [region(off_new=0, off_stored=0, length=100)]
        wire = encode_payload(payload, regions)
        assert len(wire) == ENCODED_HEADER_SIZE + FIELD_SIZE + 60
        assert len(wire) == encoded_size(len(payload), regions)

    def test_no_regions_is_raw(self):
        wire = encode_payload(b"data", [])
        assert not is_encoded(wire)

    def test_region_at_payload_end(self):
        stored = bytes(range(100))
        payload = b"pre" + stored[20:70]
        regions = [region(off_new=3, off_stored=20, length=50)]
        rebuilt = reconstruct(parse_payload(encode_payload(payload, regions)),
                              lambda fp: stored)
        assert rebuilt == payload

    def test_whole_payload_region(self):
        stored = bytes(range(220))
        payload = stored[10:210]
        regions = [region(off_new=0, off_stored=10, length=200)]
        wire = encode_payload(payload, regions)
        assert len(wire) == ENCODED_HEADER_SIZE + FIELD_SIZE
        rebuilt = reconstruct(parse_payload(wire), lambda fp: stored)
        assert rebuilt == payload


class TestErrors:
    def test_overlapping_regions_rejected_on_encode(self):
        payload = bytes(100)
        regions = [region(off_new=0, length=50),
                   region(fp=2, off_new=30, length=40)]
        with pytest.raises(WireFormatError):
            encode_payload(payload, regions)

    def test_region_past_payload_rejected(self):
        with pytest.raises(WireFormatError):
            encode_payload(bytes(30), [region(off_new=20, length=20)])

    def test_oversized_payload_rejected(self):
        with pytest.raises(WireFormatError):
            encode_payload(bytes(70000), [region()])

    def test_bad_magic(self):
        with pytest.raises(WireFormatError):
            parse_payload(b"\x00\x00payload")

    def test_truncated_shim(self):
        with pytest.raises(WireFormatError):
            parse_payload(b"\xd5")

    def test_bad_flags(self):
        with pytest.raises(WireFormatError):
            parse_payload(bytes([0xD5, 0x7F]) + b"rest")

    def test_truncated_field_table(self):
        stored = bytes(range(100))
        payload = stored[:50]
        wire = encode_payload(payload, [region(length=50)])
        with pytest.raises(WireFormatError):
            parse_payload(wire[: ENCODED_HEADER_SIZE + 5])

    def test_missing_fingerprint_raises(self):
        stored = bytes(range(100))
        payload = stored[:50]
        parsed = parse_payload(encode_payload(payload, [region(length=50)]))
        with pytest.raises(MissingFingerprintError) as excinfo:
            reconstruct(parsed, lambda fp: None)
        assert excinfo.value.fingerprint == 0xAB

    def test_region_exceeding_cached_payload(self):
        stored = bytes(range(100))
        payload = stored[:50]
        parsed = parse_payload(encode_payload(payload, [region(length=50)]))
        with pytest.raises(WireFormatError):
            reconstruct(parsed, lambda fp: stored[:10])

    def test_length_mismatch_detected(self):
        stored = bytes(range(100))
        payload = stored[:50] + b"xx"
        wire = bytearray(encode_payload(payload, [region(length=50)]))
        wire[5] += 1  # corrupt orig_len
        with pytest.raises(WireFormatError):
            reconstruct(parse_payload(bytes(wire)), lambda fp: stored)
