"""Unit tests for the vectorised rolling fingerprinter."""

import random

import numpy as np
import pytest

from repro.core.polyhash import PolyFingerprinter, _BASE, _mix


def naive_window_hash(data: bytes, base: int) -> int:
    """Direct evaluation of the pre-mix polynomial definition."""
    mod = 1 << 64
    total = 0
    for j, byte in enumerate(data):
        total = (total + byte * pow(base, j, mod)) % mod
    return total


def test_hashes_match_naive_definition():
    rng = random.Random(1)
    data = bytes(rng.randrange(256) for _ in range(64))
    fingerprinter = PolyFingerprinter(16)
    hashes = fingerprinter.hashes(data)
    for offset in (0, 7, 31, 48):
        window = data[offset: offset + 16]
        expected = _mix(np.array([naive_window_hash(window, int(_BASE))],
                                 dtype=np.uint64))[0]
        assert hashes[offset] == expected


def test_window_count_and_types():
    data = bytes(200)
    fingerprinter = PolyFingerprinter(16)
    hashes = fingerprinter.hashes(data)
    assert len(hashes) == 200 - 16 + 1
    assert hashes.dtype == np.uint64


def test_short_data_empty():
    assert len(PolyFingerprinter(16).hashes(b"abc")) == 0
    with pytest.raises(ValueError):
        PolyFingerprinter(16).fingerprint(b"abc")


def test_identical_windows_same_hash():
    window = bytes(range(16))
    data = window + b"\x00" * 10 + window
    fingerprinter = PolyFingerprinter(16)
    hashes = fingerprinter.hashes(data)
    assert hashes[0] == hashes[26]


def test_content_defined_anchors_shift_with_content():
    """Anchors are positions of content, not absolute offsets: a prefix
    shift moves every anchor by the same amount."""
    rng = random.Random(5)
    body = bytes(rng.randrange(256) for _ in range(3000))
    fingerprinter = PolyFingerprinter(16)
    anchors = fingerprinter.anchors(body, 0xF)
    shifted = fingerprinter.anchors(b"\x99" * 7 + body, 0xF)
    shifted_set = {(off, fp) for off, fp in shifted}
    preserved = sum(1 for off, fp in anchors
                    if (off + 7, fp) in shifted_set)
    assert preserved >= len(anchors) - 2  # edge windows may change


def test_anchor_density_on_structured_data():
    """The mixing step keeps selection ~2^-k even on ASCII text."""
    text = (b"the quick brown fox jumps over the lazy dog " * 700)
    anchors = PolyFingerprinter(16).anchors(text, 0xF)
    density = len(anchors) / len(text)
    assert 0.02 < density < 0.15


def test_anchors_respect_mask():
    rng = random.Random(6)
    data = bytes(rng.randrange(256) for _ in range(5000))
    for _, fp in PolyFingerprinter(16).anchors(data, 0x3F):
        assert fp & 0x3F == 0


def test_deterministic_across_instances():
    data = bytes(range(256)) * 4
    a = PolyFingerprinter(16).anchors(data, 0xF)
    b = PolyFingerprinter(16).anchors(data, 0xF)
    assert a == b


def test_window_too_small_rejected():
    with pytest.raises(ValueError):
        PolyFingerprinter(0)


def test_mix_is_injective_on_sample():
    values = np.arange(10000, dtype=np.uint64)
    mixed = _mix(values)
    assert len(set(int(v) for v in mixed)) == len(values)


def test_rabin_and_poly_agree_on_selection_rate():
    """The two schemes are interchangeable statistically (DESIGN.md)."""
    from repro.core.rabin import RabinFingerprinter

    rng = random.Random(7)
    data = bytes(rng.randrange(256) for _ in range(40000))
    rabin_density = len(RabinFingerprinter(16).anchors(data, 0xF)) / len(data)
    poly_density = len(PolyFingerprinter(16).anchors(data, 0xF)) / len(data)
    assert abs(rabin_density - poly_density) < 0.02
