"""Tests for metric aggregation, profiling, and report formatting."""

import math

import pytest

from repro.app.transfer import TransferOutcome
from repro.metrics import (Aggregate, RatioPoint, Series, StageProfiler,
                           TransferResult, format_series, format_table,
                           format_timeseries, profiler_if, sweep)
from repro.metrics.report import format_flight_recorder
from repro.sim.link import LinkStats


class TestAggregate:
    def test_mean_std(self):
        aggregate = Aggregate(x=1.0, values=[1.0, 2.0, 3.0])
        assert aggregate.mean == 2.0
        assert aggregate.std == pytest.approx(1.0)
        assert aggregate.n == 3

    def test_empty_is_nan(self):
        aggregate = Aggregate(x=1.0)
        assert math.isnan(aggregate.mean)

    def test_single_value_has_no_spread_information(self):
        # One sample tells you nothing about dispersion: 0.0 would read
        # as "measured, no uncertainty", so the spread stats are nan.
        aggregate = Aggregate(x=1.0, values=[5.0])
        assert math.isnan(aggregate.std)
        assert math.isnan(aggregate.stderr)
        assert math.isnan(aggregate.ci95)
        assert aggregate.mean == 5.0  # the mean itself is well-defined

    def test_empty_spread_is_nan(self):
        aggregate = Aggregate(x=1.0)
        assert math.isnan(aggregate.std)
        assert math.isnan(aggregate.ci95)

    def test_add_skips_none_and_nan(self):
        aggregate = Aggregate(x=1.0)
        aggregate.add(None)
        aggregate.add(float("nan"))
        aggregate.add(2.0)
        assert aggregate.values == [2.0]


class TestSeries:
    def test_point_creates_and_reuses(self):
        series = Series("s")
        a = series.point(1.0)
        b = series.point(1.0)
        assert a is b
        series.point(2.0)
        assert series.xs() == [1.0, 2.0]

    def test_sweep_runs_cross_product(self):
        calls = []

        def run(x, seed):
            calls.append((x, seed))
            return x * 10 + seed

        series = sweep([1.0, 2.0], [1, 2], run, name="demo")
        assert len(calls) == 4
        assert series.point(1.0).values == [11.0, 12.0]

    def test_sweep_skips_none(self):
        series = sweep([1.0], [1, 2],
                       lambda x, seed: None if seed == 1 else 5.0)
        assert series.point(1.0).values == [5.0]


class TestReports:
    def test_format_table_alignment(self):
        text = format_table("T", ["col_a", "b"], [["x", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col_a" in lines[2]
        assert "longer" in lines[-1]
        assert "2.500" in lines[-1]

    def test_format_series_merges_xs(self):
        a = Series("a")
        a.point(1.0).add(10.0)
        b = Series("b")
        b.point(2.0).add(20.0)
        text = format_series("S", "x", [a, b])
        assert "10.000" in text
        assert "20.000" in text
        assert text.count("—") > 0  # missing cells rendered as em-dashes

    def test_format_series_shows_ci_with_multiple_samples(self):
        series = Series("s")
        series.point(1.0).add(10.0)
        series.point(1.0).add(12.0)
        assert "±" in format_series("S", "x", [series])

    def test_format_series_single_sample_has_no_ci(self):
        series = Series("s")
        series.point(1.0).add(10.0)
        text = format_series("S", "x", [series])
        assert "±" not in text
        assert "nan" not in text

    def test_format_table_empty_rows(self):
        text = format_table("Empty", ["a", "b"], [])
        lines = text.splitlines()
        assert lines[0] == "Empty"
        assert len(lines) == 4  # title, rule, headers, divider — no rows
        assert "a" in lines[2] and "b" in lines[2]

    def test_format_table_non_string_cells(self):
        text = format_table("T", ["k", "v"],
                            [[None, 1], [True, 2.5], [(1, 2), b"x"]])
        assert "None" in text
        assert "True" in text
        assert "2.500" in text
        assert "(1, 2)" in text

    def test_format_table_renders_nan_as_dash(self):
        text = format_table("T", ["v"], [[float("nan")]])
        assert "—" in text
        assert "nan" not in text


class TestStageProfiler:
    def test_context_manager_times_block(self):
        profiler = StageProfiler()
        with profiler.time("fingerprint"):
            pass
        assert profiler.count("fingerprint") == 1
        assert profiler.total("fingerprint") >= 0.0
        with profiler.time("fingerprint"):
            pass
        assert profiler.count("fingerprint") == 2

    def test_unknown_stage_names_are_allowed(self):
        profiler = StageProfiler()
        profiler.add("custom_stage", 0.5)
        assert profiler.total("custom_stage") == 0.5
        # Unknown stages sort after the canonical ones.
        profiler.add("event_dispatch", 0.1)
        order = [stage for stage, _, _ in profiler.stages()]
        assert order == ["event_dispatch", "custom_stage"]
        assert "custom_stage" in profiler.report()

    def test_unmeasured_stage_reads_zero(self):
        profiler = StageProfiler()
        assert profiler.total("fingerprint") == 0.0
        assert profiler.count("fingerprint") == 0

    def test_merge_across_runs(self):
        first = StageProfiler()
        first.add("fingerprint", 1.0)
        first.add("cache_ops", 0.25)
        second = StageProfiler()
        second.add("fingerprint", 2.0)
        second.add("region_expand", 0.5)
        first.merge(second)
        assert first.total("fingerprint") == 3.0
        assert first.count("fingerprint") == 2
        assert first.total("region_expand") == 0.5
        assert first.total("cache_ops") == 0.25
        # merge must not mutate the source
        assert second.total("cache_ops") == 0.0

    def test_as_dict_round_trips_through_stages(self):
        profiler = StageProfiler()
        profiler.add("fingerprint", 0.5)
        profiler.add("fingerprint", 0.5)
        snapshot = profiler.as_dict()
        assert snapshot["fingerprint"]["seconds"] == 1.0
        assert snapshot["fingerprint"]["calls"] == 2.0

    def test_profiler_if(self):
        assert profiler_if(False) is None
        assert isinstance(profiler_if(True), StageProfiler)


class TestTimeseriesRendering:
    def test_chart_shows_range_and_trajectory(self):
        times = [i * 0.1 for i in range(40)]
        values = [float(i) for i in range(40)]
        text = format_timeseries("tcp.cwnd", times, values,
                                 width=40, height=6)
        assert "tcp.cwnd" in text
        assert "min 0" in text
        assert "max 39" in text
        assert "last 39" in text

    def test_none_and_nan_samples_are_skipped(self):
        times = [0.0, 1.0, 2.0, 3.0]
        values = [None, float("nan"), 5.0, 7.0]
        text = format_timeseries("g", times, values)
        assert "min 5" in text
        assert "max 7" in text

    def test_all_missing_series(self):
        text = format_timeseries("g", [0.0, 1.0], [None, None])
        assert "(no samples)" in text

    def test_constant_series_does_not_divide_by_zero(self):
        text = format_timeseries("g", [0.0, 1.0, 2.0], [3.0, 3.0, 3.0])
        assert "min 3" in text and "max 3" in text

    def test_flight_recorder_table(self):
        events = [{"time": 1.5, "source": "decoder-gw",
                   "event": "drop_undecodable",
                   "detail": {"packet_id": 7, "missing": 2}},
                  {"time": 2.0, "source": "encoder-gw", "event": "encode",
                   "detail": {}}]
        text = format_flight_recorder(events)
        assert "drop_undecodable" in text
        assert "packet_id=7" in text
        assert "1.500000" in text


def make_result(bytes_offered=1000, duration=2.0, **kwargs):
    outcome = TransferOutcome(name="o", expected_size=100,
                              bytes_received=100, started_at=0.0,
                              finished_at=duration)
    outcome.completed = True
    forward = LinkStats(bytes_offered=bytes_offered, packets_offered=10)
    return TransferResult(outcome=outcome, bottleneck_forward=forward,
                          bottleneck_reverse=LinkStats(), **kwargs)


class TestTransferResult:
    def test_perceived_loss_without_gateways_is_channel_loss(self):
        result = make_result()
        result.bottleneck_forward.packets_lost = 2
        assert result.perceived_loss_rate == pytest.approx(0.2)

    def test_perceived_loss_with_gateways(self):
        from repro.gateway.middlebox import GatewayStats

        result = make_result(
            encoder_stats=GatewayStats(data_packets=100),
            decoder_stats=GatewayStats(decoded_ok=80))
        assert result.perceived_loss_rate == pytest.approx(0.2)

    def test_ratio_point(self):
        dre = make_result(bytes_offered=550, duration=1.5)
        baseline = make_result(bytes_offered=1000, duration=2.0)
        point = RatioPoint.from_results(0.05, dre, baseline)
        assert point.bytes_ratio == pytest.approx(0.55)
        assert point.delay_ratio == pytest.approx(0.75)

    def test_ratio_point_stalled_dre(self):
        dre = make_result(bytes_offered=550, duration=2.0)
        dre.outcome.finished_at = None
        baseline = make_result()
        point = RatioPoint.from_results(0.05, dre, baseline)
        assert point.delay_ratio is None


class TestStageAccounting:
    """The profiler's stage totals must account for the wall time."""

    def test_batch_stages_are_canonical(self):
        from repro.metrics.profiling import STAGES

        for stage in ("batch_fingerprint", "table_probe", "wire_pack",
                      "merge"):
            assert stage in STAGES

    def test_stage_totals_sum_to_wall_time(self):
        import random
        import time as _time

        from repro.core.cache import ByteCache
        from repro.core.encoder import ByteCachingEncoder
        from repro.core.fingerprint import FingerprintScheme
        from repro.core.policies import PacketMeta, make_policy_pair
        from repro.workload.corpus import corpus_object

        rnd = random.Random(0xBC)
        fresh = [rnd.randbytes(1460) for _ in range(24)]
        data = corpus_object("file1", seed=3)
        cold = [data[i: i + 1460]
                for i in range(0, len(data), 1460)][:48]
        packets = fresh + cold + cold
        metas = [PacketMeta(packet_id=i, flow=("t", 0),
                            tcp_seq=i * 1460, counter=i)
                 for i in range(len(packets))]
        scheme = FingerprintScheme(window=16, zero_bits=4)
        policy, _ = make_policy_pair("naive")
        encoder = ByteCachingEncoder(scheme, ByteCache(1 << 24), policy)
        encoder.encode_batch(packets, metas)     # warm numpy workspaces
        profiler = StageProfiler()
        encoder.profiler = profiler
        started = _time.perf_counter()
        encoder.encode_batch(packets, metas)
        wall = _time.perf_counter() - started
        for stage in ("batch_fingerprint", "table_probe",
                      "region_expand", "wire_pack", "cache_ops"):
            assert profiler.count(stage) > 0, stage
        stage_sum = sum(total for _, total, _ in profiler.stages())
        # The stages tile the batch pass: only loop glue is untimed, so
        # the sum must land within tolerance of the measured wall time
        # (and never exceed it beyond timer resolution).
        assert stage_sum <= wall * 1.05
        assert stage_sum >= wall * 0.65, (
            f"stages cover only {stage_sum / wall:.0%} of wall time")

    def test_merge_stage_accumulates(self):
        from repro.experiments import ExperimentConfig
        from repro.experiments.multiflow import run_parallel_flows

        profiler = StageProfiler()
        run_parallel_flows([ExperimentConfig(file_size=10 * 1460)],
                           profiler=profiler)
        assert profiler.count("merge") == 1
        assert profiler.total("merge") >= 0.0
