"""Tests for metric aggregation and report formatting."""

import math

import pytest

from repro.app.transfer import TransferOutcome
from repro.metrics import (Aggregate, RatioPoint, Series, TransferResult,
                           format_series, format_table, sweep)
from repro.sim.link import LinkStats


class TestAggregate:
    def test_mean_std(self):
        aggregate = Aggregate(x=1.0, values=[1.0, 2.0, 3.0])
        assert aggregate.mean == 2.0
        assert aggregate.std == pytest.approx(1.0)
        assert aggregate.n == 3

    def test_empty_is_nan(self):
        aggregate = Aggregate(x=1.0)
        assert math.isnan(aggregate.mean)

    def test_single_value_zero_std(self):
        aggregate = Aggregate(x=1.0, values=[5.0])
        assert aggregate.std == 0.0
        assert aggregate.ci95 == 0.0

    def test_add_skips_none_and_nan(self):
        aggregate = Aggregate(x=1.0)
        aggregate.add(None)
        aggregate.add(float("nan"))
        aggregate.add(2.0)
        assert aggregate.values == [2.0]


class TestSeries:
    def test_point_creates_and_reuses(self):
        series = Series("s")
        a = series.point(1.0)
        b = series.point(1.0)
        assert a is b
        series.point(2.0)
        assert series.xs() == [1.0, 2.0]

    def test_sweep_runs_cross_product(self):
        calls = []

        def run(x, seed):
            calls.append((x, seed))
            return x * 10 + seed

        series = sweep([1.0, 2.0], [1, 2], run, name="demo")
        assert len(calls) == 4
        assert series.point(1.0).values == [11.0, 12.0]

    def test_sweep_skips_none(self):
        series = sweep([1.0], [1, 2],
                       lambda x, seed: None if seed == 1 else 5.0)
        assert series.point(1.0).values == [5.0]


class TestReports:
    def test_format_table_alignment(self):
        text = format_table("T", ["col_a", "b"], [["x", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col_a" in lines[2]
        assert "longer" in lines[-1]
        assert "2.500" in lines[-1]

    def test_format_series_merges_xs(self):
        a = Series("a")
        a.point(1.0).add(10.0)
        b = Series("b")
        b.point(2.0).add(20.0)
        text = format_series("S", "x", [a, b])
        assert "10.000" in text
        assert "20.000" in text
        assert text.count("-") > 0  # missing cells rendered as dashes

    def test_format_series_shows_ci_with_multiple_samples(self):
        series = Series("s")
        series.point(1.0).add(10.0)
        series.point(1.0).add(12.0)
        assert "±" in format_series("S", "x", [series])


def make_result(bytes_offered=1000, duration=2.0, **kwargs):
    outcome = TransferOutcome(name="o", expected_size=100,
                              bytes_received=100, started_at=0.0,
                              finished_at=duration)
    outcome.completed = True
    forward = LinkStats(bytes_offered=bytes_offered, packets_offered=10)
    return TransferResult(outcome=outcome, bottleneck_forward=forward,
                          bottleneck_reverse=LinkStats(), **kwargs)


class TestTransferResult:
    def test_perceived_loss_without_gateways_is_channel_loss(self):
        result = make_result()
        result.bottleneck_forward.packets_lost = 2
        assert result.perceived_loss_rate == pytest.approx(0.2)

    def test_perceived_loss_with_gateways(self):
        from repro.gateway.middlebox import GatewayStats

        result = make_result(
            encoder_stats=GatewayStats(data_packets=100),
            decoder_stats=GatewayStats(decoded_ok=80))
        assert result.perceived_loss_rate == pytest.approx(0.2)

    def test_ratio_point(self):
        dre = make_result(bytes_offered=550, duration=1.5)
        baseline = make_result(bytes_offered=1000, duration=2.0)
        point = RatioPoint.from_results(0.05, dre, baseline)
        assert point.bytes_ratio == pytest.approx(0.55)
        assert point.delay_ratio == pytest.approx(0.75)

    def test_ratio_point_stalled_dre(self):
        dre = make_result(bytes_offered=550, duration=2.0)
        dre.outcome.finished_at = None
        baseline = make_result()
        point = RatioPoint.from_results(0.05, dre, baseline)
        assert point.delay_ratio is None
