"""Unit tests for the byte caches (packet store + fingerprint table)."""

import pytest

from repro.core.cache import (ByteCache, CacheEntry, FingerprintTable,
                              PacketStore)


class TestPacketStore:
    def test_add_and_get(self):
        store = PacketStore()
        store_id = store.add(b"payload")
        assert store.get(store_id) == b"payload"
        assert store_id in store

    def test_byte_budget_evicts_fifo(self):
        store = PacketStore(byte_budget=100)
        ids = [store.add(b"x" * 40) for _ in range(4)]
        assert ids[0] not in store
        assert ids[1] not in store  # 160 -> evict until <= 100
        assert ids[2] in store and ids[3] in store
        assert store.evictions == 2

    def test_max_packets_evicts_fifo(self):
        store = PacketStore(byte_budget=1 << 20, max_packets=2)
        ids = [store.add(b"abc") for _ in range(3)]
        assert ids[0] not in store
        assert len(store) == 2

    def test_bytes_used_tracks_evictions(self):
        store = PacketStore(byte_budget=100)
        store.add(b"x" * 60)
        store.add(b"y" * 60)
        assert store.bytes_used == 60

    def test_clear(self):
        store = PacketStore()
        store.add(b"data")
        store.clear()
        assert len(store) == 0
        assert store.bytes_used == 0

    @pytest.mark.parametrize("kwargs", [
        {"byte_budget": 0}, {"byte_budget": -1},
        {"byte_budget": 10, "max_packets": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PacketStore(**kwargs)


class TestFingerprintTable:
    def test_put_get_remove(self):
        table = FingerprintTable()
        entry = CacheEntry(fingerprint=42, store_id=1, offset=0)
        table.put(entry)
        assert table.get(42) is entry
        table.remove(42)
        assert table.get(42) is None

    def test_newest_wins_replacement(self):
        table = FingerprintTable()
        table.put(CacheEntry(fingerprint=42, store_id=1, offset=0))
        newer = CacheEntry(fingerprint=42, store_id=2, offset=7)
        table.put(newer)
        assert table.get(42) is newer
        assert table.replacements == 1
        assert len(table) == 1

    def test_remove_missing_is_noop(self):
        FingerprintTable().remove(999)


class TestByteCache:
    def anchors(self, payload):
        return [(0, 100), (20, 200)]

    def test_insert_and_lookup(self):
        cache = ByteCache()
        cache.insert_packet(b"p" * 64, self.anchors(None), tcp_seq=5,
                            flow=("f",), packet_counter=3, external_id=77)
        entry, payload = cache.lookup(100)
        assert payload == b"p" * 64
        assert entry.tcp_seq == 5
        assert entry.flow == ("f",)
        assert entry.packet_counter == 3
        assert cache.external_id_for(entry.store_id) == 77

    def test_lookup_miss_returns_none(self):
        assert ByteCache().lookup(123) is None

    def test_lazy_invalidation_after_eviction(self):
        cache = ByteCache(byte_budget=100)
        cache.insert_packet(b"a" * 80, [(0, 1)])
        cache.insert_packet(b"b" * 80, [(0, 2)])  # evicts the first
        assert cache.lookup(1) is None            # removed lazily
        assert cache.table.get(1) is None
        entry, payload = cache.lookup(2)
        assert payload == b"b" * 80

    def test_replacement_points_to_newest_packet(self):
        """§III-A: 'updates its cache by replacing the entry for r from
        Pstored to Pnew'."""
        cache = ByteCache()
        cache.insert_packet(b"old" * 30, [(4, 55)])
        cache.insert_packet(b"new" * 30, [(9, 55)])
        entry, payload = cache.lookup(55)
        assert payload == b"new" * 30
        assert entry.offset == 9

    def test_flush_clears_everything(self):
        cache = ByteCache()
        cache.insert_packet(b"data", [(0, 9)], external_id=5)
        cache.flush()
        assert cache.lookup(9) is None
        assert len(cache.store) == 0
        assert cache.flushes == 1
        assert cache.external_id_for(1) is None

    def test_mark_unusable_blocks_lookup(self):
        cache = ByteCache()
        cache.insert_packet(b"data" * 10, [(0, 9)])
        assert cache.mark_unusable(9) is True
        assert cache.lookup(9) is None

    def test_mark_unusable_missing_fingerprint(self):
        assert ByteCache().mark_unusable(9) is False

    def test_unusable_entry_revives_on_replacement(self):
        cache = ByteCache()
        cache.insert_packet(b"one" * 20, [(0, 9)])
        cache.mark_unusable(9)
        cache.insert_packet(b"two" * 20, [(3, 9)])
        entry, payload = cache.lookup(9)
        assert payload == b"two" * 20

    def test_lookup_previous_returns_displaced_entry(self):
        cache = ByteCache()
        cache.insert_packet(b"old-payload" * 10, [(2, 9)])
        cache.insert_packet(b"new-payload" * 10, [(5, 9)])
        current = cache.lookup(9)
        previous = cache.lookup_previous(9)
        assert current[1] == b"new-payload" * 10
        assert previous[1] == b"old-payload" * 10
        assert previous[0].offset == 2

    def test_lookup_previous_empty_when_never_replaced(self):
        cache = ByteCache()
        cache.insert_packet(b"only" * 20, [(0, 9)])
        assert cache.lookup_previous(9) is None

    def test_lookup_previous_invalidated_by_eviction(self):
        cache = ByteCache(byte_budget=250)
        cache.insert_packet(b"a" * 100, [(0, 9)])
        cache.insert_packet(b"b" * 100, [(0, 9)])   # displaces a
        cache.insert_packet(b"c" * 100, [(0, 9)])   # evicts a's payload
        assert cache.lookup_previous(9) is None or \
            cache.lookup_previous(9)[1] == b"b" * 100

    def test_flush_clears_history(self):
        cache = ByteCache()
        cache.insert_packet(b"a" * 50, [(0, 9)])
        cache.insert_packet(b"b" * 50, [(0, 9)])
        cache.flush()
        assert cache.lookup_previous(9) is None

    def test_external_id_map_pruned(self):
        cache = ByteCache(byte_budget=1000, max_packets=4)
        for i in range(200):
            cache.insert_packet(b"x" * 100, [(0, i)], external_id=i)
        assert len(cache._external_ids) <= 4 * 4 + 64
