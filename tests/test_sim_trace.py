"""Unit tests for the structured tracer."""

from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER


def test_records_timestamped_with_bound_clock():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind_clock(lambda: sim.now)
    sim.at(1.5, tracer.emit, "src", "event")
    sim.run()
    assert tracer.records[0].time == 1.5


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit("src", "event")
    assert tracer.records == []


def test_null_tracer_is_disabled():
    NULL_TRACER.emit("src", "event")
    assert NULL_TRACER.records == []


def test_query_filters_by_source_and_event():
    tracer = Tracer()
    tracer.emit("a", "x")
    tracer.emit("a", "y")
    tracer.emit("b", "x")
    assert tracer.count(source="a") == 2
    assert tracer.count(event="x") == 2
    assert tracer.count(source="a", event="x") == 1
    assert tracer.count() == 3


def test_detail_kwargs_stored():
    tracer = Tracer()
    tracer.emit("a", "x", packet_id=7, reason="loss")
    assert tracer.records[0].detail == {"packet_id": 7, "reason": "loss"}


def test_max_records_caps_growth():
    tracer = Tracer(max_records=3)
    for i in range(10):
        tracer.emit("a", "x", i=i)
    assert len(tracer.records) == 3


def test_clear_resets():
    tracer = Tracer()
    tracer.emit("a", "x")
    tracer.clear()
    assert tracer.records == []
