"""Direct unit tests for the split-TCP proxy gateways (§II-A)."""

import random

import pytest

from repro.gateway.tcp_proxy import (TcpProxyGateway, _StreamCodec,
                                     create_proxy_pair)
from repro.core.fingerprint import FingerprintScheme
from repro.net.tcp import TCPConfig, TCPStack
from repro.sim import Host, Link, Simulator


def build_proxy_path(policy="tcp_seq", loss=0.0, seed=7):
    """client — G1 — bottleneck — G2 — server, proxy mode."""
    sim = Simulator()
    import random as _random

    client = Host(sim, "client", "10.0.1.1")
    server = Host(sim, "server", "10.0.2.1")
    tcp_config = TCPConfig()
    client_stack = TCPStack(sim, client, tcp_config)
    server_stack = TCPStack(sim, server, tcp_config)
    g1, g2 = create_proxy_pair(sim, "10.0.1.1", "10.0.2.1", policy=policy,
                               tcp_config=tcp_config)

    lan_c_up = Link(sim, 1e9, 0.0005)
    lan_c_down = Link(sim, 1e9, 0.0005)
    bott_up = Link(sim, 1e6, 0.0025)
    bott_down = Link(sim, 1e6, 0.0025, loss_rate=loss,
                     rng=_random.Random(seed))
    lan_s_up = Link(sim, 1e9, 0.0005)
    lan_s_down = Link(sim, 1e9, 0.0005)

    lan_c_up.connect(g1.receive)
    bott_up.connect(g2.receive)
    lan_s_up.connect(server.receive)
    lan_s_down.connect(g2.receive)
    bott_down.connect(g1.receive)
    lan_c_down.connect(client.receive)

    client.set_default_route(lan_c_up)
    server.set_default_route(lan_s_down)
    g1.attach_routes(toward_client=lan_c_down, toward_server=bott_up,
                     peer_address=g2.address, peer_side="server")
    g2.attach_routes(toward_client=bott_down, toward_server=lan_s_up,
                     peer_address=g1.address, peer_side="client")
    g1.connect_relay(g2.address)
    return sim, client_stack, server_stack, g1, g2, bott_down


def serve_and_fetch(sim, client_stack, server_stack, data, until=30.0):
    from repro.app.transfer import FileClient, FileServer

    FileServer(server_stack, {"thing": data})
    client = FileClient(client_stack, sim)
    outcome = client.fetch("10.0.2.1", "thing", expected_size=len(data),
                           expected_content=data,
                           on_done=lambda _o: sim.stop())
    sim.run(until=until)
    return outcome


class TestProxyTransfer:
    def test_transparent_transfer(self):
        sim, cs, ss, g1, g2, _ = build_proxy_path()
        rng = random.Random(0)
        data = rng.randbytes(100_000)
        outcome = serve_and_fetch(sim, cs, ss, data)
        assert outcome.completed
        assert outcome.content_ok is True

    def test_relay_compresses_redundancy(self):
        from repro.workload.corpus import corpus_object

        data = corpus_object("file1", size=80 * 1460, seed=3)
        sim, cs, ss, g1, g2, bott = build_proxy_path()
        outcome = serve_and_fetch(sim, cs, ss, data)
        assert outcome.completed
        assert bott.stats.bytes_offered < 0.8 * len(data)

    def test_loss_handled_by_relay_tcp(self):
        """Byte caching over TCP: packet loss cannot desynchronise the
        caches (§II's premise for the transport-layer mode)."""
        from repro.workload.corpus import corpus_object

        data = corpus_object("file1", size=60 * 1460, seed=3)
        sim, cs, ss, g1, g2, _ = build_proxy_path(loss=0.05)
        outcome = serve_and_fetch(sim, cs, ss, data, until=120.0)
        assert outcome.completed
        assert outcome.content_ok is True
        assert g1.undecodable_records == 0

    def test_server_sees_clients_address_and_port(self):
        sim, cs, ss, g1, g2, _ = build_proxy_path()
        rng = random.Random(1)
        outcome = serve_and_fetch(sim, cs, ss, rng.randbytes(5000))
        assert outcome.completed
        server_conns = ss.connections()
        assert len(server_conns) == 1
        assert server_conns[0].remote_addr == "10.0.1.1"
        # Transparent port spoofing: the upstream connection reuses the
        # client's ephemeral port.
        client_conns = cs.connections()
        assert server_conns[0].remote_port == client_conns[0].local_port

    def test_multiple_connections_multiplexed_on_one_relay(self):
        sim, cs, ss, g1, g2, _ = build_proxy_path()
        from repro.app.transfer import FileClient, FileServer

        rng = random.Random(2)
        files = {f"f{i}": rng.randbytes(20_000) for i in range(3)}
        FileServer(ss, files)
        client = FileClient(cs, sim)
        done = []
        for name, blob in files.items():
            client.fetch("10.0.2.1", name, expected_size=len(blob),
                         expected_content=blob, on_done=done.append)
        sim.run(until=30)
        assert len(done) == 3
        assert all(outcome.content_ok for outcome in done)

    def test_bad_role_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TcpProxyGateway(sim, "x", "sideways", "10.9.9.9",
                            "10.0.1.1", "10.0.2.1")


class TestCodecPolicies:
    @pytest.mark.parametrize("policy", ["naive", "tcp_seq", "cache_flush"])
    def test_stream_codec_roundtrip_policies(self, policy):
        rng = random.Random(3)
        scheme = FingerprintScheme()
        sender = _StreamCodec(policy, scheme, 1 << 22)
        receiver = _StreamCodec(policy, scheme, 1 << 22)
        chunk = rng.randbytes(500)
        for index in range(8):
            record = chunk + rng.randbytes(400)
            blob = sender.encode_record(1, record)
            assert receiver.decode_record(1, blob) == record
