"""Batched encoder core: encode_batch parity, pooling, probe-skip.

The whole-window path (:meth:`ByteCachingEncoder.encode_batch`) has a
fused fast loop that engages only under the permissive base policy
hooks; both the fused and the hook-dispatching variant must be
byte-identical to a per-packet ``encode`` loop, and the adaptive
candidate-probe bypass must never change results — it skips a
prefilter whose misses are re-checked against the index anyway.
"""

import random

import pytest

from repro.core.cache import ByteCache
from repro.core.encoder import (ByteCachingEncoder, EncodeResult,
                                EncodeResultPool, _PROBE_DENSE_STREAK)
from repro.core.fingerprint import FingerprintScheme
from repro.core.policies import PacketMeta, make_policy_pair
from repro.workload.corpus import corpus_object

MSS = 1460


def _mixed_packets(n=48):
    """Fresh + cold + warm traffic (the hot path's three regimes)."""
    rnd = random.Random(0xBC)
    fresh = [rnd.randbytes(MSS) for _ in range(n // 2)]
    data = corpus_object("file1", seed=3)
    cold = [data[i: i + MSS] for i in range(0, len(data), MSS)][:n]
    return fresh + cold + cold


def _metas(n):
    return [PacketMeta(packet_id=i, flow=("t", 0), tcp_seq=i * MSS,
                       counter=i) for i in range(n)]


def _encoder(policy_name="naive", **kwargs):
    scheme = FingerprintScheme(window=16, zero_bits=4)
    policy, _ = make_policy_pair(policy_name, **kwargs)
    return ByteCachingEncoder(scheme, ByteCache(1 << 24), policy)


def _per_packet_wire(policy_name, packets):
    encoder = _encoder(policy_name)
    return [encoder.encode(p, m).data
            for p, m in zip(packets, _metas(len(packets)))], encoder


def _batched_wire(policy_name, packets):
    encoder = _encoder(policy_name)
    results = encoder.encode_batch(packets, _metas(len(packets)))
    return [r.data for r in results], encoder


class TestEncodeBatchParity:
    def test_fused_path_matches_per_packet(self):
        # The naive policy keeps every base hook → fused loop engages.
        packets = _mixed_packets()
        per_packet, enc_a = _per_packet_wire("naive", packets)
        batched, enc_b = _batched_wire("naive", packets)
        assert per_packet == batched
        # Stats parity too: the fused loop flushes identical counters.
        for field in ("packets", "packets_encoded", "bytes_in",
                      "bytes_out", "regions", "matched_bytes",
                      "collisions"):
            assert getattr(enc_a.stats, field) == \
                getattr(enc_b.stats, field), field

    def test_hook_dispatching_path_matches_per_packet(self):
        # cache_flush overrides before_packet → encode_batch falls back
        # to the per-packet hook-dispatching loop.
        packets = _mixed_packets(24)
        per_packet, _ = _per_packet_wire("cache_flush", packets)
        batched, _ = _batched_wire("cache_flush", packets)
        assert per_packet == batched

    def test_force_raw_disables_fused_path_but_still_caches(self):
        packets = _mixed_packets(8)
        encoder = _encoder("naive")
        results = encoder.encode_batch(packets, _metas(len(packets)),
                                       force_raw=True)
        assert all(not r.encoded for r in results)
        # Cache Update still ran: a second (non-raw) pass over the same
        # bytes should now find everything.
        repeat = encoder.encode_batch(packets, _metas(len(packets)))
        assert all(r.encoded for r in repeat)

    def test_profiler_disables_fused_path_with_identical_output(self):
        from repro.metrics.profiling import StageProfiler

        packets = _mixed_packets(24)
        plain, _ = _batched_wire("naive", packets)
        encoder = _encoder("naive")
        encoder.profiler = StageProfiler()
        profiled = [r.data for r in
                    encoder.encode_batch(packets, _metas(len(packets)))]
        assert plain == profiled
        assert encoder.profiler.total("batch_fingerprint") > 0.0

    def test_empty_batch(self):
        encoder = _encoder("naive")
        assert encoder.encode_batch([], []) == []


class TestProbeSkip:
    def test_dense_streak_arms_the_bypass(self):
        data = corpus_object("file1", seed=3)
        packets = [data[i: i + MSS]
                   for i in range(0, len(data), MSS)][:16]
        encoder = _encoder("naive")
        encoder.encode_batch(packets, _metas(len(packets)))
        # Warm repeat: every anchor survives the prefilter every
        # packet, so the dense streak trips and arms the skip window
        # (16 packets: 4 arm it, 12 consume it — still armed at exit).
        encoder.encode_batch(packets, _metas(len(packets)))
        assert encoder._probe_skip > 0 or encoder._dense_streak > 0

    def test_bypass_never_changes_output(self):
        packets = _mixed_packets(32)
        reference, _ = _per_packet_wire("naive", packets)
        encoder = _encoder("naive")
        # Pin the bypass permanently on: the prefilter is only an
        # accelerator, so output must not change.
        encoder._probe_skip = 10 ** 9
        forced = [r.data for r in
                  encoder.encode_batch(packets, _metas(len(packets)))]
        assert forced == reference

    def test_streak_resets_on_filtered_probe(self):
        encoder = _encoder("naive")
        rnd = random.Random(7)
        data = corpus_object("file1", seed=3)
        warm = [data[i: i + MSS] for i in range(0, len(data), MSS)][:8]
        encoder.encode_batch(warm, _metas(len(warm)))
        encoder.encode_batch(warm, _metas(len(warm)))
        streak_or_skip = encoder._dense_streak + encoder._probe_skip
        assert streak_or_skip > 0
        # Fresh traffic: the prefilter filters again → streak resets
        # once the skip window drains.
        fresh = [rnd.randbytes(MSS) for _ in range(64)]
        encoder.encode_batch(fresh, _metas(len(fresh)))
        assert encoder._dense_streak < _PROBE_DENSE_STREAK


class TestEncodeResultPool:
    def test_acquire_release_reuses_shells(self):
        pool = EncodeResultPool()
        first = pool.acquire(b"x", False, 1, 1, [], set(), True, 2)
        pool.release(first)
        second = pool.acquire(b"y", True, 2, 2, [], set(), True, 2)
        assert second is first
        assert second.data == b"y" and second.encoded
        assert pool.reused == 1

    def test_regions_and_dependencies_never_recycled(self):
        pool = EncodeResultPool()
        result = pool.acquire(b"x", True, 1, 1, [], {7}, True, 2)
        kept_deps = result.dependencies
        pool.release(result)
        fresh = pool.acquire(b"y", False, 1, 1, [], {9}, True, 2)
        # The released shell was reused, but the consumer's set object
        # was left alone — only the reference was replaced.
        assert kept_deps == {7}
        assert fresh.dependencies == {9}

    def test_pool_is_bounded(self):
        pool = EncodeResultPool()
        shells = [EncodeResult(data=b"", encoded=False, bytes_in=0,
                               bytes_out=0) for _ in range(100)]
        for shell in shells:
            pool.release(shell)
        assert len(pool._free) <= 64

    def test_encoder_uses_attached_pool(self):
        packets = _mixed_packets(16)
        encoder = _encoder("naive")
        pool = EncodeResultPool()
        encoder.result_pool = pool
        results = encoder.encode_batch(packets, _metas(len(packets)))
        for result in results:
            pool.release(result)
        again = encoder.encode_batch(packets, _metas(len(packets)))
        assert pool.reused > 0
        assert len(again) == len(packets)


def test_gateway_pool_roundtrip_preserves_dependency_log():
    """The middlebox releases shells, but logged dependency sets survive."""
    from repro.experiments import ExperimentConfig
    from repro.experiments.runner import run_transfer

    result = run_transfer(ExperimentConfig(file_size=30 * MSS,
                                           policy="naive", seed=11))
    assert result.completed
