"""The verification subsystem: oracles, differential runner, fuzzer.

Covers the acceptance criteria of the verify layer:

* ``verify=True`` on the naive policy under loss raises an
  :class:`InvariantViolation` identifying the §IV circular dependency,
  while the paper's three robust policies run the full Fig. 10 loss
  grid violation-free;
* the cache-coherence oracle catches a deliberately poisoned decoder
  store and the byte-integrity oracle catches a wrong delivered chunk;
* the differential runner's six comparisons all agree;
* the fuzzer finds an injected policy bug, shrinks it to a minimal
  case, and the JSON round-trip replays to the same oracle.
"""

import json

import pytest

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.policies import PacketMeta, make_policy_pair
from repro.experiments import ExperimentConfig, run_transfer
from repro.net.checksum import payload_checksum
from repro.sim.rng import RngRegistry
from repro.verify import InvariantViolation, VerificationHarness
from repro.verify.differential import run_differential
from repro.verify.fuzz import (FuzzCase, case_from_json, case_to_json,
                               generate_case, run_campaign, run_case, shrink)

FLOW = ("s", 80, "c", 5000)

#: Fig. 10's loss-rate axis (0–20 %).
F10_LOSSES = (0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20)

PAPER_POLICIES = ("cache_flush", "tcp_seq", "k_distance")


def _core_pair(policy_name, **policy_kwargs):
    """Bare encoder/decoder cores with the harness attached."""
    scheme = FingerprintScheme()
    enc_policy, dec_policy = make_policy_pair(policy_name, **policy_kwargs)
    encoder = ByteCachingEncoder(scheme, ByteCache(), enc_policy)
    decoder = ByteCachingDecoder(scheme, ByteCache(), dec_policy)
    harness = VerificationHarness()
    harness.attach_cores(encoder, decoder)
    return encoder, decoder, harness


# ---------------------------------------------------------------------------
# online oracles, end to end
# ---------------------------------------------------------------------------

class TestOnlineOracles:
    def test_naive_livelock_raises_circular_dependency(self):
        """§IV: the naive policy under loss encodes a retransmission
        against its own cached copy; verify=True pinpoints it."""
        config = ExperimentConfig(
            policy="naive", loss_rate=0.01, seed=11, verify=True,
            time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0)
        with pytest.raises(InvariantViolation) as excinfo:
            run_transfer(config)
        violation = excinfo.value
        assert violation.oracle == "circular_dependency"
        assert "circular dependency" in violation.message
        # The context identifies the offending encoding precisely.
        assert violation.context["seq_stored"] >= violation.context["seq_new"]
        # ... and carries the flight recorder for post-mortem.
        assert violation.flight_recorder

    @pytest.mark.parametrize("policy", PAPER_POLICIES)
    def test_paper_policies_run_f10_grid_violation_free(self, policy):
        """The three robust policies sweep the Fig. 10 loss axis with
        every oracle armed and never trip one."""
        for loss in F10_LOSSES:
            result = run_transfer(ExperimentConfig(
                policy=policy, loss_rate=loss, seed=11,
                file_size=40 * 1460, verify=True,
                time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0))
            assert result.completed, (policy, loss)

    def test_verify_off_leaves_hooks_unarmed(self):
        from repro.experiments.runner import build_testbed

        testbed = build_testbed(ExperimentConfig(policy="cache_flush"))
        assert testbed.verifier is None
        assert testbed.gateways.encoder.encoder.verifier is None
        assert testbed.gateways.decoder.decoder.verifier is None

    def test_oracles_follow_policy_declaration(self):
        """Each policy arms exactly the oracles it declares."""
        encoder, _decoder, harness = _core_pair("k_distance", k=4)
        assert sorted(oracle.name for oracle in harness.oracles) == \
            ["circular_dependency", "k_distance"]
        # Recovery-based schemes legally self-reference: no oracles.
        encoder, _decoder, harness = _core_pair("informed_marking")
        assert harness.oracles == []


class TestCoherenceOracle:
    def _populate(self, encoder, decoder, rng, count=4):
        for index in range(count):
            payload = rng.randbytes(1460)
            meta = PacketMeta(packet_id=index, flow=FLOW,
                              tcp_seq=index * 1460, counter=index)
            result = encoder.encode(payload, meta)
            outcome = decoder.decode(result.data, meta,
                                     checksum=payload_checksum(payload))
            assert outcome.ok

    def test_clean_caches_pass(self):
        encoder, decoder, harness = _core_pair("cache_flush")
        self._populate(encoder, decoder,
                       RngRegistry(5).stream("coherence.clean"))
        assert harness.check_coherence(force=True)
        assert harness.violations == 0
        assert harness.coherence_checks == 1

    def test_poisoned_decoder_store_raises(self):
        """Flip bytes inside the decoder's packet store: the quiescent
        coherence scan must catch the divergence."""
        encoder, decoder, harness = _core_pair("cache_flush")
        self._populate(encoder, decoder,
                       RngRegistry(6).stream("coherence.poison"))
        store = decoder.cache.store._data
        victim = next(iter(store))
        store[victim] = bytes(len(store[victim]))   # zeroed payload
        with pytest.raises(InvariantViolation) as excinfo:
            harness.check_coherence(force=True)
        assert excinfo.value.oracle == "cache_coherence"
        assert "poisoned" in excinfo.value.message

    def test_decoder_gaps_are_legal(self):
        """Entries only the encoder holds (lost carriers = perceived
        loss) are not a coherence violation."""
        encoder, decoder, harness = _core_pair("cache_flush")
        rng = RngRegistry(7).stream("coherence.gaps")
        for index in range(4):
            payload = rng.randbytes(1460)
            meta = PacketMeta(packet_id=index, flow=FLOW,
                              tcp_seq=index * 1460, counter=index)
            result = encoder.encode(payload, meta)
            if index % 2 == 0:   # odd packets "lost" before the decoder
                decoder.decode(result.data, meta,
                               checksum=payload_checksum(payload))
        assert harness.check_coherence(force=True)
        assert harness.violations == 0


class TestByteIntegrityOracle:
    def test_correct_prefix_accepted(self):
        harness = VerificationHarness()
        harness.arm_integrity(b"the quick brown fox")
        harness.on_deliver(b"the quick")
        harness.on_deliver(b" brown fox")
        assert harness.violations == 0

    def test_wrong_chunk_raises_with_first_diff(self):
        harness = VerificationHarness()
        harness.arm_integrity(b"the quick brown fox")
        harness.on_deliver(b"the quick")
        with pytest.raises(InvariantViolation) as excinfo:
            harness.on_deliver(b" brawn fox")
        assert excinfo.value.oracle == "byte_integrity"
        assert excinfo.value.context["first_diff"] == 12


# ---------------------------------------------------------------------------
# per-policy safety oracles on bare cores
# ---------------------------------------------------------------------------

class TestPolicyOracles:
    def test_tcp_seq_violation_detected_when_gate_disabled(self):
        """Disable the Fig. 7 guard: the first self-referencing region
        trips the oracle even though the policy said yes."""
        encoder, _decoder, _harness = _core_pair("tcp_seq")
        encoder.policy.entry_eligible = lambda entry, meta: True
        payload = RngRegistry(8).stream("tcpseq").randbytes(1460)
        meta0 = PacketMeta(packet_id=0, flow=FLOW, tcp_seq=0, counter=0)
        encoder.encode(payload, meta0)
        with pytest.raises(InvariantViolation) as excinfo:
            # Retransmission: same seq, payload already cached.
            encoder.encode(payload, PacketMeta(packet_id=1, flow=FLOW,
                                               tcp_seq=0, counter=1))
        assert excinfo.value.oracle in ("circular_dependency", "tcp_seq")

    def test_k_distance_group_bound_enforced(self):
        """Lose the group window (keep same-flow): a region sourcing a
        segment before the current group's reference must trip."""
        encoder, _decoder, _harness = _core_pair("k_distance", k=2)
        encoder.policy.entry_eligible = (
            lambda entry, meta: entry.flow == meta.flow
            and entry.tcp_seq is not None)
        rng = RngRegistry(9).stream("kdist")
        shared = rng.randbytes(600)
        # The shared run appears only in segment 0 (group [0, 2920))
        # and in segment 3 (group [2920, 5840)): the cache's only entry
        # for it lives in the previous group, so encoding segment 3
        # against it crosses the reference boundary.
        payloads = [shared + rng.randbytes(100), rng.randbytes(700),
                    rng.randbytes(700), shared + rng.randbytes(100)]
        with pytest.raises(InvariantViolation) as excinfo:
            for index, payload in enumerate(payloads):
                encoder.encode(payload,
                               PacketMeta(packet_id=index, flow=FLOW,
                                          tcp_seq=index * 1460,
                                          counter=index))
        assert excinfo.value.oracle == "k_distance"
        assert "group" in excinfo.value.message

    def test_cache_flush_floor_enforced(self):
        """Suppress the flush: a post-retransmission region sourcing a
        pre-flush entry must trip the flush-floor oracle."""
        encoder, _decoder, _harness = _core_pair("cache_flush")
        encoder.policy.before_packet = lambda meta, cache: None
        rng = RngRegistry(10).stream("cacheflush")
        shared = rng.randbytes(600)
        first = shared + rng.randbytes(100)
        encoder.encode(first, PacketMeta(packet_id=0, flow=FLOW,
                                         tcp_seq=0, counter=0))
        encoder.encode(rng.randbytes(700),
                       PacketMeta(packet_id=1, flow=FLOW,
                                  tcp_seq=1460, counter=1))
        with pytest.raises(InvariantViolation) as excinfo:
            # Retransmit segment 0 — without a flush it is encoded
            # against cached pre-retransmission state.
            encoder.encode(first, PacketMeta(packet_id=2, flow=FLOW,
                                             tcp_seq=0, counter=2))
        assert excinfo.value.oracle in ("circular_dependency", "cache_flush")


# ---------------------------------------------------------------------------
# differential runner
# ---------------------------------------------------------------------------

class TestDifferential:
    def test_all_six_comparisons_agree(self):
        results = run_differential("smoke")
        assert [r.name for r in results] == \
            ["fingerprinters", "sweep-parallelism", "resilience",
             "batched-encoder", "table-impls", "multiflow-parallelism"]
        for result in results:
            assert result.matched, str(result)

    def test_batched_encoder_comparison(self):
        from repro.verify.differential import compare_batched_encoder

        result = compare_batched_encoder(n_packets=32)
        assert result.matched, result.detail
        assert result.left_digest == result.right_digest

    def test_table_impls_comparison(self):
        from repro.verify.differential import compare_table_impls

        result = compare_table_impls(n_packets=32)
        assert result.matched, result.detail

    def test_multiflow_parallelism_comparison(self):
        from repro.verify.differential import compare_multiflow_parallelism

        result = compare_multiflow_parallelism(n_flows=2,
                                               file_size=10 * 1460)
        assert result.matched, result.detail

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_differential("galactic")


# ---------------------------------------------------------------------------
# fuzzer
# ---------------------------------------------------------------------------

class TestFuzzer:
    def test_case_generation_is_deterministic(self):
        assert generate_case(7, 3) == generate_case(7, 3)
        assert generate_case(7, 3) != generate_case(7, 4)
        assert generate_case(7, 3) != generate_case(8, 3)

    def test_clean_campaign_finds_nothing(self):
        result = run_campaign(7, 15)
        assert result.violations == 0

    def test_injected_bug_found_shrunk_and_replayable(self, tmp_path):
        campaign = run_campaign(7, 20, inject_bug="tcp_seq_gate")
        assert campaign.violations >= 1
        shrunk = campaign.shrunk_case
        assert shrunk is not None
        assert len(shrunk.fault_events) < 20
        assert campaign.shrunk_violation is not None

        # JSON round-trip and replay reproduce the same oracle.
        path = tmp_path / "case.json"
        path.write_text(case_to_json(shrunk, campaign.shrunk_violation))
        replayed = case_from_json(path.read_text())
        assert replayed == shrunk
        outcome = run_case(replayed)
        assert outcome.violation is not None
        assert outcome.violation["oracle"] == \
            campaign.shrunk_violation["oracle"]

    def test_shrink_drops_irrelevant_fault_events(self):
        """A reproducer that ignores faults entirely shrinks to zero
        fault events and the minimum object."""
        case = FuzzCase(seed=1, policy="tcp_seq", file_size=40 * 1460,
                        loss_rate=0.05,
                        fault_events=[{"kind": "drop_data", "nth": 3},
                                      {"kind": "evict", "side": "decoder",
                                       "at": 0.5, "fraction": 0.5}])
        minimal = shrink(case, reproduces=lambda c: True)
        assert minimal.fault_events == []
        assert minimal.file_size < case.file_size
        assert minimal.loss_rate == 0.0

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            case_from_json(json.dumps({"schema": "other/v9", "case": {}}))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_verify_command(self, capsys):
        from repro.cli import main

        assert main(["verify", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "all 6 differential comparisons agree" in out

    def test_fuzz_command_clean(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seed", "7", "--iterations", "5"]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_fuzz_command_inject_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = str(tmp_path / "cases")
        assert main(["fuzz", "--seed", "7", "--iterations", "10",
                     "--inject-bug", "tcp_seq_gate",
                     "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        case_files = list((tmp_path / "cases").glob("*.json"))
        assert len(case_files) == 1
        assert main(["fuzz", "--replay", str(case_files[0])]) == 0
        assert "replay MATCHES" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# telemetry integration
# ---------------------------------------------------------------------------

def test_verify_counters_surface_in_telemetry_export():
    result = run_transfer(ExperimentConfig(
        policy="cache_flush", file_size=30 * 1460, loss_rate=0.05,
        seed=11, verify=True, telemetry=True))
    assert result.completed
    gauges = result.telemetry["final_gauges"]
    assert gauges["verify.regions_checked"] > 0
    assert gauges["verify.coherence_checks"] > 0
