"""Unit tests for Reno congestion control."""

from repro.net.tcp.congestion import RenoCongestionControl

MSS = 1460


def make():
    return RenoCongestionControl(MSS, initial_cwnd_segments=2)


def test_initial_window():
    cc = make()
    assert cc.window() == 2 * MSS
    assert cc.in_slow_start


def test_slow_start_doubles_per_window():
    cc = make()
    # One full window of ACKs roughly doubles cwnd.
    acks = cc.cwnd // MSS
    for _ in range(acks):
        cc.on_new_ack(MSS, snd_una=0)
    assert cc.cwnd == 4 * MSS


def test_congestion_avoidance_linear():
    cc = make()
    cc.ssthresh = 4 * MSS
    cc.cwnd = 4 * MSS
    start = cc.cwnd
    # A full window of ACKs adds about one MSS.
    for _ in range(4):
        cc.on_new_ack(MSS, snd_una=0)
    assert start < cc.cwnd <= start + MSS + 4


def test_fast_retransmit_halves():
    cc = make()
    cc.cwnd = 20 * MSS
    cc.ssthresh = 1 << 30
    cc.on_fast_retransmit(flight_size=20 * MSS, snd_nxt=100000)
    assert cc.ssthresh == 10 * MSS
    assert cc.cwnd == 10 * MSS + 3 * MSS
    assert cc.in_fast_recovery


def test_dup_ack_inflation():
    cc = make()
    cc.on_fast_retransmit(flight_size=20 * MSS, snd_nxt=100000)
    before = cc.cwnd
    cc.on_dup_ack_in_recovery()
    assert cc.cwnd == before + MSS


def test_full_ack_deflates_and_exits():
    cc = make()
    cc.on_fast_retransmit(flight_size=20 * MSS, snd_nxt=100000)
    cc.on_new_ack(100000, snd_una=100001)
    assert not cc.in_fast_recovery
    assert cc.cwnd == cc.ssthresh


def test_partial_ack_stays_in_recovery():
    cc = make()
    cc.on_fast_retransmit(flight_size=20 * MSS, snd_nxt=100000)
    cc.on_new_ack(MSS, snd_una=50000)
    assert cc.in_fast_recovery


def test_timeout_collapses_to_one_segment():
    cc = make()
    cc.cwnd = 30 * MSS
    cc.on_timeout(flight_size=30 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == 15 * MSS
    assert not cc.in_fast_recovery
    assert cc.in_slow_start


def test_ssthresh_floor_two_mss():
    cc = make()
    cc.on_timeout(flight_size=MSS)
    assert cc.ssthresh == 2 * MSS


def test_stats_counters():
    cc = make()
    cc.on_new_ack(MSS, 0)
    cc.on_fast_retransmit(10 * MSS, 0)
    cc.on_timeout(10 * MSS)
    assert cc.stats.slow_start_acks == 1
    assert cc.stats.fast_retransmits == 1
    assert cc.stats.timeouts == 1


def test_invalid_mss():
    import pytest

    with pytest.raises(ValueError):
        RenoCongestionControl(0)
