"""Tests for the §II mobility experiment and the TCP-proxy gateways."""

import pytest

from repro.experiments.mobility import MobilityConfig, run_mobility
from repro.gateway.tcp_proxy import (_FrameReader, _StreamCodec, _frame,
                                     KIND_DATA_S2C, KIND_OPEN)
from repro.core.fingerprint import FingerprintScheme


def config(**kwargs) -> MobilityConfig:
    # The 120-segment file takes ~0.2 s; hand off in the middle.
    defaults = dict(file_size=120 * 1460, handoff_at=0.05, seed=11,
                    time_limit=60.0)
    defaults.update(kwargs)
    return MobilityConfig(**defaults)


class TestFrameProtocol:
    def test_roundtrip_single_frame(self):
        frames = []
        reader = _FrameReader(lambda *args: frames.append(args))
        reader.feed(_frame(KIND_OPEN, 7, b"\x00\x50\x00\x60"))
        assert frames == [(KIND_OPEN, 7, b"\x00\x50\x00\x60")]

    def test_fragmented_delivery(self):
        frames = []
        reader = _FrameReader(lambda *args: frames.append(args))
        wire = _frame(KIND_DATA_S2C, 1, b"hello") + _frame(KIND_DATA_S2C, 1, b"!")
        for i in range(len(wire)):
            reader.feed(wire[i:i + 1])
        assert frames == [(KIND_DATA_S2C, 1, b"hello"),
                          (KIND_DATA_S2C, 1, b"!")]

    def test_coalesced_delivery(self):
        frames = []
        reader = _FrameReader(lambda *args: frames.append(args))
        reader.feed(_frame(KIND_DATA_S2C, 1, b"a") * 3)
        assert len(frames) == 3


class TestStreamCodec:
    def test_records_roundtrip_and_compress(self):
        import random

        scheme = FingerprintScheme()
        g2 = _StreamCodec("tcp_seq", scheme, 1 << 22)
        g1 = _StreamCodec("tcp_seq", scheme, 1 << 22)
        rng = random.Random(3)
        chunk = rng.randbytes(700)
        sizes = []
        for index in range(10):
            record = chunk + rng.randbytes(700)
            blob = g2.encode_record(1, record)
            sizes.append(len(blob))
            assert g1.decode_record(1, blob) == record
        # Later records compress against the repeated chunk.
        assert sizes[-1] < sizes[0]


class TestMobility:
    def test_no_gateways_survives_handoff(self):
        result = run_mobility(config(mode="none"))
        assert result.completed
        assert result.outcome.content_ok is True
        assert result.bytes_path_b > 0      # traffic moved to path B

    def test_ip_dre_survives_handoff(self):
        """§II-B: IP-level byte caching is compatible with mobility."""
        result = run_mobility(config(mode="ip-dre"))
        assert result.completed
        assert result.outcome.content_ok is True
        assert result.bytes_path_a > 0
        assert result.bytes_path_b > 0

    def test_tcp_proxy_stalls_on_handoff(self):
        """§II-A: split-TCP byte caching breaks when the client moves."""
        result = run_mobility(config(mode="tcp-proxy"))
        assert not result.completed
        assert 0 < result.outcome.bytes_received < 120 * 1460

    def test_tcp_proxy_fine_without_handoff(self):
        result = run_mobility(config(mode="tcp-proxy", handoff_at=50.0))
        assert result.completed
        assert result.outcome.content_ok is True

    def test_tcp_proxy_compresses_on_path_a(self):
        dre = run_mobility(config(mode="tcp-proxy", handoff_at=50.0))
        raw = run_mobility(config(mode="none", handoff_at=50.0))
        assert dre.bytes_path_a < 0.8 * raw.bytes_path_a

    def test_ip_dre_robust_to_losses_around_handoff(self):
        result = run_mobility(config(mode="ip-dre", loss_rate_a=0.05,
                                     handoff_at=0.08))
        assert result.completed
        assert result.outcome.content_ok is True

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_mobility(config(mode="bogus"))
