"""Unit tests for the UDP layer."""

import pytest

from repro.net import UDPStack
from repro.net.checksum import payload_checksum
from repro.sim import Host, Link, Simulator


def make_pair():
    sim = Simulator()
    a = Host(sim, "a", "10.0.0.1")
    b = Host(sim, "b", "10.0.0.2")
    ab = Link(sim, 1e6, 0.001)
    ba = Link(sim, 1e6, 0.001)
    ab.connect(b.receive)
    ba.connect(a.receive)
    a.add_route("10.0.0.2", ab)
    b.add_route("10.0.0.1", ba)
    return sim, UDPStack(sim, a), UDPStack(sim, b)


def test_datagram_roundtrip():
    sim, stack_a, stack_b = make_pair()
    received = []
    sock_b = stack_b.socket(5000)
    sock_b.on_receive = lambda src, port, data: received.append(
        (src, port, data))
    sock_a = stack_a.socket()
    sock_a.sendto(b"hello", "10.0.0.2", 5000)
    sim.run()
    assert received == [("10.0.0.1", sock_a.port, b"hello")]


def test_unbound_port_silently_dropped():
    sim, stack_a, stack_b = make_pair()
    sock_a = stack_a.socket()
    sock_a.sendto(b"hello", "10.0.0.2", 4242)
    sim.run()  # nothing to assert beyond "no crash"


def test_duplicate_bind_rejected():
    sim, stack_a, _ = make_pair()
    stack_a.socket(7000)
    with pytest.raises(ValueError):
        stack_a.socket(7000)


def test_ephemeral_ports_distinct():
    sim, stack_a, _ = make_pair()
    assert stack_a.socket().port != stack_a.socket().port


def test_corrupted_datagram_dropped():
    sim = Simulator()
    a = Host(sim, "a", "10.0.0.1")
    b = Host(sim, "b", "10.0.0.2")
    link = Link(sim, 1e6, 0.001)
    a.add_route("10.0.0.2", link)
    stack_a, stack_b = UDPStack(sim, a), UDPStack(sim, b)
    got = []
    sock = stack_b.socket(5000)
    sock.on_receive = lambda *args: got.append(args)

    def corrupt_then_deliver(pkt):
        pkt.udp.data = b"X" + pkt.udp.data[1:]
        b.receive(pkt)

    link.connect(corrupt_then_deliver)
    stack_a.socket().sendto(b"payload-bytes", "10.0.0.2", 5000)
    sim.run()
    assert got == []
    assert sock.checksum_drops == 1


def test_checksum_helpers():
    data = b"anything at all"
    checksum = payload_checksum(data)
    assert payload_checksum(data) == checksum
    assert payload_checksum(data + b"x") != checksum
