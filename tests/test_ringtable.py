"""Ring-buffer fingerprint table edge cases.

The contiguous table (repro.core.ringtable) must match the reference
dict table observable-for-observable; these tests pin the corners the
differential runner's whole-pipeline comparison can miss: bitmap hash
collisions, fixed-capacity wrap evicting live entries, the epoch stamp
across flushes, and a property-level parity sweep against the dict
table through the ByteCache front door.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import ByteCache, CacheEntry, FingerprintTable
from repro.core.ringtable import _FIB, RingFingerprintTable


def _insert(table, fingerprints, store_id=0, counter=0):
    fps = np.array(fingerprints, dtype=np.uint64)
    offsets = np.arange(len(fingerprints), dtype=np.int64)
    table.insert_batch(offsets, fps, store_id, None, None, counter)


def _colliding_fingerprints(bits):
    """Two distinct fingerprints sharing one bitmap slot."""
    multiplier = int(_FIB)
    shift = 64 - bits
    base = 12345
    target = (base * multiplier) % (1 << 64) >> shift
    for candidate in range(base + 1, base + 1_000_000):
        if (candidate * multiplier) % (1 << 64) >> shift == target:
            return base, candidate
    raise AssertionError("no collision found in search range")


class TestCandidateBitmap:
    def test_hash_collision_is_a_false_positive_only(self):
        table = RingFingerprintTable(capacity=64, bitmap_bits=8)
        present, absent = _colliding_fingerprints(8)
        _insert(table, [present])
        mask = table.candidates(np.array([present, absent],
                                         dtype=np.uint64))
        # The bitmap cannot tell the two apart (shared slot) ...
        assert mask.tolist() == [True, True]
        # ... but the index ground truth can.
        assert table.get(present) is not None
        assert table.get(absent) is None

    def test_no_false_negatives(self):
        table = RingFingerprintTable(capacity=256, bitmap_bits=10)
        fingerprints = list(range(1000, 1100))
        _insert(table, fingerprints)
        mask = table.candidates(np.array(fingerprints, dtype=np.uint64))
        assert mask.all()

    def test_candidate_indices_matches_candidates(self):
        table = RingFingerprintTable(capacity=64)
        _insert(table, [7, 11, 13])
        probe = np.array([5, 7, 9, 11, 13, 15], dtype=np.uint64)
        mask = table.candidates(probe)
        idxs = table.candidate_indices(probe)
        assert idxs.tolist() == mask.nonzero()[0].tolist()

    def test_scratch_tag_reuse_after_probe(self):
        # Probing then inserting the SAME array must stamp the same
        # bitmap slots as a cold insert (the tag shortcut skips the
        # hash recompute, not the stamping).
        tagged = RingFingerprintTable(capacity=64)
        cold = RingFingerprintTable(capacity=64)
        fps = np.array([101, 202, 303], dtype=np.uint64)
        offsets = np.arange(3, dtype=np.int64)
        tagged.candidates(fps)          # leaves hashes + tag in scratch
        tagged.insert_batch(offsets, fps, 0, None, None, 0)
        cold.insert_batch(offsets, fps.copy(), 0, None, None, 0)
        assert np.array_equal(tagged._bm, cold._bm)
        # Tag is consumed: a second insert recomputes.
        assert tagged._scratch_tag is None

    def test_epoch_bump_clears_without_touching_memory(self):
        table = RingFingerprintTable(capacity=64)
        _insert(table, [42])
        assert table.candidates(np.array([42], dtype=np.uint64))[0]
        table.clear()
        assert not table.candidates(np.array([42], dtype=np.uint64))[0]

    def test_epoch_wraps_at_256_flushes(self):
        table = RingFingerprintTable(capacity=64)
        for _ in range(300):    # crosses the uint8 wrap at least once
            _insert(table, [42])
            assert table.candidates(np.array([42], dtype=np.uint64))[0]
            table.clear()
            assert not table.candidates(
                np.array([42], dtype=np.uint64))[0]
            assert table.get(42) is None


class TestFixedModeWrap:
    def test_wrap_evicts_oldest_live_entries(self):
        table = RingFingerprintTable(capacity=4, autogrow=False)
        _insert(table, [1, 2], store_id=0)
        _insert(table, [3, 4], store_id=1)
        assert len(table) == 4
        # The ring is full: two more anchors advance the floor past the
        # two oldest entries, evicting them even though still current.
        _insert(table, [5, 6], store_id=2)
        assert table.get(1) is None
        assert table.get(2) is None
        assert table.get(5) is not None
        assert table.evictions == 2
        floor, nxt = table.id_window()
        assert nxt - floor == 4

    def test_wrap_does_not_evict_replaced_fingerprints_twice(self):
        table = RingFingerprintTable(capacity=4, autogrow=False)
        _insert(table, [1, 2], store_id=0)
        _insert(table, [1, 2], store_id=1)   # replaces both
        _insert(table, [3, 4], store_id=2)   # wraps past the stale pair
        # The stale first-generation entries were not the index's
        # current ids, so nothing live was evicted.
        assert table.evictions == 0
        assert table.get(1).store_id == 1
        assert table.get(3).store_id == 2

    def test_wrap_drops_unusable_marks_of_evicted_ids(self):
        table = RingFingerprintTable(capacity=4, autogrow=False)
        _insert(table, [1, 2], store_id=0)
        entry = table.get(1)
        entry.usable = False
        _insert(table, [3, 4], store_id=1)
        _insert(table, [5, 6], store_id=2)   # evicts ids 0 and 1
        assert not table._unusable_ids
        # A fresh insert reusing the wrapped slots starts usable.
        _insert(table, [7, 8], store_id=3)
        assert table.get(7).usable

    def test_batch_larger_than_fixed_capacity_rejected(self):
        table = RingFingerprintTable(capacity=4, autogrow=False)
        with pytest.raises(ValueError):
            _insert(table, [1, 2, 3, 4, 5])


class TestAutogrow:
    def test_compaction_preserves_current_and_previous(self):
        table = RingFingerprintTable(capacity=8)
        # Two indexed fingerprints replaced over and over: room-making
        # picks compaction (4 * index size <= capacity) over growth.
        for store_id in range(5):
            _insert(table, [1, 2], store_id=store_id)
        assert table.compactions >= 1
        assert table.grows == 0
        assert table.get(1).store_id == 4
        previous = table.previous_entry(1)
        assert previous is not None and previous.store_id == 3

    def test_growth_keeps_all_ids_valid(self):
        table = RingFingerprintTable(capacity=4)
        _insert(table, list(range(100, 108)), store_id=0)
        assert table.grows >= 1
        for fingerprint in range(100, 108):
            assert table.get(fingerprint) is not None


def _entry(fingerprint, store_id, offset, counter):
    return CacheEntry(fingerprint, store_id, offset, None, None, counter)


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 30),                  # fingerprint (small: forces replacements)
              st.integers(0, 5),                   # packets-back store ref
              st.integers(0, 200)),                # offset
    min_size=1, max_size=60))
def test_ring_matches_dict_table_property(ops):
    """Same insert sequence → same observable state as the dict table."""
    ring = RingFingerprintTable(capacity=8)
    reference = FingerprintTable()
    for counter, (fingerprint, store_id, offset) in enumerate(ops):
        ring.put(_entry(fingerprint, store_id, offset, counter))
        reference.put(_entry(fingerprint, store_id, offset, counter))
    assert len(ring) == len(reference)
    assert ring.inserts == reference.inserts
    assert ring.replacements == reference.replacements
    for fingerprint, _, _ in ops:
        ring_hit = ring.get(fingerprint)
        ref_hit = reference.get(fingerprint)
        assert (ring_hit is None) == (ref_hit is None)
        if ring_hit is not None:
            assert ring_hit.store_id == ref_hit.store_id
            assert ring_hit.offset == ref_hit.offset
            assert ring_hit.packet_counter == ref_hit.packet_counter


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=40, max_size=600),
                min_size=1, max_size=12),
       st.integers(0, 2 ** 16))
def test_cache_insert_parity_ring_vs_dict(payloads, seed):
    """insert_packet + lookup through ByteCache: ring == dict."""
    from repro.core.fingerprint import FingerprintScheme

    scheme = FingerprintScheme(window=16, zero_bits=2)
    ring_cache = ByteCache(1 << 20, table_kind="ring")
    dict_cache = ByteCache(1 << 20, table_kind="dict")
    fingerprints = set()
    for counter, payload in enumerate(payloads):
        anchors = scheme.anchors(payload)
        fingerprints.update(fp for _, fp in anchors.pairs())
        for cache in (ring_cache, dict_cache):
            cache.insert_packet(payload, scheme.anchors(payload),
                                tcp_seq=counter * 1460,
                                packet_counter=counter)
    fingerprints.add(seed)          # probe at least one likely-miss
    for fingerprint in fingerprints:
        ring_hit = ring_cache.lookup(fingerprint)
        dict_hit = dict_cache.lookup(fingerprint)
        assert (ring_hit is None) == (dict_hit is None)
        if ring_hit is not None:
            assert ring_hit[1] == dict_hit[1]
            assert ring_hit[0].offset == dict_hit[0].offset
        # Zero-copy view agrees with the copying lookup.
        view = ring_cache.lookup_view(fingerprint)
        assert (view is None) == (ring_hit is None)
        if view is not None:
            assert bytes(view) == ring_hit[1]
