"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Repeated content is eliminated" in out
    assert "decoder DROPPED" in out


def test_stall_anatomy():
    out = run_example("stall_anatomy.py")
    assert "retransmission encoded against itself" in out
    assert "stalled" in out


def test_udp_streaming():
    out = run_example("udp_streaming.py")
    assert "frames delivered" in out
    assert "k_distance(k=8)" in out


def test_wireless_download_single_point():
    out = run_example("wireless_download.py", "0")
    assert "cache_flush" in out
    assert "bytes ratio" in out


def test_adaptive_tuning():
    out = run_example("adaptive_tuning.py")
    assert "adaptive_k" in out
    assert "channel degrades" in out
