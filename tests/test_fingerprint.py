"""Unit tests for the fingerprint scheme wrapper."""

import pytest

from repro.core.fingerprint import (DEFAULT_WINDOW, DEFAULT_ZERO_BITS,
                                    FingerprintScheme)


def test_defaults_match_paper_parameters():
    scheme = FingerprintScheme()
    assert scheme.window == DEFAULT_WINDOW == 16
    assert scheme.zero_bits == DEFAULT_ZERO_BITS == 4
    assert scheme.mask == 0xF


def test_kind_selects_implementation():
    from repro.core.polyhash import PolyFingerprinter
    from repro.core.rabin import RabinFingerprinter

    assert isinstance(FingerprintScheme(kind="poly")._impl, PolyFingerprinter)
    assert isinstance(FingerprintScheme(kind="rabin")._impl,
                      RabinFingerprinter)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FingerprintScheme(kind="nope")


@pytest.mark.parametrize("zero_bits", [-1, 33])
def test_zero_bits_bounds(zero_bits):
    with pytest.raises(ValueError):
        FingerprintScheme(zero_bits=zero_bits)


def test_anchors_sorted_by_offset():
    data = bytes(range(256)) * 8
    anchors = FingerprintScheme().anchors(data)
    offsets = [off for off, _ in anchors]
    assert offsets == sorted(offsets)


def test_zero_zero_bits_selects_everything():
    data = bytes(range(64))
    scheme = FingerprintScheme(zero_bits=0)
    assert len(scheme.anchors(data)) == len(data) - scheme.window + 1


def test_identical_schemes_identical_anchors():
    """Encoder and decoder configured alike must select identically —
    the cache-synchronisation prerequisite."""
    data = b"some repeated payload content " * 50
    a = FingerprintScheme(window=16, zero_bits=4, kind="poly")
    b = FingerprintScheme(window=16, zero_bits=4, kind="poly")
    assert a.anchors(data) == b.anchors(data)


def test_expected_anchor_spacing():
    assert FingerprintScheme(zero_bits=4).expected_anchor_spacing() == 16.0
    assert FingerprintScheme(zero_bits=6).expected_anchor_spacing() == 64.0
