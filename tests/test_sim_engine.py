"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator, Timer


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(2.0, lambda: order.append("b"))
    sim.at(1.0, lambda: order.append("a"))
    sim.at(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.at(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_after_schedules_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(5.0, lambda: sim.after(2.5, lambda: times.append(sim.now)))
    sim.run()
    assert times == [7.5]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(4.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.25]
    assert sim.now == 4.25


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "early")
    sim.at(10.0, fired.append, "late")
    end = sim.run(until=5.0)
    assert fired == ["early"]
    assert end == 5.0
    # The late event is still pending and fires on a subsequent run.
    sim.run()
    assert fired == ["early", "late"]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []

    def first():
        fired.append("a")
        sim.stop()

    sim.at(1.0, first)
    sim.at(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]


def test_max_events_bound():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.at(float(i), count.append, i)
    sim.run(max_events=3)
    assert count == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.after(1.0, chain, n + 1)

    sim.at(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_pending_counts_uncancelled():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    event = sim.at(2.0, lambda: None)
    event.cancel()
    assert sim.pending() == 1


def test_run_not_reentrant():
    sim = Simulator()
    failures = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.at(1.0, reenter)
    sim.run()
    assert failures == [True]


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_cancels_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_stop_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_armed_and_expiry_introspection(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.expires_at is None
        timer.start(2.0)
        assert timer.armed
        assert timer.expires_at == 2.0
        sim.run()
        assert not timer.armed

    def test_timer_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: None)

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer._callback = on_fire
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


def test_pending_tracks_live_events_through_run():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    event = sim.at(2.0, lambda: None)
    sim.at(3.0, lambda: None)
    assert sim.pending() == 3
    event.cancel()
    event.cancel()          # idempotent: no double-decrement
    assert sim.pending() == 2
    sim.run(until=1.5)
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    sim.run(until=1.5)
    event.cancel()          # already fired; the live count must hold
    assert sim.pending() == 1


def test_dispatch_profiling_counts_every_event():
    from repro.metrics.profiling import StageProfiler

    profiler = StageProfiler()
    sim = Simulator(profiler=profiler)
    for t in (1.0, 2.0, 3.0):
        sim.at(t, lambda: None)
    sim.run()
    assert profiler.count("event_dispatch") == 3
    assert profiler.total("event_dispatch") >= 0.0


class TestPooledEvents:
    """post/post_after: fire-and-forget events recycled via a free list."""

    def test_post_runs_in_time_order_with_handles(self):
        sim = Simulator()
        order = []
        sim.post(2.0, order.append, "pooled")
        sim.at(1.0, lambda: order.append("handle"))
        sim.post_after(3.0, order.append, "late")
        sim.run()
        assert order == ["handle", "pooled", "late"]

    def test_shells_are_recycled(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, 1)
        sim.run()
        assert len(sim._pool) == 1
        shell = sim._pool[0]
        # Recycled shells drop their callback references (no leaks).
        assert shell.fn is None and shell.args is None
        sim.post(2.0, fired.append, 2)
        assert sim._pool == []          # the shell was taken back out
        sim.run()
        assert fired == [1, 2]

    def test_pool_is_bounded(self):
        from repro.sim.engine import _EVENT_POOL_CAP

        sim = Simulator()
        n = _EVENT_POOL_CAP + 64
        for index in range(n):
            sim.post(float(index), lambda: None)
        sim.run()
        assert len(sim._pool) == _EVENT_POOL_CAP

    def test_post_validates_like_at(self):
        sim = Simulator()
        sim.at(5.0, sim.stop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post(1.0, lambda: None)     # in the past
        with pytest.raises(SimulationError):
            sim.post_after(-0.1, lambda: None)

    def test_pooled_and_handle_events_interleave(self):
        # Cancelling a handle event must not disturb pooled dispatch.
        sim = Simulator()
        order = []
        sim.post(1.0, order.append, "a")
        handle = sim.at(1.5, lambda: order.append("cancelled"))
        sim.post(2.0, order.append, "b")
        handle.cancel()
        sim.run()
        assert order == ["a", "b"]
        assert sim.pending() == 0

    def test_post_reschedules_from_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.post_after(1.0, tick)

        sim.post(0.0, tick)
        sim.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]
