"""Tests for the interprocedural rule families (taint/purity/excflow)
and the ``repro.lintgraph/v1`` export.

Each family runs against synthetic trees (the same fixture style as
``test_lint.py``), including the acceptance scenario: a wall-clock
value injected into a report path is convicted by ``taint-flow`` with
the full source-to-sink hop chain.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.graphexport import (LINTGRAPH_SCHEMA, build_lintgraph,
                                        finding_hops_valid,
                                        validate_lintgraph)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under a src/ package root."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for package_dir in sorted({p.parent for p in tmp_path.rglob("*.py")}):
        init = package_dir / "__init__.py"
        if package_dir != tmp_path / "src" and not init.exists():
            init.write_text("", encoding="utf-8")
    return tmp_path


def active(report, rule):
    return [f for f in report.findings if f.active and f.rule == rule]


class TestTaintFlow:
    def test_direct_flow_into_json(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/report.py": (
                "import json, time\n"
                "def write_report(handle):\n"
                "    stamp = time.time()\n"
                "    json.dump({'at': stamp}, handle)\n"
            ),
        })
        findings = active(run_lint(tmp_path), "taint-flow")
        assert len(findings) == 1
        assert findings[0].line == 4
        assert finding_hops_valid(findings[0])
        assert findings[0].hops[0]["detail"].startswith("source time.time")

    def test_interprocedural_flow_through_calls(self, tmp_path):
        """The acceptance scenario: wall clock -> helper -> report."""
        make_tree(tmp_path, {
            "src/repro/metrics/report.py": (
                "import json\n"
                "from repro.metrics.meta import build_meta\n"
                "def export(results, handle):\n"
                "    doc = {'results': results, 'meta': build_meta()}\n"
                "    json.dump(doc, handle)\n"
            ),
            "src/repro/metrics/meta.py": (
                "import time\n"
                "def build_meta():\n"
                "    return {'written_at': now_stamp()}\n"
                "def now_stamp():\n"
                "    return time.time()\n"
            ),
        })
        report = run_lint(tmp_path)
        assert report.exit_code != 0
        findings = active(report, "taint-flow")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/metrics/report.py"
        # Multi-hop chain: source -> return -> return -> container ->
        # sink, crossing both modules.
        assert len(finding.hops) >= 4
        paths = {hop["path"] for hop in finding.hops}
        assert "src/repro/metrics/meta.py" in paths
        assert "src/repro/metrics/report.py" in paths
        assert finding_hops_valid(finding)

    def test_container_store_flow(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/bucket.py": (
                "import json, os\n"
                "def collect(handle):\n"
                "    rows = []\n"
                "    rows.append(os.urandom(8).hex())\n"
                "    json.dump(rows, handle)\n"
            ),
        })
        findings = active(run_lint(tmp_path), "taint-flow")
        assert len(findings) == 1

    def test_clean_flow_passes(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/clean.py": (
                "import json, time\n"
                "def profile():\n"
                "    return time.perf_counter()\n"
                "def export(results, handle):\n"
                "    json.dump({'results': results}, handle)\n"
            ),
        })
        assert active(run_lint(tmp_path), "taint-flow") == []

    def test_source_pragma_suppresses_but_keeps_trace(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/stamped.py": (
                "import json, time\n"
                "def export(handle):\n"
                "    # lint: disable=taint-flow(metadata timestamp),"
                "determinism-wallclock(metadata timestamp)\n"
                "    doc = {'at': time.time()}\n"
                "    json.dump(doc, handle)\n"
            ),
        })
        report = run_lint(tmp_path)
        assert active(report, "taint-flow") == []
        suppressed = [f for f in report.findings
                      if f.rule == "taint-flow" and f.suppressed]
        assert len(suppressed) == 1
        # The graph export still carries the trace for inspection.
        graph = build_lintgraph(tmp_path)
        assert graph["counts"]["taint_traces"] == 1

    def test_id_as_value_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/ids.py": (
                "import json\n"
                "def export(obj, handle):\n"
                "    json.dump({'key': id(obj)}, handle)\n"
            ),
        })
        assert len(active(run_lint(tmp_path), "taint-flow")) == 1


class TestPurity:
    def test_lambda_submission_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def sweep(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(lambda x: x + 1, items))\n"
            ),
        })
        findings = active(run_lint(tmp_path), "purity-unpicklable")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_function_submission_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def sweep(items, offset):\n"
                "    def worker(x):\n"
                "        return x + offset\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(worker, items))\n"
            ),
        })
        findings = active(run_lint(tmp_path), "purity-unpicklable")
        assert len(findings) == 1
        assert "closes over" in findings[0].message

    def test_bound_method_submission_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "class Runner:\n"
                "    def cell(self, x):\n"
                "        return x\n"
                "    def sweep(self, items):\n"
                "        with ProcessPoolExecutor() as pool:\n"
                "            return list(pool.map(self.cell, items))\n"
            ),
        })
        findings = active(run_lint(tmp_path), "purity-unpicklable")
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_generator_argument_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def cell(x):\n"
                "    return x\n"
                "def sweep(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.submit(cell, "
                "(i for i in items)))\n"
            ),
        })
        findings = active(run_lint(tmp_path), "purity-unpicklable")
        assert len(findings) == 1
        assert "generator" in findings[0].message

    def test_module_level_worker_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def cell(x):\n"
                "    return x * 2\n"
                "def sweep(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(cell, items))\n"
            ),
        })
        report = run_lint(tmp_path)
        assert active(report, "purity-unpicklable") == []
        assert active(report, "purity-global-mutation") == []

    def test_worker_reachable_global_mutation_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/experiments/run.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from repro.workload.state import record\n"
                "def cell(x):\n"
                "    record(x)\n"
                "    return x\n"
                "def sweep(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(cell, items))\n"
            ),
            "src/repro/workload/state.py": (
                "SEEN = []\n"
                "def record(x):\n"
                "    SEEN.append(x)\n"
            ),
        })
        findings = active(run_lint(tmp_path), "purity-global-mutation")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/workload/state.py"
        # Full hop chain: submission -> cell -> record -> mutation.
        assert len(finding.hops) >= 3
        assert finding.hops[0]["detail"].startswith("submitted")
        assert finding_hops_valid(finding)


class TestExcflow:
    def test_swallowed_violation_chain_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/gateway/box.py": (
                "from repro.core.checks import guard\n"
                "def process(data):\n"
                "    try:\n"
                "        return guard(data)\n"
                "    except Exception:\n"
                "        return None\n"
            ),
            "src/repro/core/checks.py": (
                "class InvariantViolation(AssertionError):\n"
                "    pass\n"
                "def guard(data):\n"
                "    return deep_check(data)\n"
                "def deep_check(data):\n"
                "    if not data:\n"
                "        raise InvariantViolation('empty')\n"
                "    return data\n"
            ),
        })
        findings = active(run_lint(tmp_path),
                          "excflow-swallowed-violation")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/gateway/box.py"
        # Chain: try-body call -> guard -> deep_check -> raise.
        assert len(finding.hops) >= 3
        assert "raises InvariantViolation" in finding.hops[-1]["detail"]
        assert finding_hops_valid(finding)

    def test_rereferenced_exception_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/gateway/box.py": (
                "from repro.core.checks import guard\n"
                "RESULTS = {}\n"
                "def process(data, log):\n"
                "    try:\n"
                "        return guard(data)\n"
                "    except Exception as exc:\n"
                "        log.append(str(exc))\n"
                "        raise\n"
            ),
            "src/repro/core/checks.py": (
                "class InvariantViolation(AssertionError):\n"
                "    pass\n"
                "def guard(data):\n"
                "    if not data:\n"
                "        raise InvariantViolation('empty')\n"
                "    return data\n"
            ),
        })
        assert active(run_lint(tmp_path),
                      "excflow-swallowed-violation") == []

    def test_verify_modules_exempt(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/verify/runner.py": (
                "from repro.core.checks import guard\n"
                "def score(data):\n"
                "    try:\n"
                "        return guard(data)\n"
                "    except Exception:\n"
                "        return 'violation'\n"
            ),
            "src/repro/core/checks.py": (
                "class InvariantViolation(AssertionError):\n"
                "    pass\n"
                "def guard(data):\n"
                "    if not data:\n"
                "        raise InvariantViolation('empty')\n"
                "    return data\n"
            ),
        })
        assert active(run_lint(tmp_path),
                      "excflow-swallowed-violation") == []

    def test_unrelated_catch_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/gateway/box.py": (
                "def load(path):\n"
                "    try:\n"
                "        with open(path) as handle:\n"
                "            return handle.read()\n"
                "    except OSError:\n"
                "        return None\n"
            ),
        })
        assert active(run_lint(tmp_path),
                      "excflow-swallowed-violation") == []


class TestLintgraph:
    def test_synthetic_graph_validates_with_multihop_trace(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/metrics/report.py": (
                "import json\n"
                "from repro.metrics.meta import build_meta\n"
                "def export(results, handle):\n"
                "    doc = {'results': results, 'meta': build_meta()}\n"
                "    json.dump(doc, handle)\n"
            ),
            "src/repro/metrics/meta.py": (
                "import time\n"
                "def build_meta():\n"
                "    return {'written_at': time.time()}\n"
            ),
        })
        payload = build_lintgraph(tmp_path)
        validate_lintgraph(payload)
        assert payload["schema"] == LINTGRAPH_SCHEMA
        traces = payload["taint"]["traces"]
        assert len(traces) == 1
        assert len(traces[0]["hops"]) >= 3  # a multi-hop trace
        # The document round-trips through JSON.
        validate_lintgraph(json.loads(json.dumps(payload)))

    def test_repo_graph_validates(self):
        payload = build_lintgraph(REPO_ROOT)
        validate_lintgraph(payload)
        assert payload["counts"]["functions"] > 500
        assert payload["counts"]["call_edges"] > 1000
        # The sanctioned bench timestamp stays visible as a trace even
        # though its finding is pragma-suppressed.
        assert payload["counts"]["taint_traces"] >= 1

    def test_validator_rejects_bad_documents(self, tmp_path):
        payload = build_lintgraph(make_tree(tmp_path, {
            "src/repro/core/a.py": "def f():\n    return 1\n"}))
        validate_lintgraph(payload)
        broken = dict(payload, schema="nope/v0")
        with pytest.raises(ValueError):
            validate_lintgraph(broken)
        broken = json.loads(json.dumps(payload))
        broken["counts"]["functions"] += 1
        with pytest.raises(ValueError):
            validate_lintgraph(broken)


class TestSelfLintDataflow:
    def test_shipped_tree_clean_under_new_families(self):
        report = run_lint(REPO_ROOT,
                          select=["taint", "purity", "excflow"])
        assert [f for f in report.findings if f.active] == []

    def test_doctored_wallclock_violation_caught(self, tmp_path):
        """CI smoke contract: injecting time.time() into a report path
        of a copied module tree must fail the lint with a hop chain."""
        make_tree(tmp_path, {
            "src/repro/metrics/report.py": (
                "import json\n"
                "def export(results, handle):\n"
                "    json.dump({'results': results,\n"
                "               'at': _stamp()}, handle)\n"
                "import time\n"
                "def _stamp():\n"
                "    return time.time()\n"
            ),
        })
        report = run_lint(tmp_path)
        assert report.exit_code != 0
        findings = active(report, "taint-flow")
        assert findings and all(f.hops for f in findings)
