"""The sweep engine: grids, hashing, parallel determinism, caching."""

import json

from repro.experiments import ExperimentConfig, run_transfer
from repro.experiments.sweep import (SweepSpec, config_hash, parallel_map,
                                     run_sweep, write_bench_json)

# Small object so every transfer finishes in a few hundred sim-events.
FILE_SIZE = 30 * 1460


def small_spec(paired=True):
    return SweepSpec(
        base=ExperimentConfig(corpus="file1", file_size=FILE_SIZE),
        grid={"policy": ["cache_flush"], "loss_rate": [0.0, 0.02]},
        seeds=(11, 23),
        paired_baseline=paired)


class TestSpec:
    def test_cells_enumerate_in_grid_product_order(self):
        spec = SweepSpec(
            base=ExperimentConfig(),
            grid={"policy": ["a", "b"], "loss_rate": [0.0, 0.1]},
            seeds=(1, 2))
        cells = list(spec.cells())
        assert len(cells) == 8 == spec.size()
        assert [c.index for c in cells] == list(range(8))
        # policy is the outer axis, loss next, seeds innermost.
        assert [(c.params["policy"], c.params["loss_rate"], c.seed)
                for c in cells[:4]] == [
            ("a", 0.0, 1), ("a", 0.0, 2), ("a", 0.1, 1), ("a", 0.1, 2)]
        assert cells[0].config.policy == "a"
        assert cells[0].config.seed == 1

    def test_comma_joined_keys_assign_fields_together(self):
        spec = SweepSpec(
            base=ExperimentConfig(),
            grid={"policy,policy_kwargs": [("cache_flush", {}),
                                           ("k_distance", {"k": 8})]})
        cells = list(spec.cells())
        assert len(cells) == 2
        assert cells[1].config.policy == "k_distance"
        assert cells[1].config.policy_kwargs == {"k": 8}
        # No seeds given: the base config's seed is kept.
        assert cells[0].seed == ExperimentConfig().seed

    def test_cell_keys_are_hashable_and_distinct(self):
        spec = SweepSpec(
            base=ExperimentConfig(),
            grid={"policy,policy_kwargs": [("k_distance", {"k": 8}),
                                           ("k_distance", {"k": 16})]})
        keys = [cell.key for cell in spec.cells()]
        assert len(set(keys)) == 2


class TestConfigHash:
    def test_equal_configs_hash_equal(self):
        a = ExperimentConfig(loss_rate=0.05, policy_kwargs={"k": 8})
        b = ExperimentConfig(policy_kwargs={"k": 8}, loss_rate=0.05)
        assert config_hash(a) == config_hash(b)

    def test_any_field_change_changes_the_hash(self):
        base = ExperimentConfig()
        assert config_hash(base) != config_hash(base.with_updates(seed=1))
        assert config_hash(base) != config_hash(
            base.with_updates(policy_kwargs={"k": 8}))


class TestRunSweep:
    def test_parallel_is_bit_identical_to_serial(self):
        spec = small_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert len(serial.cells) == len(parallel.cells) == 4
        for a, b in zip(serial.cells, parallel.cells):
            assert a.config_hash == b.config_hash
            assert a.result == b.result
            assert a.baseline == b.baseline

    def test_baselines_are_shared_across_cells(self):
        swept = run_sweep(small_spec())
        # 4 DRE cells + 4 distinct (loss, seed) baselines.
        assert swept.executed == 8
        for cell in swept:
            assert cell.baseline is not None
            assert cell.baseline.policy == "none"
            assert cell.ratio_point(cell.params["loss_rate"]).bytes_ratio > 0

    def test_cache_hit_rerun_executes_nothing(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, cache_dir=str(tmp_path))
        assert first.executed == 8 and first.cached == 0
        again = run_sweep(spec, cache_dir=str(tmp_path))
        assert again.executed == 0 and again.cached == 8
        for a, b in zip(first.cells, again.cells):
            assert b.from_cache
            assert a.result == b.result
            assert a.baseline == b.baseline

    def test_by_key_lookup(self):
        swept = run_sweep(small_spec(paired=False))
        table = swept.by_key()
        assert len(table) == 4
        cell = swept.cells[0]
        assert table[cell.key] is cell


def _square(value):
    return value * value


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(10))
        assert parallel_map(_square, items) == [v * v for v in items]
        assert parallel_map(_square, items, workers=2) == [v * v
                                                           for v in items]


class TestBenchJson:
    def test_schema_and_history(self, tmp_path):
        swept = run_sweep(small_spec(paired=False))
        path = tmp_path / "BENCH_sweep.json"
        write_bench_json(swept, str(path), name="unit")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "bench_sweep/v1"
        assert payload["name"] == "unit"
        assert payload["summary"]["cells"] == 4
        assert payload["history"] == []
        for cell in payload["cells"]:
            assert set(cell) >= {"params", "seed", "config_hash",
                                 "from_cache", "elapsed", "metrics"}
            assert "bytes_on_link" in cell["metrics"]
        # A second write folds the first run's summary into history.
        write_bench_json(swept, str(path), name="unit")
        payload = json.loads(path.read_text())
        assert len(payload["history"]) == 1
        assert payload["history"][0]["cells"] == 4


class TestProfileCollection:
    def test_profile_lands_in_result_when_enabled(self):
        config = ExperimentConfig(corpus="file1", file_size=FILE_SIZE,
                                  policy="cache_flush", profile=True)
        result = run_transfer(config)
        assert result.profile is not None
        for stage in ("fingerprint", "cache_ops", "event_dispatch"):
            assert result.profile[stage]["calls"] > 0
            assert result.profile[stage]["seconds"] >= 0.0

    def test_profile_is_none_by_default(self):
        result = run_transfer(ExperimentConfig(corpus="file1",
                                               file_size=FILE_SIZE,
                                               policy="cache_flush"))
        assert result.profile is None


class TestBenchHistory:
    def test_append_bench_history_generic_record(self, tmp_path):
        from repro.experiments.sweep import append_bench_history

        path = str(tmp_path / "BENCH_hotpath.json")
        first = append_bench_history(
            {"schema": "bench_hotpath/v1", "name": "hotpath",
             "summary": {"speedup": 3.2}}, path)
        assert first["history"] == []
        second = append_bench_history(
            {"schema": "bench_hotpath/v1", "name": "hotpath",
             "summary": {"speedup": 3.4}}, path)
        assert len(second["history"]) == 1
        assert second["history"][0]["speedup"] == 3.2
        assert second["history"][0]["name"] == "hotpath"
        on_disk = json.loads((tmp_path / "BENCH_hotpath.json").read_text())
        assert on_disk["summary"]["speedup"] == 3.4

    def test_history_ignores_foreign_schema(self, tmp_path):
        from repro.experiments.sweep import append_bench_history

        path = str(tmp_path / "BENCH_x.json")
        append_bench_history(
            {"schema": "bench_hotpath/v1", "name": "a",
             "summary": {}}, path)
        replaced = append_bench_history(
            {"schema": "bench_multiflow/v1", "name": "b",
             "summary": {}}, path)
        # A different schema starts a fresh trajectory.
        assert replaced["history"] == []
