"""Shared helpers for TCP tests: two hosts joined by scriptable links."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import IPPacket
from repro.net.tcp import TCPConfig, TCPStack
from repro.sim import Host, Simulator


class ScriptedLink:
    """Zero-bandwidth-model link with a deterministic drop predicate.

    ``drop(pkt, index)`` is consulted for each offered packet (``index``
    counts offers on this link, starting at 0); True drops it.
    """

    def __init__(self, sim: Simulator, delay: float = 0.005,
                 drop: Optional[Callable[[IPPacket, int], bool]] = None):
        self.sim = sim
        self.delay = delay
        self.drop = drop if drop is not None else (lambda pkt, index: False)
        self.receiver = None
        self.offered = 0
        self.dropped = 0
        self.delivered = []

    def connect(self, receiver) -> None:
        self.receiver = receiver

    def send(self, pkt: IPPacket) -> None:
        index = self.offered
        self.offered += 1
        if self.drop(pkt, index):
            self.dropped += 1
            return
        self.delivered.append(pkt)
        self.sim.after(self.delay, self.receiver, pkt)


def drop_indices(*indices: int) -> Callable[[IPPacket, int], bool]:
    """Drop the packets at the given offer indices."""
    wanted = set(indices)
    return lambda pkt, index: index in wanted


def drop_data_segments(*offsets: int, once: bool = True):
    """Drop TCP data segments at the given *stream offsets*.

    Offsets are relative to the first data byte of the flow (i.e.
    independent of the connection's ISS); the first copy only is
    dropped when ``once``.
    """
    wanted = set(offsets)
    seen = set()
    base: dict = {}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        flow = (pkt.src, segment.src_port, pkt.dst, segment.dst_port)
        if flow not in base or segment.seq < base[flow]:
            base[flow] = segment.seq
        offset = segment.seq - base[flow]
        if offset in wanted and (not once or (flow, offset) not in seen):
            seen.add((flow, offset))
            return True
        return False

    return predicate


class TcpTestbed:
    """Client and server hosts joined by two scriptable links."""

    def __init__(self, drop_c2s=None, drop_s2c=None,
                 config: Optional[TCPConfig] = None, delay: float = 0.005):
        self.sim = Simulator()
        self.client = Host(self.sim, "client", "10.0.0.1")
        self.server = Host(self.sim, "server", "10.0.0.2")
        self.c2s = ScriptedLink(self.sim, delay, drop_c2s)
        self.s2c = ScriptedLink(self.sim, delay, drop_s2c)
        self.c2s.connect(self.server.receive)
        self.s2c.connect(self.client.receive)
        self.client.add_route("10.0.0.2", self.c2s)
        self.server.add_route("10.0.0.1", self.s2c)
        cfg = config if config is not None else TCPConfig()
        self.client_stack = TCPStack(self.sim, self.client, cfg)
        self.server_stack = TCPStack(self.sim, self.server, cfg)

    def serve_bytes(self, data: bytes, port: int = 80):
        """Server sends ``data`` and closes as soon as a request lands."""
        def accept(conn):
            def on_receive(_request):
                conn.send(data)
                conn.close()
            conn.on_receive = on_receive
        self.server_stack.listen(port, accept)

    def fetch(self, port: int = 80):
        """Client connects, sends a one-line request, collects the body."""
        received = bytearray()
        events = {}
        conn = self.client_stack.connect("10.0.0.2", port)
        conn.on_established = lambda: conn.send(b"GET\n")
        conn.on_receive = received.extend
        conn.on_remote_close = lambda: events.setdefault("eof", self.sim.now)
        conn.on_close = lambda reason: events.setdefault("close", reason)
        return conn, received, events
