"""Tests for the byte-caching gateway middleboxes."""

import random

from repro.gateway import GatewayPair
from repro.net.checksum import payload_checksum
from repro.net.packet import (ControlMessage, IPPacket, PROTO_DRE_CONTROL,
                              PROTO_TCP, TCPSegment)
from repro.sim import Simulator

CLIENT = "10.0.1.1"
SERVER = "10.0.2.1"


class Sink:
    def __init__(self):
        self.packets = []

    def send(self, pkt):
        self.packets.append(pkt)


def data_packet(data: bytes, seq: int = 0) -> IPPacket:
    segment = TCPSegment(src_port=80, dst_port=5000, seq=seq, ack=0,
                         flags=TCPSegment.ACK, window=1000, data=data,
                         checksum=payload_checksum(data))
    return IPPacket(src=SERVER, dst=CLIENT, proto=PROTO_TCP, payload=segment)


def ack_packet(ack: int) -> IPPacket:
    segment = TCPSegment(src_port=5000, dst_port=80, seq=0, ack=ack,
                         flags=TCPSegment.ACK, window=1000)
    return IPPacket(src=CLIENT, dst=SERVER, proto=PROTO_TCP, payload=segment)


def make_pair(sim=None, policy="naive", **kwargs):
    sim = sim or Simulator()
    pair = GatewayPair.create(sim, policy=policy, data_dst=CLIENT, **kwargs)
    enc_out, dec_out = Sink(), Sink()
    pair.encoder.set_default_route(enc_out)
    pair.decoder.set_default_route(dec_out)
    return sim, pair, enc_out, dec_out


def random_bytes(seed, n=1460):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestEncodeDecodePath:
    def test_fresh_packet_passes_shimmed(self):
        sim, pair, enc_out, dec_out = make_pair()
        payload = random_bytes(1)
        pair.encoder.receive(data_packet(payload))
        pkt = enc_out.packets[0]
        assert pkt.tcp.dre_encoded
        pair.decoder.receive(pkt)
        out = dec_out.packets[0]
        assert out.tcp.data == payload
        assert not out.tcp.dre_encoded

    def test_repeated_packet_compressed_then_restored(self):
        sim, pair, enc_out, dec_out = make_pair()
        payload = random_bytes(2)
        for seq in (0, 1460):
            pair.encoder.receive(data_packet(payload, seq=seq))
        small = enc_out.packets[1]
        assert len(small.tcp.data) < 100
        for pkt in enc_out.packets:
            pair.decoder.receive(pkt)
        assert [p.tcp.data for p in dec_out.packets] == [payload, payload]
        assert pair.encoder.stats.encoded_packets == 1
        assert pair.decoder.stats.decoded_ok == 2

    def test_undecodable_packet_dropped_and_counted(self):
        """Lose the carrier packet: the dependent one must vanish at the
        decoder (§IV-A t3)."""
        sim, pair, enc_out, dec_out = make_pair()
        payload = random_bytes(3)
        pair.encoder.receive(data_packet(payload, seq=0))      # lost
        pair.encoder.receive(data_packet(payload, seq=1460))   # dependent
        dependent = enc_out.packets[1]
        pair.decoder.receive(dependent)
        assert dec_out.packets == []
        assert pair.decoder.stats.undecodable_dropped == 1

    def test_reverse_packets_pass_untouched(self):
        sim, pair, enc_out, dec_out = make_pair()
        pair.encoder.receive(ack_packet(1460))
        pkt = enc_out.packets[0]
        assert not pkt.tcp.dre_encoded

    def test_empty_segments_not_shimmed(self):
        sim, pair, enc_out, _ = make_pair()
        syn = IPPacket(src=SERVER, dst=CLIENT, proto=PROTO_TCP,
                       payload=TCPSegment(src_port=80, dst_port=5000, seq=0,
                                          ack=0, flags=TCPSegment.SYN,
                                          window=1000))
        pair.encoder.receive(syn)
        assert not enc_out.packets[0].tcp.dre_encoded

    def test_dependency_log_records_sources(self):
        sim, pair, enc_out, _ = make_pair()
        payload = random_bytes(4)
        first = data_packet(payload, seq=0)
        pair.encoder.receive(first)
        second = data_packet(payload, seq=1460)
        pair.encoder.receive(second)
        assert pair.encoder.dependency_log[second.packet_id] == \
            {first.packet_id}

    def test_byte_accounting(self):
        sim, pair, enc_out, _ = make_pair()
        payload = random_bytes(5)
        pair.encoder.receive(data_packet(payload, seq=0))
        pair.encoder.receive(data_packet(payload, seq=1460))
        stats = pair.encoder.stats
        assert stats.data_packets == 2
        assert stats.bytes_after < stats.bytes_before


class TestControlChannel:
    def test_control_message_consumed_by_addressee(self):
        sim, pair, enc_out, dec_out = make_pair(policy="informed_marking")
        message = ControlMessage(kind="mark", payload=[123])
        pkt = IPPacket(src=pair.decoder.address, dst=pair.encoder.address,
                       proto=PROTO_DRE_CONTROL, payload=message)
        pair.encoder.receive(pkt)
        assert enc_out.packets == []  # consumed, not forwarded

    def test_control_message_forwarded_when_not_addressee(self):
        sim, pair, enc_out, dec_out = make_pair(policy="informed_marking")
        message = ControlMessage(kind="mark", payload=[123])
        pkt = IPPacket(src=pair.decoder.address, dst="somewhere-else",
                       proto=PROTO_DRE_CONTROL, payload=message)
        pair.encoder.receive(pkt)
        assert len(enc_out.packets) == 1

    def test_informed_marking_end_to_end(self):
        sim, pair, enc_out, dec_out = make_pair(policy="informed_marking")
        payload = random_bytes(6)
        pair.encoder.receive(data_packet(payload, seq=0))       # lost
        pair.encoder.receive(data_packet(payload, seq=1460))
        dependent = enc_out.packets[1]
        pair.decoder.receive(dependent)                         # drops+marks
        assert pair.decoder.stats.control_messages_sent == 1
        mark = dec_out.packets[-1] if dec_out.packets else None
        # The control message goes towards the encoder (reverse route).
        control = [p for p in dec_out.packets
                   if p.proto == PROTO_DRE_CONTROL]
        assert control
        pair.encoder.receive(control[0])
        # Marked entries are unusable: the same content goes raw now.
        pair.encoder.receive(data_packet(payload, seq=2920))
        third = enc_out.packets[-1]
        decoded_before = pair.decoder.stats.decoded_ok
        pair.decoder.receive(third)
        assert pair.decoder.stats.decoded_ok == decoded_before + 1

    def test_nack_recovery_end_to_end(self):
        sim, pair, enc_out, dec_out = make_pair(policy="nack_recovery")
        payload = random_bytes(7)
        pair.encoder.receive(data_packet(payload, seq=0))       # lost
        pair.encoder.receive(data_packet(payload, seq=1460))
        dependent = enc_out.packets[1]
        pair.decoder.receive(dependent)
        # Buffered, not dropped; a NACK went out the reverse path.
        assert pair.decoder.stats.buffered == 1
        nacks = [p for p in dec_out.packets if p.proto == PROTO_DRE_CONTROL]
        assert nacks
        pair.encoder.receive(nacks[0])
        repairs = [p for p in enc_out.packets
                   if p.proto == PROTO_DRE_CONTROL]
        assert repairs
        pair.decoder.receive(repairs[0])
        # The buffered packet was re-decoded and forwarded to the client.
        delivered = [p for p in dec_out.packets if p.proto == PROTO_TCP]
        assert delivered and delivered[-1].tcp.data == payload


class TestPolicyIntegration:
    def test_cache_flush_sends_retransmission_raw(self):
        sim, pair, enc_out, dec_out = make_pair(policy="cache_flush")
        payload = random_bytes(8)
        pair.encoder.receive(data_packet(payload, seq=0))
        pair.encoder.receive(data_packet(payload, seq=1460))
        pair.encoder.receive(data_packet(payload, seq=0))   # retransmission
        retransmission = enc_out.packets[2]
        # Raw (flush emptied the cache): full size + shim.
        assert len(retransmission.tcp.data) == len(payload) + 2
        pair.decoder.receive(retransmission)
        assert dec_out.packets[-1].tcp.data == payload

    def test_tcp_seq_never_references_future(self):
        sim, pair, enc_out, dec_out = make_pair(policy="tcp_seq")
        payload = random_bytes(9)
        pair.encoder.receive(data_packet(payload, seq=1460))
        pair.encoder.receive(data_packet(payload, seq=0))  # earlier seq
        second = enc_out.packets[1]
        assert len(second.tcp.data) == len(payload) + 2    # sent raw
        pair.decoder.receive(second)
        assert dec_out.packets[-1].tcp.data == payload

    def test_k_distance_references_every_k(self):
        sim, pair, enc_out, _ = make_pair(policy="k_distance", k=3)
        payload_a = random_bytes(10)
        for i in range(7):
            pair.encoder.receive(data_packet(payload_a, seq=i * 1460))
        sizes = [len(p.tcp.data) for p in enc_out.packets]
        # References at counters 0, 3 and 6 go out raw-sized.
        for reference_index in (0, 3, 6):
            assert sizes[reference_index] == len(payload_a) + 2
        # Non-reference duplicates are whole-payload matches, which
        # k-distance refuses (sent raw) — but partial matches compress;
        # counter 7 half-overlaps the counter-6 reference.
        payload_b = payload_a[:700] + random_bytes(11, 760)
        pair.encoder.receive(data_packet(payload_b, seq=7 * 1460))
        assert len(enc_out.packets[-1].tcp.data) < len(payload_b)
