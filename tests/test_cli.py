"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_run_basic(capsys):
    code, out = run_cli(capsys, "run", "--policy", "cache_flush",
                        "--loss", "0", "--size", "87600")
    assert code == 0
    assert "completed" in out
    assert "True" in out


def test_run_with_baseline_ratios(capsys):
    code, out = run_cli(capsys, "run", "--policy", "cache_flush",
                        "--size", "87600", "--baseline")
    assert code == 0
    assert "bytes ratio vs no-DRE" in out


def test_run_no_dre(capsys):
    code, out = run_cli(capsys, "run", "--policy", "none",
                        "--size", "87600")
    assert code == 0
    assert "perceived loss" in out


def test_run_unknown_policy(capsys):
    code = main(["run", "--policy", "wat"])
    assert code == 2


def test_run_k_distance_with_k(capsys):
    code, out = run_cli(capsys, "run", "--policy", "k_distance", "--k", "4",
                        "--size", "87600")
    assert code == 0


def test_sweep(capsys):
    code, out = run_cli(capsys, "sweep", "--policies", "cache_flush",
                        "--losses", "0,2")
    assert code == 0
    assert "bytes ratio" in out
    assert "cache_flush" in out


def test_mobility_command(capsys):
    code, out = run_cli(capsys, "mobility", "--mode", "tcp-proxy",
                        "--handoff", "0.25")
    assert code == 0
    assert "STALLED" in out


def test_corpus_listing(capsys):
    code, out = run_cli(capsys, "corpus")
    assert code == 0
    assert "file1" in out and "ebook" in out


def test_corpus_details(capsys):
    code, out = run_cli(capsys, "corpus", "file1")
    assert code == 0
    assert "byte savings" in out


def test_policies_listing(capsys):
    code, out = run_cli(capsys, "policies")
    assert code == 0
    assert "cache_flush" in out
    assert "NackRecoveryEncoderPolicy" in out


def test_trace_command(capsys):
    code, out = run_cli(capsys, "trace", "--policy", "naive", "--loss", "2",
                        "--size", str(40 * 1460), "--seed", "2")
    assert code == 0
    assert "dependency analysis" in out
    assert "self-dependency livelock" in out


def test_artifact_headline(capsys):
    code, out = run_cli(capsys, "artifact", "headline")
    assert code == 0
    assert "byte savings" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_bad_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["artifact", "figure99"])


def test_lint_command_clean_tree(capsys, tmp_path):
    import json
    import os

    out_file = tmp_path / "report.json"
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    code, out = run_cli(capsys, "lint", "--root", root,
                        "--out", str(out_file))
    assert code == 0
    assert "0 findings" in out
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro.lint/v1"


def test_lint_command_select_and_json(capsys):
    import json
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    code, out = run_cli(capsys, "lint", "--root", root,
                        "--select", "layering", "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert payload["rules_run"] == ["layering-cycle", "layering-import"]


def test_lint_command_unknown_selector():
    code = main(["lint", "--select", "wat"])
    assert code == 2
