"""Unit tests for the TCP stack (listen/connect/demux)."""

import pytest

from repro.net.tcp import TCPState

from tests.tcp_helpers import TcpTestbed


def test_listener_accepts_connection():
    testbed = TcpTestbed()
    accepted = []
    testbed.server_stack.listen(80, accepted.append)
    testbed.client_stack.connect("10.0.0.2", 80)
    testbed.sim.run(until=5)
    assert len(accepted) == 1
    assert accepted[0].state is TCPState.ESTABLISHED


def test_duplicate_listen_rejected():
    testbed = TcpTestbed()
    testbed.server_stack.listen(80, lambda conn: None)
    with pytest.raises(ValueError):
        testbed.server_stack.listen(80, lambda conn: None)


def test_unknown_port_syn_ignored():
    testbed = TcpTestbed()
    conn = testbed.client_stack.connect("10.0.0.2", 9999)
    testbed.sim.run(until=1)
    assert conn.state is TCPState.SYN_SENT  # still retrying, never answered


def test_ephemeral_ports_unique():
    testbed = TcpTestbed()
    testbed.server_stack.listen(80, lambda conn: None)
    a = testbed.client_stack.connect("10.0.0.2", 80)
    b = testbed.client_stack.connect("10.0.0.2", 80)
    assert a.local_port != b.local_port


def test_parallel_connections_demuxed():
    testbed = TcpTestbed()
    bodies = {}

    def accept(conn):
        def on_receive(data):
            conn.send(b"reply-to-" + data.strip())
            conn.close()
        conn.on_receive = on_receive

    testbed.server_stack.listen(80, accept)
    results = {}
    for name in (b"a", b"b", b"c"):
        conn = testbed.client_stack.connect("10.0.0.2", 80)
        buffer = bytearray()
        results[name] = buffer
        conn.on_established = (lambda c=conn, n=name: c.send(n + b"\n"))
        conn.on_receive = buffer.extend
    testbed.sim.run(until=10)
    assert bytes(results[b"a"]) == b"reply-to-a"
    assert bytes(results[b"b"]) == b"reply-to-b"
    assert bytes(results[b"c"]) == b"reply-to-c"


def test_connection_count_and_close_all():
    testbed = TcpTestbed()
    testbed.server_stack.listen(80, lambda conn: None)
    conn = testbed.client_stack.connect("10.0.0.2", 80)
    testbed.sim.run(until=2)
    assert testbed.client_stack.connection_count() == 1
    testbed.client_stack.close_all()
    assert conn.state is TCPState.ABORTED


def test_explicit_local_port():
    testbed = TcpTestbed()
    testbed.server_stack.listen(80, lambda conn: None)
    conn = testbed.client_stack.connect("10.0.0.2", 80, local_port=12345)
    assert conn.local_port == 12345
    with pytest.raises(ValueError):
        testbed.client_stack.connect("10.0.0.2", 80, local_port=12345)
