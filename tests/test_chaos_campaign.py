"""Tests for the chaos campaign engine: spec, SLO oracles, runner.

The end-to-end acceptance tests at the bottom run the canonical
``handover-storm`` campaign once per module (smoke scale, parallel
workers) and assert the ISSUE's acceptance criteria: all oracles pass
for the three §V policies with the resilience layer on, at least one
fails with it off, and the scorecard replays byte-for-byte.
"""

import json
import math
from types import SimpleNamespace

import pytest

from repro.chaos import (CAMPAIGNS, CHAOS_POLICIES, CHAOS_SCHEMA, Campaign,
                         Phase, canonical_campaign, evaluate_slos,
                         format_scorecard, replay_report, run_campaign,
                         validate_chaos_report)
from repro.chaos.runner import _percentile, arm_campaign
from repro.chaos.slo import ORACLES, phase_recovery_times
from repro.experiments.runner import build_testbed

WORKERS = 4


# ---------------------------------------------------------------------------
# spec round-trip and validation
# ---------------------------------------------------------------------------

class TestCampaignSpec:
    def test_canonical_names(self):
        assert sorted(CAMPAIGNS) == [
            "brownout-thrash", "cache-thrash", "clock-drift",
            "degraded-brownout", "dup-reorder-storm", "flaky-backhaul",
            "handover-storm", "split-brain-resync",
        ]

    def test_every_canonical_campaign_builds_at_both_scales(self):
        for name in CAMPAIGNS:
            for scale in ("smoke", "full"):
                campaign = canonical_campaign(name, scale)
                assert campaign.name == name
                assert campaign.scale == scale
                assert campaign.phases

    def test_unknown_name_and_scale_raise(self):
        with pytest.raises(ValueError):
            canonical_campaign("no-such-campaign")
        with pytest.raises(ValueError):
            canonical_campaign("handover-storm", "extra-large")

    def test_round_trip_through_json(self):
        campaign = canonical_campaign("handover-storm", "full")
        doc = json.loads(json.dumps(campaign.to_dict()))
        rebuilt = Campaign.from_dict(doc)
        assert rebuilt.to_dict() == campaign.to_dict()

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("p", 0.0, 0.0)
        with pytest.raises(ValueError):
            Phase("p", -1.0, 1.0)
        with pytest.raises(ValueError):
            Phase("p", 0.0, 1.0, [{"kind": "meteor-strike"}])

    def test_campaign_validation(self):
        with pytest.raises(ValueError):
            Campaign(name="c", description="", phases=[])
        phases = [Phase("late", 1.0, 1.0), Phase("early", 0.0, 1.0)]
        with pytest.raises(ValueError):
            Campaign(name="c", description="", phases=phases)
        with pytest.raises(ValueError):
            Campaign(name="c", description="",
                     phases=[Phase("p", 0.0, 1.0)], seeds=())

    def test_config_baseline_has_no_dre_and_no_resilience(self):
        campaign = canonical_campaign("handover-storm")
        baseline = campaign.config(None, 11)
        assert baseline.policy is None and not baseline.resilience
        assert not baseline.verify
        dre = campaign.config("tcp_seq", 11)
        assert dre.policy == "tcp_seq" and dre.resilience and dre.verify
        assert dre.telemetry
        unshielded = campaign.config("tcp_seq", 11, resilience=False)
        assert unshielded.policy == "tcp_seq" and not unshielded.resilience


# ---------------------------------------------------------------------------
# SLO oracles on synthetic runs
# ---------------------------------------------------------------------------

def fake_result(completed=True, download_time=2.0, undecodable_drops=0,
                data_packets=100, degraded=False, telemetry=None,
                fraction_retrieved=1.0, stalled=False):
    return SimpleNamespace(
        completed=completed, download_time=download_time,
        fraction_retrieved=fraction_retrieved, stalled=stalled,
        undecodable_drops=undecodable_drops,
        encoder_stats=SimpleNamespace(data_packets=data_packets),
        encoder_resilience=SimpleNamespace(degraded=degraded),
        telemetry=telemetry)


def fake_campaign(**slo):
    return Campaign(name="synthetic", description="",
                    phases=[Phase("p", 0.0, 1.0)], slo=slo)


def by_name(slos):
    return {s.oracle: s for s in slos}


class TestOracles:
    def evaluate(self, result, baseline=None, mttrs=(), violation=None,
                 **slo):
        return by_name(evaluate_slos(fake_campaign(**slo), result, baseline,
                                     list(mttrs), violation))

    def test_clean_run_passes_everything(self):
        slos = self.evaluate(fake_result(), baseline=fake_result(),
                             mttrs=[0.5])
        assert [s.oracle for s in slos.values()] == list(ORACLES)
        assert all(s.passed for s in slos.values())

    def test_violation_fails_byte_integrity(self):
        slos = self.evaluate(
            fake_result(),
            violation={"oracle": "byte_integrity", "message": "mismatch"})
        assert not slos["byte_integrity"].passed
        assert "byte_integrity" in slos["byte_integrity"].detail

    def test_goodput_floor_incomplete_fails(self):
        slos = self.evaluate(fake_result(completed=False,
                                         fraction_retrieved=0.4,
                                         stalled=True))
        assert not slos["goodput_floor"].passed
        assert not slos["no_permanent_degradation"].passed

    def test_goodput_floor_ratio_against_baseline(self):
        slos = self.evaluate(fake_result(download_time=5.0),
                             baseline=fake_result(download_time=2.0),
                             goodput_delay_ratio=2.0)
        assert not slos["goodput_floor"].passed
        assert slos["goodput_floor"].value == pytest.approx(2.5)
        assert slos["goodput_floor"].threshold == 2.0

    def test_goodput_floor_vacuous_without_comparable_baseline(self):
        for baseline in (None, fake_result(completed=False)):
            slos = self.evaluate(fake_result(), baseline=baseline)
            assert slos["goodput_floor"].passed
            assert slos["goodput_floor"].value is None

    def test_undecodable_rate(self):
        slos = self.evaluate(fake_result(undecodable_drops=20,
                                         data_packets=100),
                             max_undecodable_rate=0.15)
        assert not slos["undecodable_rate"].passed
        assert slos["undecodable_rate"].value == pytest.approx(0.2)
        slos = self.evaluate(fake_result(undecodable_drops=5,
                                         data_packets=100),
                             max_undecodable_rate=0.15)
        assert slos["undecodable_rate"].passed

    def test_undecodable_rate_vacuous_with_no_data(self):
        slos = self.evaluate(fake_result(data_packets=0))
        assert slos["undecodable_rate"].passed

    def test_mttr_ceiling(self):
        slos = self.evaluate(fake_result(), mttrs=[0.5, 2.0, None],
                             mttr_ceiling=1.0)
        assert not slos["mttr_ceiling"].passed
        assert slos["mttr_ceiling"].value == pytest.approx(2.0)
        slos = self.evaluate(fake_result(), mttrs=[None, None])
        assert slos["mttr_ceiling"].passed      # nothing to measure

    def test_mttr_unrecovered_fails_any_ceiling(self):
        slos = self.evaluate(fake_result(), mttrs=[math.inf],
                             mttr_ceiling=1e9)
        assert not slos["mttr_ceiling"].passed
        assert "unrecovered" in slos["mttr_ceiling"].detail

    def test_no_permanent_degradation(self):
        slos = self.evaluate(fake_result(degraded=True))
        assert not slos["no_permanent_degradation"].passed
        telemetry = {"final_gauges":
                     {"resilience.resyncing{gw=decoder}": 1.0},
                     "sampler": {"times": [], "series": {}}}
        slos = self.evaluate(fake_result(telemetry=telemetry))
        assert not slos["no_permanent_degradation"].passed
        assert "resyncing" in slos["no_permanent_degradation"].detail


class TestPhaseRecoveryTimes:
    def telemetry(self, times, decoded, resyncing=None, degraded=None):
        series = {"gw.decoded_ok{gw=decoder}": decoded}
        if resyncing is not None:
            series["resilience.resyncing{gw=decoder}"] = resyncing
        if degraded is not None:
            series["resilience.degraded{gw=encoder}"] = degraded
        return {"sampler": {"times": times, "series": series}}

    def test_recovery_at_first_healthy_progressing_sample(self):
        telemetry = self.telemetry(
            times=[0.0, 1.0, 2.0, 3.0, 4.0],
            decoded=[5, 10, 10, 10, 14],
            resyncing=[0, 0, 0, 1, 0])
        [mttr] = phase_recovery_times(telemetry, [1.5])
        # t=2.0: no progress; t=3.0: resyncing; t=4.0: recovered.
        assert mttr == pytest.approx(2.5)

    def test_run_over_before_phase_end_is_none(self):
        telemetry = self.telemetry(times=[0.0, 1.0], decoded=[5, 10])
        assert phase_recovery_times(telemetry, [1.0, 5.0]) == [None, None]

    def test_never_recovered_is_inf(self):
        telemetry = self.telemetry(
            times=[0.0, 1.0, 2.0, 3.0],
            decoded=[5, 5, 5, 5])
        [mttr] = phase_recovery_times(telemetry, [0.5])
        assert math.isinf(mttr)

    def test_missing_series_defaults_are_benign(self):
        telemetry = self.telemetry(times=[0.0, 1.0, 2.0],
                                   decoded=[0, 1, 2])
        [mttr] = phase_recovery_times(telemetry, [0.5])
        assert mttr == pytest.approx(0.5)


class TestPercentile:
    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert _percentile(values, 50) == 2.0
        assert _percentile(values, 90) == 4.0
        assert _percentile(values, 100) == 4.0
        assert _percentile([], 50) is None


# ---------------------------------------------------------------------------
# arming onto a real testbed
# ---------------------------------------------------------------------------

class TestArming:
    def test_baseline_testbed_skips_gateway_faults(self):
        campaign = canonical_campaign("split-brain-resync")
        config = campaign.config(None, 11)
        testbed = build_testbed(config)
        assert testbed.gateways is None
        armed = arm_campaign(campaign, testbed, 11)
        # restart/control_blackout injections were all skipped: nothing
        # scheduled touches a gateway and no injector was attached.
        assert armed.injectors == {}
        testbed.sim.run(until=1.0)            # scheduled events are sane

    def test_dre_testbed_arms_gateway_faults(self):
        campaign = canonical_campaign("split-brain-resync")
        config = campaign.config("tcp_seq", 11)
        testbed = build_testbed(config)
        armed = arm_campaign(campaign, testbed, 11)
        assert set(armed.injectors) == {"forward", "reverse"}


# ---------------------------------------------------------------------------
# report validation
# ---------------------------------------------------------------------------

def minimal_report_doc():
    campaign = canonical_campaign("handover-storm")
    run = {
        "policy": "tcp_seq", "seed": 11, "passed": True,
        "slos": [{"oracle": oracle, "passed": True, "value": None,
                  "threshold": None, "detail": ""} for oracle in ORACLES],
        "metrics": {"completed": True},
    }
    return {
        "schema": CHAOS_SCHEMA,
        "campaign": campaign.to_dict(),
        "policies": ["tcp_seq"],
        "resilience": True,
        "runs": [run],
        "summary": {"passed": True, "runs": 1, "failed_runs": 0},
    }


class TestValidateReport:
    def test_minimal_document_validates(self):
        validate_chaos_report(minimal_report_doc())

    def test_rejections(self):
        cases = [
            ("schema", "repro.chaos/v0"),
            ("runs", []),
        ]
        for key, value in cases:
            doc = minimal_report_doc()
            doc[key] = value
            with pytest.raises(ValueError):
                validate_chaos_report(doc)
        doc = minimal_report_doc()
        del doc["summary"]
        with pytest.raises(ValueError):
            validate_chaos_report(doc)
        doc = minimal_report_doc()
        doc["runs"][0]["slos"] = doc["runs"][0]["slos"][:3]
        with pytest.raises(ValueError):
            validate_chaos_report(doc)
        doc = minimal_report_doc()
        doc["runs"][0]["passed"] = False        # disagrees with slos
        with pytest.raises(ValueError):
            validate_chaos_report(doc)
        doc = minimal_report_doc()
        doc["summary"]["failed_runs"] = 3
        with pytest.raises(ValueError):
            validate_chaos_report(doc)


# ---------------------------------------------------------------------------
# end-to-end acceptance (one shared campaign execution per module)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def handover_report():
    campaign = canonical_campaign("handover-storm", "smoke")
    return run_campaign(campaign, workers=WORKERS)


class TestHandoverStormAcceptance:
    def test_all_policies_pass_every_oracle(self, handover_report):
        report = handover_report
        assert {run["policy"] for run in report.runs} == set(CHAOS_POLICIES)
        for run in report.runs:
            failed = [slo["oracle"] for slo in run["slos"]
                      if not slo["passed"]]
            assert not failed, (
                f"{run['policy']}/seed {run['seed']} failed {failed}")
        assert report.passed

    def test_report_document_validates(self, handover_report):
        doc = json.loads(json.dumps(handover_report.to_dict(),
                                    sort_keys=True))
        validate_chaos_report(doc)

    def test_faults_actually_fired(self, handover_report):
        # Guards against the campaign going vacuous: a transfer that
        # finishes before the storm phase never exercises anything.
        for run in handover_report.runs:
            faults = run["faults"]
            assert faults["crashes"], "decoder restart never fired"
            assert faults["link"]["reordered"], "reorder rule never matched"

    def test_scorecard_renders(self, handover_report):
        text = format_scorecard(handover_report)
        assert "handover-storm" in text
        for policy in CHAOS_POLICIES:
            assert policy in text
        assert "campaign verdict: PASS (3/3 runs passed)" in text

    def test_replay_is_byte_for_byte(self, handover_report):
        doc = json.loads(json.dumps(handover_report.to_dict(),
                                    sort_keys=True))
        fresh, matches = replay_report(doc, workers=WORKERS)
        assert matches
        assert fresh.passed


class TestResilienceOffFailsSlos:
    def test_unshielded_tcp_seq_breaks_at_least_one_oracle(self):
        campaign = canonical_campaign("handover-storm", "smoke")
        report = run_campaign(campaign, policies=("tcp_seq",),
                              resilience=False, workers=WORKERS)
        assert not report.passed
        [run] = report.runs
        failed = [slo["oracle"] for slo in run["slos"] if not slo["passed"]]
        assert failed, "expected the cold-cache handover to break an SLO"
        # The cold decoder cache on the longhaul corpus shows up as lost
        # goodput and/or undecodable packets — not as corrupted bytes.
        assert "byte_integrity" not in failed
