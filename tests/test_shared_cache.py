"""Flows sharing one gateway cache: interleaving, flush, resync.

The serving refactor replaced the one-transfer ByteCache with a shared
sharded cache that many concurrent flows feed simultaneously.  These
regressions pin the behaviours that a latent single-cache assumption
would break: interleaved inserts from different flows, a flush landing
mid-transfer on *both* gateways (the cache_flush policy does exactly
this per retransmission), and epoch bumps (resync) leaving the shared
state coherent for every flow, not just the one that triggered them.
"""

from repro.app.transfer import FileClient, FileServer
from repro.core.cache import ByteCache
from repro.core.shardcache import ShardedByteCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.multiflow import run_concurrent_fetches
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.workload.corpus import corpus_object

FPS = [(i * 2654435761 % (1 << 36)) << 4 for i in range(1, 9)]


# ---------------------------------------------------------------------------
# end-to-end: concurrent flows through one sharded cache
# ---------------------------------------------------------------------------

def test_concurrent_flows_share_sharded_cache_under_loss():
    """Three flows interleave in one sharded cache, with loss.

    Under the cache_flush policy every retransmission flushes both
    caches mid-run, so this exercises the interleaved flush path as a
    matter of course — all flows must still finish with intact content.
    """
    config = ExperimentConfig(file_size=60_000, cache_shards=4,
                              cache_eviction="lru", loss_rate=0.02,
                              seed=5, time_limit=120.0)
    result = run_concurrent_fetches(config, n_clients=3)
    assert len(result.outcomes) == 3
    assert result.all_completed
    assert all(outcome.content_ok for outcome in result.outcomes)


def test_sharded_cache_saves_bytes_across_flows():
    """Inter-flow redundancy (§I) survives the sharded cache: later
    flows ride earlier flows' cached bytes on a clean link."""
    config = ExperimentConfig(file_size=60_000, cache_shards=4,
                              cache_eviction="lru", seed=5,
                              time_limit=120.0)
    shared = run_concurrent_fetches(config, n_clients=3)
    solo = run_concurrent_fetches(config, n_clients=1)
    assert shared.all_completed and solo.all_completed
    # Three flows through the shared cache must cost well under three
    # times one flow — otherwise flows are not actually sharing.
    assert shared.bytes_on_link < 2.5 * solo.bytes_on_link


def _run_two_flows(flush_times=(), bump_times=()):
    """Two concurrent fetches with flushes/epoch bumps injected mid-run."""
    config = ExperimentConfig(file_size=60_000, cache_shards=4,
                              cache_eviction="lru", seed=9,
                              time_limit=120.0)
    testbed = build_testbed(config)
    sim = testbed.sim
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client_app = FileClient(testbed.client_stack, sim)
    encoder = testbed.gateways.encoder
    decoder = testbed.gateways.decoder

    def flush_both() -> None:
        # The cache_flush policy's move: both ends drop state together,
        # so neither can reference bytes the other no longer holds.
        encoder.cache.flush()
        decoder.cache.flush()

    def bump_both() -> None:
        encoder.cache.bump_epoch()
        decoder.cache.bump_epoch()

    for when in flush_times:
        sim.after(when, flush_both)
    for when in bump_times:
        sim.after(when, bump_both)

    outcomes = []
    finished = []

    def done(outcome) -> None:
        finished.append(outcome)
        if len(finished) == 2:
            sim.stop()

    for index in range(2):
        sim.after(0.002 * index, lambda: outcomes.append(client_app.fetch(
            SERVER_ADDR, FILE_NAME, expected_size=len(data),
            expected_content=data, on_done=done)))

    sim.run(until=config.time_limit)
    return testbed, outcomes


def test_interleaved_flush_mid_transfer_resyncs_both_flows():
    """Flushes landing mid-transfer stall neither flow.

    A single-cache assumption (per-flow cache, or flush clearing state
    another flow still references asymmetrically) would corrupt or
    wedge one of the transfers; symmetric flush only costs re-caching.
    """
    testbed, outcomes = _run_two_flows(flush_times=(0.05, 0.2))
    assert len(outcomes) == 2
    assert all(outcome.completed for outcome in outcomes)
    assert all(outcome.content_ok for outcome in outcomes)
    encoder_cache = testbed.gateways.encoder.cache
    decoder_cache = testbed.gateways.decoder.cache
    assert encoder_cache.flushes >= 2
    assert decoder_cache.flushes >= 2
    # Flush is not resync: epochs never moved.
    assert encoder_cache.epoch == 0
    assert decoder_cache.epoch == 0
    # The shared cache came out of the interleaving coherent.
    assert encoder_cache.check_invariants() == []
    assert decoder_cache.check_invariants() == []


def test_epoch_bump_mid_transfer_keeps_flows_alive():
    """A resync (epoch bump) on both gateways mid-run is survivable."""
    testbed, outcomes = _run_two_flows(bump_times=(0.05,))
    assert all(outcome.completed for outcome in outcomes)
    assert all(outcome.content_ok for outcome in outcomes)
    assert testbed.gateways.encoder.cache.epoch == 1
    assert testbed.gateways.decoder.cache.epoch == 1


# ---------------------------------------------------------------------------
# unit-level: the shared-cache semantics flows rely on
# ---------------------------------------------------------------------------

def test_flush_preserves_epoch_and_id_uniqueness_like_unsharded():
    sharded = ShardedByteCache(1 << 20, n_shards=4)
    plain = ByteCache(1 << 20, table_kind="dict")
    for cache in (sharded, plain):
        first = cache.insert_packet(b"a" * 20, [(0, FPS[0])])
        cache.flush()
        assert cache.epoch == 0          # flush is NOT a resync
        assert cache.flushes == 1
        assert cache.lookup(FPS[0]) is None
        assert len(cache.store) == 0
        second = cache.insert_packet(b"b" * 20, [(0, FPS[1])])
        # Store ids survive flushes monotonically: a stale reference
        # from before the flush can never alias a new payload.
        assert second > first
        assert cache.bump_epoch() == 1
        assert cache.flushes == 1        # and resync is not a flush


def test_interleaved_flows_share_and_replace_entries():
    """Two flow identities interleave inserts into one shared cache."""
    cache = ShardedByteCache(1 << 20, n_shards=4)
    flow_a = ("10.0.0.1", 1111)
    flow_b = ("10.0.0.2", 2222)
    sid_a = cache.insert_packet(b"A" * 30, [(0, FPS[0]), (8, FPS[1])],
                                flow=flow_a)
    sid_b = cache.insert_packet(b"B" * 30, [(0, FPS[2])], flow=flow_b)
    # Flow B re-advertising A's fingerprint displaces, not corrupts:
    # the newest entry wins, the displaced one stays reachable one
    # generation back (lookup_previous), exactly as in ByteCache.
    sid_b2 = cache.insert_packet(b"C" * 30, [(0, FPS[0])], flow=flow_b)
    entry, payload = cache.lookup(FPS[0])
    assert payload == b"C" * 30 and entry.flow == flow_b
    prev_entry, prev_payload = cache.lookup_previous(FPS[0])
    assert prev_payload == b"A" * 30 and prev_entry.flow == flow_a
    # A's other anchor is untouched by B's traffic.
    assert cache.lookup(FPS[1])[1] == b"A" * 30
    assert cache.lookup(FPS[2])[1] == b"B" * 30
    assert len({sid_a, sid_b, sid_b2}) == 3
    # Marking one flow's payload unusable never disables the other's.
    assert cache.mark_unusable(FPS[1])
    assert cache.lookup(FPS[0]) is not None
    assert cache.lookup(FPS[2]) is not None
    assert cache.check_invariants() == []
