"""Tests for the deterministic fault-injection module."""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.app.transfer import FileClient, FileServer
from repro.net.packet import (ControlMessage, IPPacket, PROTO_DRE_CONTROL,
                              PROTO_TCP, TCPSegment)
from repro.sim.faults import (FaultInjector, drop_indices, match_control,
                              match_nth_control, match_nth_data,
                              match_stream_offsets)
from repro.workload.corpus import corpus_object

from tests.tcp_helpers import TcpTestbed


def control_packet(kind: str) -> IPPacket:
    return IPPacket(src="gw-a", dst="gw-b", proto=PROTO_DRE_CONTROL,
                    payload=ControlMessage(kind=kind, payload=[1]))


class TestPredicates:
    def test_drop_indices(self):
        predicate = drop_indices(0, 2)
        assert predicate(None, 0)
        assert not predicate(None, 1)
        assert predicate(None, 2)

    def test_match_nth_data_counts_only_data(self):
        from repro.net.packet import IPPacket, PROTO_TCP, TCPSegment

        predicate = match_nth_data(2)
        ack = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                       payload=TCPSegment(src_port=1, dst_port=2, seq=0,
                                          ack=0, flags=TCPSegment.ACK,
                                          window=0))
        data1 = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                         payload=TCPSegment(src_port=1, dst_port=2, seq=0,
                                            ack=0, flags=TCPSegment.ACK,
                                            window=0, data=b"x"))
        data2 = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                         payload=TCPSegment(src_port=1, dst_port=2, seq=1,
                                            ack=0, flags=TCPSegment.ACK,
                                            window=0, data=b"y"))
        assert not predicate(ack, 0)
        assert not predicate(data1, 1)
        assert predicate(data2, 2)

    def test_match_control_filters_by_kind(self):
        predicate = match_control("nack", "cache_resync")
        assert predicate(control_packet("nack"), 0)
        assert predicate(control_packet("cache_resync"), 1)
        assert not predicate(control_packet("repair"), 2)
        data = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                        payload=TCPSegment(src_port=1, dst_port=2, seq=0,
                                           ack=0, flags=TCPSegment.ACK,
                                           window=0, data=b"x"))
        assert not predicate(data, 3)

    def test_match_control_without_kinds_matches_all_control(self):
        predicate = match_control()
        assert predicate(control_packet("heartbeat"), 0)
        assert predicate(control_packet("repair"), 1)

    def test_match_nth_control_counts_per_kind(self):
        predicate = match_nth_control("nack", 2)
        assert not predicate(control_packet("nack"), 0)      # 1st nack
        assert not predicate(control_packet("repair"), 1)    # not counted
        assert predicate(control_packet("nack"), 2)          # 2nd nack
        assert not predicate(control_packet("nack"), 3)


class TestInjectorOnTestbed:
    def test_drop_single_segment_recovered_by_tcp(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(match_stream_offsets(3 * 1460))
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(20 * 1460))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data
        assert injector.log.dropped
        assert injector.log.events == 1

    def test_corrupt_segment_detected_by_checksum(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.corrupt_when(match_nth_data(4))
        import random

        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(20 * 1460))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data
        assert injector.log.corrupted
        assert conn.stats.checksum_drops >= 1

    def test_delay_single_segment_reordered_and_delivered(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.delay_when(match_nth_data(3), 0.2)
        import random

        rng = random.Random(2)
        data = bytes(rng.randrange(256) for _ in range(20 * 1460))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        # Held back, not lost: the transfer still assembles in full.
        assert bytes(received) == data
        assert injector.log.delayed
        assert injector.log.dropped == []
        assert injector.log.events == 1

    def test_delay_rejects_negative(self):
        import pytest

        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        with pytest.raises(ValueError):
            injector.delay_when(match_nth_data(1), -0.5)

    def test_detach_restores_link(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(drop_indices(0))
        injector.detach()
        # The patch is gone: lookups resolve to the class method again
        # and nothing is dropped.
        assert "send" not in testbed.s2c.__dict__
        testbed.serve_bytes(b"hello")
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=5)
        assert bytes(received) == b"hello"
        assert injector.log.events == 0


class TestInjectorOnFullTestbed:
    def test_single_forced_loss_stalls_naive(self):
        """The §IV experiment via the public fault-injection API."""
        config = ExperimentConfig(
            corpus="file1", file_size=40 * 1460, policy="naive", seed=2,
            tcp_max_retries=6, tcp_min_rto=0.05, tcp_max_rto=0.5,
            time_limit=120.0)
        testbed = build_testbed(config)
        injector = FaultInjector(testbed.bottleneck_forward)
        injector.drop_when(match_nth_data(5))
        data = corpus_object(config.corpus, config.file_size,
                             config.corpus_seed)
        FileServer(testbed.server_stack, {FILE_NAME: data})
        client = FileClient(testbed.client_stack, testbed.sim)
        outcome = client.fetch(SERVER_ADDR, FILE_NAME,
                               expected_size=len(data),
                               on_done=lambda _o: testbed.sim.stop())
        testbed.sim.run(until=120)
        assert not outcome.completed
        assert injector.log.events == 1


class TestNackRecoveryUnderControlLoss:
    """§VIII NACK recovery when the *control channel itself* is lossy.

    A lost NACK (or a lost repair) must not wedge the decoder's buffer:
    the buffered-packet timeout expires the stale pending entries, a
    fresh NACK goes out for their fingerprints, and the transfer
    completes.
    """

    def _run(self, kind: str, link_attr: str):
        config = ExperimentConfig(
            corpus="file1", file_size=40 * 1460, policy="nack_recovery",
            policy_kwargs={"decoder_timeout": 0.02}, seed=2,
            tcp_max_retries=8, tcp_min_rto=0.05, tcp_max_rto=0.5,
            time_limit=60.0)
        testbed = build_testbed(config)
        # The triggering data loss: later packets reference the lost
        # carrier and become undecodable -> buffered + NACKed.
        FaultInjector(testbed.bottleneck_forward).drop_when(match_nth_data(5))
        control_injector = FaultInjector(getattr(testbed, link_attr))
        control_injector.drop_when(match_nth_control(kind, 1))
        data = corpus_object(config.corpus, config.file_size,
                             config.corpus_seed)
        FileServer(testbed.server_stack, {FILE_NAME: data})
        client = FileClient(testbed.client_stack, testbed.sim)
        outcome = client.fetch(SERVER_ADDR, FILE_NAME,
                               expected_size=len(data),
                               on_done=lambda _o: testbed.sim.stop())
        testbed.sim.run(until=60)
        assert control_injector.log.dropped
        return testbed, outcome

    def test_lost_nack_expires_buffer_and_completes(self):
        testbed, outcome = self._run("nack", "bottleneck_reverse")
        assert outcome.completed
        policy = testbed.gateways.decoder.policy
        assert policy.timeouts >= 1           # buffered packets expired
        assert policy.nacks_sent >= 2         # and were re-requested
        assert policy.repairs_received >= 1

    def test_lost_repair_expires_buffer_and_completes(self):
        testbed, outcome = self._run("repair", "bottleneck_forward")
        assert outcome.completed
        policy = testbed.gateways.decoder.policy
        assert policy.timeouts >= 1
        assert policy.repairs_received >= 1
        assert testbed.gateways.decoder.stats.reinjected >= 1
