"""Tests for the deterministic fault-injection module."""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.app.transfer import FileClient, FileServer
from repro.sim.faults import (FaultInjector, drop_indices, match_nth_data,
                              match_stream_offsets)
from repro.workload.corpus import corpus_object

from tests.tcp_helpers import TcpTestbed


class TestPredicates:
    def test_drop_indices(self):
        predicate = drop_indices(0, 2)
        assert predicate(None, 0)
        assert not predicate(None, 1)
        assert predicate(None, 2)

    def test_match_nth_data_counts_only_data(self):
        from repro.net.packet import IPPacket, PROTO_TCP, TCPSegment

        predicate = match_nth_data(2)
        ack = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                       payload=TCPSegment(src_port=1, dst_port=2, seq=0,
                                          ack=0, flags=TCPSegment.ACK,
                                          window=0))
        data1 = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                         payload=TCPSegment(src_port=1, dst_port=2, seq=0,
                                            ack=0, flags=TCPSegment.ACK,
                                            window=0, data=b"x"))
        data2 = IPPacket(src="a", dst="b", proto=PROTO_TCP,
                         payload=TCPSegment(src_port=1, dst_port=2, seq=1,
                                            ack=0, flags=TCPSegment.ACK,
                                            window=0, data=b"y"))
        assert not predicate(ack, 0)
        assert not predicate(data1, 1)
        assert predicate(data2, 2)


class TestInjectorOnTestbed:
    def test_drop_single_segment_recovered_by_tcp(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(match_stream_offsets(3 * 1460))
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(20 * 1460))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data
        assert injector.log.dropped
        assert injector.log.events == 1

    def test_corrupt_segment_detected_by_checksum(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.corrupt_when(match_nth_data(4))
        import random

        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(20 * 1460))
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data
        assert injector.log.corrupted
        assert conn.stats.checksum_drops >= 1

    def test_detach_restores_link(self):
        testbed = TcpTestbed()
        injector = FaultInjector(testbed.s2c)
        injector.drop_when(drop_indices(0))
        injector.detach()
        # The patch is gone: lookups resolve to the class method again
        # and nothing is dropped.
        assert "send" not in testbed.s2c.__dict__
        testbed.serve_bytes(b"hello")
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=5)
        assert bytes(received) == b"hello"
        assert injector.log.events == 0


class TestInjectorOnFullTestbed:
    def test_single_forced_loss_stalls_naive(self):
        """The §IV experiment via the public fault-injection API."""
        config = ExperimentConfig(
            corpus="file1", file_size=40 * 1460, policy="naive", seed=2,
            tcp_max_retries=6, tcp_min_rto=0.05, tcp_max_rto=0.5,
            time_limit=120.0)
        testbed = build_testbed(config)
        injector = FaultInjector(testbed.bottleneck_forward)
        injector.drop_when(match_nth_data(5))
        data = corpus_object(config.corpus, config.file_size,
                             config.corpus_seed)
        FileServer(testbed.server_stack, {FILE_NAME: data})
        client = FileClient(testbed.client_stack, testbed.sim)
        outcome = client.fetch(SERVER_ADDR, FILE_NAME,
                               expected_size=len(data),
                               on_done=lambda _o: testbed.sim.stop())
        testbed.sim.run(until=120)
        assert not outcome.completed
        assert injector.log.events == 1
