"""Behavioural tests for the TCP connection state machine."""

import random

import pytest

from repro.net.tcp import TCPConfig, TCPState

from tests.tcp_helpers import TcpTestbed, drop_data_segments, drop_indices


def payload_bytes(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestHandshakeAndTransfer:
    def test_clean_transfer(self):
        testbed = TcpTestbed()
        data = payload_bytes(50_000)
        testbed.serve_bytes(data)
        conn, received, events = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data
        assert "eof" in events

    def test_handshake_establishes_both_sides(self):
        testbed = TcpTestbed()
        testbed.serve_bytes(b"x")
        conn, _, _ = testbed.fetch()
        testbed.sim.run(until=5)
        assert conn.state in (TCPState.ESTABLISHED, TCPState.FIN_SENT) \
            or conn.state is TCPState.ESTABLISHED
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.established_at is not None

    def test_syn_loss_recovered_by_retransmission(self):
        testbed = TcpTestbed(drop_c2s=drop_indices(0))  # drop first SYN
        data = payload_bytes(10_000)
        testbed.serve_bytes(data)
        conn, received, events = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data

    def test_syn_ack_loss_recovered(self):
        testbed = TcpTestbed(drop_s2c=drop_indices(0))  # drop SYN-ACK
        data = payload_bytes(10_000)
        testbed.serve_bytes(data)
        conn, received, events = testbed.fetch()
        testbed.sim.run(until=30)
        assert bytes(received) == data

    def test_empty_body(self):
        testbed = TcpTestbed()
        testbed.serve_bytes(b"")
        conn, received, events = testbed.fetch()
        testbed.sim.run(until=10)
        assert bytes(received) == b""
        assert "eof" in events

    def test_segmentation_at_mss(self):
        testbed = TcpTestbed()
        data = payload_bytes(10 * 1460 + 7)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=30)
        sizes = [len(pkt.tcp.data) for pkt in testbed.s2c.delivered
                 if pkt.tcp and pkt.tcp.data]
        assert max(sizes) == 1460
        assert sizes.count(1460) >= 10
        assert bytes(received) == data


class TestLossRecovery:
    def test_single_data_loss_fast_retransmit(self):
        testbed = TcpTestbed(drop_s2c=drop_data_segments(5 * 1460))
        data = payload_bytes(40 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.stats.retransmissions >= 1
        # Recovered via dup-acks/SACK, not a timeout.
        assert server_conn.stats.timeouts == 0

    def test_multiple_losses_in_one_window(self):
        seqs = [k * 1460 for k in (3, 5, 9, 12)]
        testbed = TcpTestbed(drop_s2c=drop_data_segments(*seqs))
        data = payload_bytes(40 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data

    def test_tail_loss_needs_rto(self):
        last_seq = 39 * 1460
        testbed = TcpTestbed(drop_s2c=drop_data_segments(last_seq))
        data = payload_bytes(40 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.stats.timeouts >= 1

    def test_retransmission_keeps_mss_boundaries(self):
        """Retransmitted segments reuse the original packetisation —
        the property the byte caches rely on."""
        seqs = [k * 1460 for k in (2, 7)]
        testbed = TcpTestbed(drop_s2c=drop_data_segments(*seqs))
        data = payload_bytes(30 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        starts = {}
        for pkt in testbed.s2c.delivered:
            segment = pkt.tcp
            if segment and segment.data:
                starts.setdefault(segment.seq, set()).add(len(segment.data))
        assert all(len(lengths) == 1 for lengths in starts.values())
        assert bytes(received) == data

    def test_ack_loss_tolerated(self):
        # Drop a run of pure ACKs; cumulative ACKs cover the gap.
        def drop_acks(pkt, index):
            segment = pkt.tcp
            return (segment is not None and not segment.data
                    and not segment.syn and 5 <= index <= 12)

        testbed = TcpTestbed(drop_c2s=drop_acks)
        data = payload_bytes(40 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data

    def test_heavy_random_loss_both_directions(self):
        rng = random.Random(5)

        def lossy(pkt, index):
            return rng.random() < 0.1

        testbed = TcpTestbed(drop_s2c=lossy)
        data = payload_bytes(60 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=300)
        assert bytes(received) == data

    def test_reordering_tolerated(self):
        testbed = TcpTestbed()
        # Swap two data segments by delaying one at the link level.
        original_send = testbed.s2c.send
        held = []
        counter = {"data": 0}

        def reorder_send(pkt):
            segment = pkt.tcp
            if segment and segment.data:
                counter["data"] += 1
                if counter["data"] == 5 and not held:
                    held.append(pkt)
                    return
            original_send(pkt)
            if held and segment and segment.data and counter["data"] == 7:
                original_send(held.pop())

        testbed.s2c.send = reorder_send
        data = payload_bytes(30 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data


class TestStall:
    def test_persistent_loss_aborts_connection(self):
        """Every copy of one segment dropped — the §IV stall surface."""
        target = 5 * 1460
        testbed = TcpTestbed(
            drop_s2c=drop_data_segments(target, once=False),
            config=TCPConfig(max_retries=5, min_rto=0.05, max_rto=0.5))
        data = payload_bytes(30 * 1460)
        testbed.serve_bytes(data)
        conn, received, events = testbed.fetch()
        testbed.sim.run(until=120)
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.state is TCPState.ABORTED
        assert server_conn.close_reason == "stalled"
        assert len(received) < len(data)

    def test_retry_counter_resets_on_progress(self):
        rng = random.Random(9)

        def lossy(pkt, index):
            return rng.random() < 0.15

        testbed = TcpTestbed(
            drop_s2c=lossy,
            config=TCPConfig(max_retries=8, min_rto=0.05, max_rto=1.0))
        data = payload_bytes(50 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=300)
        assert bytes(received) == data  # survives despite many timeouts


class TestChecksums:
    def test_corrupted_segment_dropped_and_recovered(self):
        corrupted = []
        counter = {"data": 0}

        def corrupt_one(pkt):
            segment = pkt.tcp
            if segment and segment.data:
                counter["data"] += 1
                if counter["data"] == 4 and not corrupted:
                    corrupted.append(True)
                    segment.data = b"\x00" * len(segment.data)  # bad checksum

        original_send = None
        testbed = TcpTestbed()
        original_send = testbed.s2c.send

        def send(pkt):
            corrupt_one(pkt)
            original_send(pkt)

        testbed.s2c.send = send
        data = payload_bytes(20 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        assert bytes(received) == data
        assert conn.stats.checksum_drops == 1


class TestFlowControl:
    def test_sender_respects_receive_window(self):
        config = TCPConfig(rwnd=8 * 1460)
        testbed = TcpTestbed(config=config)
        data = payload_bytes(80 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()

        max_flight = []

        def watch():
            conns = testbed.server_stack.connections()
            if conns:
                max_flight.append(conns[0].flight_size)
            testbed.sim.after(0.002, watch)

        testbed.sim.after(0.001, watch)
        testbed.sim.run(until=120)
        assert bytes(received) == data
        assert max(max_flight) <= config.rwnd + 1  # +1 for the FIN

    def test_window_ramp_is_slow_start(self):
        testbed = TcpTestbed()
        data = payload_bytes(60 * 1460)
        testbed.serve_bytes(data)
        conn, received, _ = testbed.fetch()
        testbed.sim.run(until=60)
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.cc.stats.slow_start_acks > 0


class TestApiMisuse:
    def test_send_after_close_rejected(self):
        testbed = TcpTestbed()
        testbed.serve_bytes(b"abc")
        conn, _, _ = testbed.fetch()
        testbed.sim.run(until=5)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(b"more")

    def test_connect_twice_rejected(self):
        testbed = TcpTestbed()
        testbed.serve_bytes(b"abc")
        conn, _, _ = testbed.fetch()
        with pytest.raises(RuntimeError):
            conn.connect()

    def test_abort_fires_on_close_once(self):
        testbed = TcpTestbed()
        testbed.serve_bytes(b"abc")
        conn, _, events = testbed.fetch()
        testbed.sim.run(until=1)
        conn.abort("because")
        conn.abort("again")
        assert events["close"] == "because"
