"""Unit tests for the impaired link model."""

import random

import pytest

from repro.net.packet import IPPacket, PROTO_TCP, TCPSegment
from repro.net.checksum import payload_checksum
from repro.sim import DuplexLink, Link, Simulator


def make_packet(size_payload: int = 1000) -> IPPacket:
    data = bytes(size_payload)
    segment = TCPSegment(src_port=1, dst_port=2, seq=0, ack=0,
                         flags=TCPSegment.ACK, window=100, data=data,
                         checksum=payload_checksum(data))
    return IPPacket(src="a", dst="b", proto=PROTO_TCP, payload=segment)


def test_serialisation_and_propagation_delay():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, prop_delay=0.5)
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    pkt = make_packet(1000)   # wire size 1040 -> 1.04 s serialisation
    link.send(pkt)
    sim.run()
    assert arrivals == [pytest.approx(pkt.wire_size / 1000.0 + 0.5)]


def test_back_to_back_packets_queue_fifo():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, prop_delay=0.0)
    arrivals = []
    link.connect(lambda pkt: arrivals.append((sim.now, pkt.packet_id)))
    first, second = make_packet(460), make_packet(460)
    link.send(first)
    link.send(second)
    sim.run()
    assert [pid for _, pid in arrivals] == [first.packet_id, second.packet_id]
    tx = first.wire_size / 1000.0
    assert arrivals[0][0] == pytest.approx(tx)
    assert arrivals[1][0] == pytest.approx(2 * tx)


def test_loss_rate_statistics():
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, prop_delay=0.0, loss_rate=0.3,
                rng=random.Random(1), queue_limit=None)
    delivered = []
    link.connect(delivered.append)
    n = 2000
    for _ in range(n):
        link.send(make_packet(100))
    sim.run()
    observed = 1 - len(delivered) / n
    assert 0.25 < observed < 0.35
    assert link.stats.packets_lost == n - len(delivered)


def test_zero_loss_delivers_everything():
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, prop_delay=0.0, queue_limit=None)
    delivered = []
    link.connect(delivered.append)
    for _ in range(500):
        link.send(make_packet(100))
    sim.run()
    assert len(delivered) == 500


def test_corruption_flips_payload_or_header():
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, prop_delay=0.0, corrupt_rate=1.0,
                rng=random.Random(3), queue_limit=None)
    received = []
    link.connect(received.append)
    for _ in range(100):
        link.send(make_packet(500))
    sim.run()
    damaged = sum(
        1 for pkt in received
        if pkt.header_corrupt
        or payload_checksum(pkt.payload.data) != pkt.payload.checksum)
    assert damaged == len(received) == 100


def test_reordering_changes_arrival_order():
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, prop_delay=0.001, reorder_rate=0.5,
                reorder_extra_delay=0.5, rng=random.Random(5),
                queue_limit=None)
    order = []
    link.connect(lambda pkt: order.append(pkt.packet_id))
    packets = [make_packet(100) for _ in range(50)]
    for pkt in packets:
        link.send(pkt)
    sim.run()
    assert len(order) == 50
    assert order != [pkt.packet_id for pkt in packets]
    assert link.stats.packets_reordered > 0


def test_queue_limit_tail_drops():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, prop_delay=0.0, queue_limit=5)
    delivered = []
    link.connect(delivered.append)
    for _ in range(20):
        link.send(make_packet(1000))
    sim.run()
    assert len(delivered) == 5
    assert link.stats.packets_queue_dropped == 15


def test_stats_byte_accounting():
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, prop_delay=0.0, queue_limit=None)
    link.connect(lambda pkt: None)
    pkt = make_packet(700)
    link.send(pkt)
    sim.run()
    assert link.stats.bytes_offered == pkt.wire_size
    assert link.stats.bytes_delivered == pkt.wire_size


def test_send_without_receiver_raises():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, prop_delay=0.0)
    with pytest.raises(RuntimeError):
        link.send(make_packet())


@pytest.mark.parametrize("field,value", [
    ("bandwidth", 0), ("bandwidth", -5), ("prop_delay", -0.1),
])
def test_invalid_link_parameters(field, value):
    sim = Simulator()
    kwargs = {"bandwidth": 1000.0, "prop_delay": 0.0}
    kwargs[field] = value
    with pytest.raises(ValueError):
        Link(sim, **kwargs)


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_invalid_rates(rate):
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 1000.0, 0.0, loss_rate=rate)


def test_duplex_link_has_independent_directions():
    sim = Simulator()
    duplex = DuplexLink.create(sim, 1000.0, 0.0, name="pair")
    fwd, rev = [], []
    duplex.forward.connect(fwd.append)
    duplex.reverse.connect(rev.append)
    duplex.forward.send(make_packet(100))
    duplex.reverse.send(make_packet(100))
    duplex.reverse.send(make_packet(100))
    sim.run()
    assert len(fwd) == 1
    assert len(rev) == 2
