"""Tests for the synthetic workload generators."""

import pytest

from repro.experiments.scenarios import offline_compression_ratio
from repro.workload import (DependencyFileSpec, clear_corpus_cache,
                            corpus_names, corpus_object,
                            generate_dependency_file, generate_ebook,
                            generate_video, generate_webpage_session,
                            measure_dependencies)


class TestDependencyFiles:
    def test_exact_size(self):
        spec = DependencyFileSpec(size=100_000, seed=1)
        assert len(generate_dependency_file(spec)) == 100_000

    def test_deterministic(self):
        spec = DependencyFileSpec(size=50_000, seed=7)
        assert generate_dependency_file(spec) == generate_dependency_file(spec)

    def test_seed_changes_content(self):
        a = generate_dependency_file(DependencyFileSpec(size=50_000, seed=1))
        b = generate_dependency_file(DependencyFileSpec(size=50_000, seed=2))
        assert a != b

    def test_dependency_degree_tracks_parameter(self):
        low = generate_dependency_file(DependencyFileSpec(
            size=400_000, avg_dependencies=3.3, seed=3))
        high = generate_dependency_file(DependencyFileSpec(
            size=400_000, avg_dependencies=6.3, seed=3))
        low_deg = measure_dependencies(low)
        high_deg = measure_dependencies(high)
        assert 2.0 < low_deg < 5.5
        assert high_deg > low_deg + 1.0

    def test_redundancy_fraction_controls_compression(self):
        sparse = generate_dependency_file(DependencyFileSpec(
            size=300_000, redundancy=0.2, seed=4))
        dense = generate_dependency_file(DependencyFileSpec(
            size=300_000, redundancy=0.6, seed=4))
        assert offline_compression_ratio(dense) \
            < offline_compression_ratio(sparse)

    def test_zero_redundancy_incompressible(self):
        data = generate_dependency_file(DependencyFileSpec(
            size=200_000, redundancy=0.0, seed=5))
        assert offline_compression_ratio(data) > 0.99

    @pytest.mark.parametrize("kwargs", [
        {"size": 0}, {"size": 1000, "redundancy": 0.99},
        {"size": 1000, "redundancy": -0.1},
    ])
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            generate_dependency_file(DependencyFileSpec(**kwargs))

    def test_locality_concentrates_sources(self):
        near = generate_dependency_file(DependencyFileSpec(
            size=300_000, locality_scale=2.0, seed=6))
        # With tight locality, a small cache window already captures
        # most of the redundancy.
        small_window = offline_compression_ratio(near, cache_packets=8)
        assert small_window < 0.85


class TestObjectGenerators:
    def test_ebook_is_mostly_text(self):
        data = generate_ebook(100_000, seed=1)
        printable = sum(1 for b in data if 32 <= b < 127 or b in (10, 13))
        assert printable / len(data) > 0.95
        assert len(data) == 100_000

    def test_ebook_low_redundancy(self):
        data = generate_ebook(300_000, seed=1)
        ratio = offline_compression_ratio(data, cache_packets=1000)
        assert 1 - ratio < 0.05

    def test_video_nearly_incompressible_in_small_window(self):
        data = generate_video(400_000, seed=1)
        assert 1 - offline_compression_ratio(data, cache_packets=10) < 0.005

    def test_video_atoms_visible_in_large_window(self):
        data = generate_video(800_000, seed=1)
        small = 1 - offline_compression_ratio(data, cache_packets=10)
        large = 1 - offline_compression_ratio(data, cache_packets=1000)
        assert large > small

    def test_webpages_highly_redundant(self):
        data = generate_webpage_session(300_000, seed=1)
        savings = 1 - offline_compression_ratio(data, cache_packets=100)
        assert savings > 0.25

    def test_generators_deterministic(self):
        assert generate_ebook(50_000, 9) == generate_ebook(50_000, 9)
        assert generate_video(50_000, 9) == generate_video(50_000, 9)
        assert generate_webpage_session(50_000, 9) == \
            generate_webpage_session(50_000, 9)


class TestCorpus:
    def test_names(self):
        names = corpus_names()
        for expected in ("file1", "file2", "ebook", "video", "webpages",
                         "random"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            corpus_object("nope")

    def test_memoisation(self):
        clear_corpus_cache()
        a = corpus_object("file1", size=50_000, seed=1)
        b = corpus_object("file1", size=50_000, seed=1)
        assert a is b
        clear_corpus_cache()
        c = corpus_object("file1", size=50_000, seed=1)
        assert a == c and a is not c

    def test_default_sizes(self):
        clear_corpus_cache()
        assert len(corpus_object("ebook", seed=1)) == 587_567
        clear_corpus_cache()

    def test_file1_file2_dependency_profiles(self):
        f1 = corpus_object("file1", size=300_000, seed=3)
        f2 = corpus_object("file2", size=300_000, seed=3)
        assert measure_dependencies(f2) > measure_dependencies(f1)
