"""Unit tests for match verification and boundary expansion."""

import random

from repro.core.region import (Region, common_prefix_length,
                               common_suffix_length, expand_match)


class TestCommonRuns:
    def test_prefix_basic(self):
        assert common_prefix_length(b"abcdef", 0, b"abcxyz", 0, 6) == 3

    def test_prefix_with_offsets(self):
        assert common_prefix_length(b"..abc", 2, b"!abc", 1, 3) == 3

    def test_prefix_limit_respected(self):
        assert common_prefix_length(b"aaaa", 0, b"aaaa", 0, 2) == 2

    def test_prefix_zero_on_immediate_mismatch(self):
        assert common_prefix_length(b"x", 0, b"y", 0, 1) == 0

    def test_prefix_crosses_chunk_boundary(self):
        a = b"q" * 1000
        b = b"q" * 600 + b"Z" + b"q" * 399
        assert common_prefix_length(a, 0, b, 0, 1000) == 600

    def test_suffix_basic(self):
        assert common_suffix_length(b"xxabc", 5, b"yyabc", 5, 3) == 3

    def test_suffix_partial(self):
        assert common_suffix_length(b"xxabc", 5, b"yyzbc", 5, 3) == 2

    def test_suffix_crosses_chunk_boundary(self):
        a = b"q" * 1000
        b = b"q" * 399 + b"Z" + b"q" * 600
        assert common_suffix_length(a, 1000, b, 1000, 1000) == 600

    def test_suffix_limit(self):
        assert common_suffix_length(b"aaaa", 4, b"aaaa", 4, 3) == 3


class TestExpandMatch:
    W = 16

    def test_exact_window_match_no_expansion(self):
        window = bytes(range(16))
        new = b"\x99" * 8 + window + b"\x88" * 8
        stored = b"\x77" * 4 + window + b"\x66" * 4
        match = expand_match(new, 8, stored, 4, self.W)
        assert match == Region(fingerprint=0, offset_new=8, offset_stored=4,
                               length=16)

    def test_expands_both_directions(self):
        shared = bytes(range(64))
        new = b"\x01" * 10 + shared + b"\x02" * 10
        stored = b"\x03" * 5 + shared + b"\x04" * 5
        # anchor the window in the middle of the shared run
        match = expand_match(new, 10 + 24, stored, 5 + 24, self.W)
        assert match.offset_new == 10
        assert match.offset_stored == 5
        assert match.length == 64

    def test_collision_rejected(self):
        new = bytes(range(16)) + b"\x00" * 16
        stored = bytes(range(1, 17)) + b"\x00" * 16
        assert expand_match(new, 0, stored, 0, self.W) is None

    def test_left_limit_prevents_overlap(self):
        shared = bytes(range(64))
        new = shared + shared
        stored = shared
        match = expand_match(new, 64 + 8, stored, 8, self.W, left_limit=64)
        assert match.offset_new >= 64

    def test_anchor_before_left_limit_rejected(self):
        shared = bytes(range(32))
        assert expand_match(shared, 4, shared, 4, self.W, left_limit=10) is None

    def test_window_out_of_range_rejected(self):
        data = bytes(20)
        assert expand_match(data, 10, data, 0, self.W) is None
        assert expand_match(data, 0, data, 10, self.W) is None

    def test_match_stops_at_payload_edges(self):
        shared = bytes(range(40))
        new = shared
        stored = b"\xAA" * 100 + shared
        match = expand_match(new, 10, stored, 110, self.W)
        assert match.offset_new == 0
        assert match.length == 40

    def test_full_packet_duplicate(self):
        rng = random.Random(4)
        payload = bytes(rng.randrange(256) for _ in range(1460))
        match = expand_match(payload, 700, payload, 700, self.W)
        assert match.offset_new == 0
        assert match.length == 1460

    def test_region_properties(self):
        region = Region(fingerprint=1, offset_new=10, offset_stored=20,
                        length=30)
        assert region.end_new == 40
        assert region.end_stored == 50
