"""Integration tests reproducing §IV's circular-dependency stall.

These tests force a *single, deterministic* packet event (loss,
corruption or re-ordering) and check that:

* the naive Spring & Wetherall policy livelocks — every retransmission
  of the affected segment is encoded against a copy of itself, so the
  decoder can never reconstruct it and TCP ultimately aborts;
* each of the paper's three robust policies survives the identical
  event and delivers the file intact.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.app.transfer import FileClient, FileServer
from repro.workload.corpus import corpus_object

FILE_SIZE = 40 * 1460


def run_with_event(policy, policy_kwargs=None, drop_nth_data=5,
                   corrupt_instead=False, time_limit=200.0):
    """Run a transfer dropping (or corrupting) exactly one data packet."""
    config = ExperimentConfig(
        corpus="file1", file_size=FILE_SIZE, corpus_seed=3,
        policy=policy, policy_kwargs=policy_kwargs or {},
        loss_rate=0.0, seed=2, time_limit=time_limit,
        tcp_max_retries=6, tcp_min_rto=0.05, tcp_max_rto=0.5,
        verify_content=True)
    testbed = build_testbed(config)
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           expected_content=data,
                           on_done=lambda _o: testbed.sim.stop())

    # Interpose on the bottleneck link: affect exactly one data packet.
    link = testbed.bottleneck_forward
    original = link.send
    state = {"count": 0, "fired": False, "sizes_after_event": []}

    def tampering_send(pkt):
        segment = pkt.tcp
        if segment is not None and segment.data:
            state["count"] += 1
            if state["count"] == drop_nth_data and not state["fired"]:
                state["fired"] = True
                if corrupt_instead:
                    segment.data = bytes(len(segment.data))  # zero it out
                else:
                    return  # drop silently
            elif state["fired"]:
                state["sizes_after_event"].append(len(segment.data))
        original(pkt)

    link.send = tampering_send
    testbed.sim.run(until=time_limit)
    return testbed, outcome, state


class TestNaiveLivelock:
    def test_single_loss_stalls_connection(self):
        testbed, outcome, _state = run_with_event("naive")
        assert not outcome.completed
        server_conn = testbed.server_stack.connections()[0]
        assert server_conn.close_reason == "stalled"
        # The client received everything before the lost packet and
        # nothing after it — the file retrieval "comes to an end" (§IV-C).
        assert 0 < outcome.bytes_received < FILE_SIZE

    def test_single_corruption_stalls_connection(self):
        testbed, outcome, _state = run_with_event("naive",
                                                  corrupt_instead=True)
        assert not outcome.completed

    def test_retransmissions_are_self_encoded(self):
        """The smoking gun of §IV-B: after the loss, retransmitted
        copies of the segment leave the encoder a few bytes long —
        encoded against (a previous copy of) themselves."""
        testbed, outcome, state = run_with_event("naive")
        # Among packets that crossed the bottleneck after the drop, the
        # repeated tiny ones are the self-encoded retransmissions.
        tiny = [size for size in state["sizes_after_event"] if size < 60]
        assert len(tiny) >= 3
        # The decoder kept dropping them as undecodable.
        assert testbed.gateways.decoder.stats.dropped_total >= 3


@pytest.mark.parametrize("policy,kwargs", [
    ("cache_flush", {}),
    ("tcp_seq", {}),
    ("k_distance", {"k": 8}),
])
class TestRobustPoliciesSurvive:
    def test_single_loss_recovered(self, policy, kwargs):
        testbed, outcome, _state = run_with_event(policy, kwargs)
        assert outcome.completed
        assert outcome.content_ok is True

    def test_single_corruption_recovered(self, policy, kwargs):
        testbed, outcome, _state = run_with_event(policy, kwargs,
                                                  corrupt_instead=True)
        assert outcome.completed
        assert outcome.content_ok is True


class TestReordering:
    def test_reordered_packet_survivable_with_robust_policy(self):
        config = ExperimentConfig(
            corpus="file1", file_size=FILE_SIZE, corpus_seed=3,
            policy="cache_flush", reorder_rate=0.2, seed=4,
            time_limit=200.0, verify_content=True)
        from repro.experiments.runner import run_transfer

        result = run_transfer(config)
        assert result.completed
        assert result.outcome.content_ok is True
