"""Tests for the architecture lint engine (``repro lint``).

Each rule family is exercised against a small synthetic tree written
into ``tmp_path`` (so fixtures are real files the engine collects and
parses, exactly like a run over the repo), plus pragma parsing, the
baseline ratchet, schema validation — and a self-lint asserting the
shipped tree stays clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (FAMILIES, LINT_SCHEMA, LintConfig, run_lint,
                            select_rules, validate_lint_report,
                            write_baseline)
from repro.analysis.baseline import BASELINE_SCHEMA, apply_baseline
from repro.analysis.engine import format_text, module_name_for, rewrite_baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import parse_pragmas

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under a src/ package root."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for package_dir in sorted({p.parent for p in tmp_path.rglob("*.py")}):
        init = package_dir / "__init__.py"
        if package_dir != tmp_path / "src" and not init.exists():
            init.write_text("", encoding="utf-8")
    return tmp_path


def lint(tmp_path, **kwargs):
    return run_lint(tmp_path, **kwargs)


def rules_of(report):
    return {finding.rule for finding in report.findings if finding.active}


class TestLayering:
    def test_upward_import_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/codec.py": "from repro.net.packet import x\n",
            "src/repro/net/packet.py": "x = 1\n",
        })
        report = lint(tmp_path)
        assert "layering-import" in rules_of(report)
        assert report.exit_code == 1

    def test_downward_import_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/packet.py": "from repro.core.codec import y\n",
            "src/repro/core/codec.py": "y = 1\n",
        })
        assert "layering-import" not in rules_of(lint(tmp_path))

    def test_type_checking_import_exempt(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/codec.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.net.packet import x\n"),
            "src/repro/net/packet.py": "x = 1\n",
        })
        assert "layering-import" not in rules_of(lint(tmp_path))

    def test_relative_import_resolved(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/codec.py": "from ..net import packet\n",
            "src/repro/net/packet.py": "x = 1\n",
        })
        assert "layering-import" in rules_of(lint(tmp_path))

    def test_unassigned_layer_reported(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/mystery/thing.py": "x = 1\n",
        })
        report = lint(tmp_path)
        assert any(f.rule == "layering-import" and "no layer" in f.message
                   for f in report.findings)

    def test_benchmarks_outside_dag(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/packet.py": "x = 1\n",
            "benchmarks/bench_thing.py": "from repro.net.packet import x\n",
        })
        assert "layering-import" not in rules_of(lint(tmp_path))

    def test_module_name_for(self, tmp_path):
        config = LintConfig(root=tmp_path)
        assert module_name_for(
            tmp_path / "src/repro/core/cache.py", config) == "repro.core.cache"
        assert module_name_for(
            tmp_path / "src/repro/core/__init__.py", config) == "repro.core"
        assert module_name_for(
            tmp_path / "benchmarks/bench_hotpath.py", config) is None


class TestDeterminism:
    def test_global_random_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/faults.py": (
                "import random\n"
                "def roll():\n"
                "    return random.random()\n"),
        })
        assert "determinism-global-random" in rules_of(lint(tmp_path))

    def test_seeded_random_instance_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/faults.py": (
                "import random\n"
                "def roll(seed):\n"
                "    return random.Random(seed).random()\n"),
        })
        assert "determinism-global-random" not in rules_of(lint(tmp_path))

    def test_wallclock_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/engine.py": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"),
        })
        assert "determinism-wallclock" in rules_of(lint(tmp_path))

    def test_perf_counter_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/engine.py": (
                "from time import perf_counter\n"
                "def stamp():\n"
                "    return perf_counter()\n"),
        })
        assert "determinism-wallclock" not in rules_of(lint(tmp_path))

    def test_unseeded_numpy_flagged_and_default_rng_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/faults.py": (
                "import numpy as np\n"
                "def roll(seed):\n"
                "    good = np.random.default_rng(seed)\n"
                "    return np.random.rand() + good.random()\n"),
        })
        report = lint(tmp_path)
        flagged = [f for f in report.findings
                   if f.rule == "determinism-numpy-global" and f.active]
        assert len(flagged) == 1

    def test_exempt_module_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/sim/rng.py": (
                "import random\n"
                "def seed_all(seed):\n"
                "    random.seed(seed)\n"),
        })
        assert "determinism-global-random" not in rules_of(lint(tmp_path))


HOT_HEADER = "class ByteCachingEncoder:\n"


def hot_module(body):
    """A fake encoder module whose ``encode`` is a registered hot fn."""
    indented = "".join("        " + line + "\n" for line in body)
    return (HOT_HEADER
            + "    def encode(self, data):\n"
            + indented)


class TestHotpath:
    def write(self, tmp_path, body):
        make_tree(tmp_path, {
            "src/repro/core/encoder.py": hot_module(body),
        })
        return lint(tmp_path)

    def test_logging_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "import logging", "logging.info('x')", "return data"])
        assert "hotpath-logging" in rules_of(report)

    def test_unguarded_telemetry_call_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "self.profiler.note('x')", "return data"])
        assert "hotpath-telemetry-guard" in rules_of(report)

    def test_guarded_telemetry_call_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/encoder.py": (
                HOT_HEADER
                + "    def encode(self, data):\n"
                  "        profiler = self.profiler\n"
                  "        if profiler is not None:\n"
                  "            profiler.note('x')\n"
                  "        return data\n"),
        })
        report = lint(tmp_path)
        assert "hotpath-telemetry-guard" not in rules_of(report)
        assert report.exit_code == 0

    def test_comprehension_in_loop_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "out = []",
            "for b in data:",
            "    out.extend([v for v in (b,)])",
            "return out"])
        assert "hotpath-comprehension-in-loop" in rules_of(report)

    def test_comprehension_outside_loop_clean(self, tmp_path):
        report = self.write(tmp_path, [
            "return [v for v in data]"])
        assert "hotpath-comprehension-in-loop" not in rules_of(report)

    def test_fstring_flagged_once_but_exempt_in_raise(self, tmp_path):
        report = self.write(tmp_path, [
            "label = f'{data[0]:02x}'",
            "if not data:",
            "    raise ValueError(f'empty: {data!r}')",
            "return label"])
        flagged = [f for f in report.findings
                   if f.rule == "hotpath-format" and f.active]
        assert len(flagged) == 1  # the raise's f-string is exempt

    def test_telemetry_reread_in_loop_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "for b in data:",
            "    if self.profiler is not None:",
            "        self.profiler.count(b)",
            "return data"])
        assert "hotpath-telemetry-load" in rules_of(report)

    def test_span_creation_in_loop_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "spans = self.spans",
            "for b in data:",
            "    if spans is not None:",
            "        spans.begin_stage('probe', 'enc')",
            "return data"])
        assert "hotpath-span-in-loop" in rules_of(report)

    def test_span_creation_outside_loop_clean(self, tmp_path):
        report = self.write(tmp_path, [
            "spans = self.spans",
            "span = None",
            "if spans is not None:",
            "    span = spans.begin_stage('probe', 'enc')",
            "for b in data:",
            "    pass",
            "if spans is not None:",
            "    spans.end_stage(span)",
            "return data"])
        assert "hotpath-span-in-loop" not in rules_of(report)

    def test_unguarded_span_call_flagged(self, tmp_path):
        report = self.write(tmp_path, [
            "self.spans.packet_event('drop', 'enc', 1)",
            "return data"])
        assert "hotpath-telemetry-guard" in rules_of(report)

    def test_cold_function_unconstrained(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/encoder.py": (
                HOT_HEADER
                + "    def report(self, data):\n"
                  "        return f'{len(data)} bytes'\n"),
        })
        assert rules_of(lint(tmp_path)) == set()


class TestHygiene:
    def test_bare_except_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "def f():\n"
                "    try:\n"
                "        return 1\n"
                "    except:\n"
                "        return 2\n"),
        })
        assert "hygiene-bare-except" in rules_of(lint(tmp_path))

    def test_mutable_default_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": "def f(items=[]):\n    return items\n",
        })
        assert "hygiene-mutable-default" in rules_of(lint(tmp_path))

    def test_none_default_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "def f(items=None):\n"
                "    return items or []\n"),
        })
        assert "hygiene-mutable-default" not in rules_of(lint(tmp_path))

    def test_swallowed_violation_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "def f():\n"
                "    try:\n"
                "        return 1\n"
                "    except Exception:\n"
                "        pass\n"),
        })
        assert "hygiene-swallowed-violation" in rules_of(lint(tmp_path))

    def test_handled_violation_clean(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "def f(log):\n"
                "    try:\n"
                "        return 1\n"
                "    except Exception as error:\n"
                "        log(error)\n"
                "        raise\n"),
        })
        assert "hygiene-swallowed-violation" not in rules_of(lint(tmp_path))

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/broken.py": "def f(:\n",
            "src/repro/net/fine.py": "x = 1\n",
        })
        report = lint(tmp_path)
        assert "hygiene-parse-error" in rules_of(report)
        assert report.files_checked >= 1  # the rest of the tree still ran


class TestPragmas:
    def test_pragma_with_reason_suppresses(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  "
                "# lint: disable=determinism-wallclock(report metadata)\n"),
        })
        report = lint(tmp_path)
        assert report.exit_code == 0
        suppressed = [f for f in report.findings if f.suppressed]
        assert len(suppressed) == 1
        assert suppressed[0].suppress_reason == "report metadata"

    def test_family_prefix_matches(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  "
                "# lint: disable=determinism(edge-of-world code)\n"),
        })
        assert lint(tmp_path).exit_code == 0

    def test_reasonless_pragma_is_a_finding(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  "
                "# lint: disable=determinism-wallclock\n"),
        })
        report = lint(tmp_path)
        assert "pragma-missing-reason" in rules_of(report)
        # ...and the reasonless pragma did NOT suppress the finding.
        assert "determinism-wallclock" in rules_of(report)

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "import time\n"
                "def stamp():\n"
                "    # lint: disable=determinism-wallclock(banner time)\n"
                "    return time.time()\n"),
        })
        assert lint(tmp_path).exit_code == 0

    def test_pragma_text_in_docstring_inert(self):
        by_line, findings = parse_pragmas(
            '"""docs mention # lint: disable=rule(reason) here"""\n'
            "x = 1\n", "mod.py")
        assert by_line == {} and findings == []

    def test_wrong_rule_pragma_does_not_suppress(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  "
                "# lint: disable=hygiene-bare-except(wrong family)\n"),
        })
        assert "determinism-wallclock" in rules_of(lint(tmp_path))


class TestBaseline:
    def seeded(self, tmp_path):
        return make_tree(tmp_path, {
            "src/repro/net/stack.py": (
                "def f():\n"
                "    try:\n"
                "        return 1\n"
                "    except:\n"
                "        return 2\n"),
        })

    def test_baselined_finding_passes(self, tmp_path):
        root = self.seeded(tmp_path)
        report = lint(root)
        assert report.exit_code == 1
        baseline = root / "lint-baseline.json"
        write_baseline(baseline, report.findings)
        again = lint(root, baseline_path=baseline)
        assert again.exit_code == 0
        assert any(f.baselined for f in again.findings)

    def test_new_finding_still_fails(self, tmp_path):
        root = self.seeded(tmp_path)
        baseline = root / "lint-baseline.json"
        write_baseline(baseline, lint(root).findings)
        # Introduce a *new* violation: the ratchet must catch it.
        (root / "src/repro/net/stack.py").write_text(
            "import time\n"
            "def f(items=[]):\n"
            "    try:\n"
            "        return time.time()\n"
            "    except:\n"
            "        return 2\n", encoding="utf-8")
        report = lint(root, baseline_path=baseline)
        assert report.exit_code == 1
        active = rules_of(report)
        assert "determinism-wallclock" in active
        assert "hygiene-mutable-default" in active
        # The pre-existing bare except is still absorbed by the baseline.
        assert "hygiene-bare-except" not in active

    def test_fixed_finding_leaves_stale_entry(self, tmp_path):
        root = self.seeded(tmp_path)
        baseline = root / "lint-baseline.json"
        write_baseline(baseline, lint(root).findings)
        (root / "src/repro/net/stack.py").write_text(
            "def f():\n    return 1\n", encoding="utf-8")
        report = lint(root, baseline_path=baseline)
        assert report.exit_code == 0
        assert len(report.stale_baseline) == 1

    def test_write_baseline_prunes_stale(self, tmp_path):
        root = self.seeded(tmp_path)
        baseline = root / "lint-baseline.json"
        write_baseline(baseline, lint(root).findings)
        (root / "src/repro/net/stack.py").write_text(
            "def f():\n    return 1\n", encoding="utf-8")
        report = lint(root, baseline_path=baseline)
        rewrite_baseline(root, report, baseline_path=baseline)
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["entries"] == []

    def test_fingerprint_survives_line_moves(self):
        a = Finding(rule="r-x", path="p.py", line=3, message="m")
        b = Finding(rule="r-x", path="p.py", line=99, message="m")
        assert a.fingerprint() == b.fingerprint()

    def test_count_budget(self):
        findings = [Finding(rule="r-x", path="p.py", line=i, message="m")
                    for i in (1, 2, 3)]
        entries = [{"rule": "r-x", "path": "p.py", "scope": "",
                    "message": "m",
                    "fingerprint": findings[0].fingerprint(), "count": 2}]
        marked, stale = apply_baseline(findings, entries)
        assert sum(1 for f in marked if f.baselined) == 2
        assert sum(1 for f in marked if f.active) == 1
        assert stale == []


class TestReportAndSelection:
    def test_schema_validates(self, tmp_path):
        make_tree(tmp_path, {"src/repro/core/codec.py": "x = 1\n"})
        payload = lint(tmp_path).to_dict()
        assert payload["schema"] == LINT_SCHEMA
        validate_lint_report(payload)

    def test_validate_rejects_bad_document(self):
        with pytest.raises(ValueError):
            validate_lint_report({"schema": "something-else"})
        with pytest.raises(ValueError):
            validate_lint_report({"schema": LINT_SCHEMA, "counts": {},
                                  "findings": "not-a-list",
                                  "rules_run": []})

    def test_family_selection(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": "def f(items=[]):\n    return items\n",
        })
        report = lint(tmp_path, select=["determinism"])
        assert report.exit_code == 0  # hygiene rules were not run
        assert all(r.startswith("determinism") for r in report.rules_run)

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError):
            select_rules(["no-such-rule"])

    def test_families_constant_covers_rules(self):
        for rule_obj in select_rules(None):
            assert rule_obj.name.split("-")[0] in FAMILIES

    def test_format_text_mentions_findings(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/net/stack.py": "def f(items=[]):\n    return items\n",
        })
        text = format_text(lint(tmp_path))
        assert "hygiene-mutable-default" in text
        assert "src/repro/net/stack.py:1" in text


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        report = run_lint(REPO_ROOT)
        active = [f for f in report.findings if f.active]
        assert active == [], format_text(report)
        assert report.exit_code == 0

    def test_shipped_baseline_is_empty(self):
        payload = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8"))
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["entries"] == []


class TestConfigParsing:
    def test_fallback_toml_parser_matches_tomllib(self):
        """The py3.10 fallback must agree with tomllib on our pyproject."""
        tomllib = pytest.importorskip("tomllib")
        from repro.analysis.config import _parse_repro_lint_subset

        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        reference = tomllib.loads(text)["tool"]["repro-lint"]
        fallback = _parse_repro_lint_subset(text)["tool"]["repro-lint"]
        assert fallback == reference

    def test_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            'roots = ["lib"]\n'
            'package = "mypkg"\n'
            '[tool.repro-lint.layers]\n'
            'order = ["a", "b"]  # comment\n'
            '[tool.repro-lint.layers.assign]\n'
            '"mypkg.odd" = "b"\n', encoding="utf-8")
        from repro.analysis import load_config

        config = load_config(tmp_path)
        assert config.roots == ["lib"]
        assert config.layer_order == ["a", "b"]
        assert config.layer_of("mypkg.odd.sub") == "b"
        assert config.layer_of("mypkg.a.sub") == "a"

    def test_root_package_assign_covers_only_the_root(self):
        config = LintConfig()
        assert config.layer_of("repro") == "cli"
        assert config.layer_of("repro.core.cache") == "core"
        assert config.layer_of("repro.verify.oracles") == "oracles"
        assert config.layer_of("repro.verify.fuzz") == "verify"
