"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.policies import (DecoderPolicy, NaivePolicy, PacketMeta,
                                 make_policy_pair)
from repro.core.region import common_prefix_length, common_suffix_length
from repro.core.wire import encode_payload, parse_payload, wrap_raw
from repro.net.checksum import payload_checksum
from repro.net.tcp.sack import RangeSet
from repro.net.tcp.timer import RtoEstimator

FLOW = ("s", 80, "c", 5000)


# ---------------------------------------------------------------------------
# RangeSet behaves like a set of integers
# ---------------------------------------------------------------------------

range_lists = st.lists(
    st.tuples(st.integers(0, 400), st.integers(1, 60)).map(
        lambda t: (t[0], t[0] + t[1])),
    max_size=12)


@given(range_lists)
def test_rangeset_matches_model_set(ranges):
    rangeset = RangeSet()
    model = set()
    for start, end in ranges:
        rangeset.add(start, end)
        model.update(range(start, end))
    # Point membership agrees everywhere.
    for value in range(0, 480):
        assert rangeset.contains_point(value) == (value in model)
    # Ranges are disjoint, sorted, non-adjacent.
    spans = list(rangeset)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2
    # Coverage agrees with the model.
    assert rangeset.coverage(0, 480) == len(model)


@given(range_lists, st.integers(0, 460))
def test_rangeset_remove_below_matches_model(ranges, bound):
    rangeset = RangeSet()
    model = set()
    for start, end in ranges:
        rangeset.add(start, end)
        model.update(range(start, end))
    rangeset.remove_below(bound)
    model = {value for value in model if value >= bound}
    assert rangeset.coverage(0, 500) == len(model)


@given(range_lists)
def test_rangeset_gaps_partition(ranges):
    rangeset = RangeSet()
    for start, end in ranges:
        rangeset.add(start, end)
    lo, hi = 0, 480
    covered = rangeset.coverage(lo, hi)
    gap_total = sum(end - start for start, end in rangeset.gaps(lo, hi))
    assert covered + gap_total == hi - lo


# ---------------------------------------------------------------------------
# Wire format roundtrips
# ---------------------------------------------------------------------------

@given(st.binary(max_size=2000))
def test_wrap_raw_roundtrip(payload):
    assert parse_payload(wrap_raw(payload)) == payload


@given(st.binary(min_size=200, max_size=1500), st.data())
def test_encode_payload_roundtrip_with_random_regions(stored, data):
    """Any set of sorted, disjoint regions into a stored payload must
    roundtrip exactly."""
    regions = []
    cursor = 0
    payload = bytearray()
    from repro.core.region import Region

    n_regions = data.draw(st.integers(0, 3))
    for index in range(n_regions):
        gap = data.draw(st.integers(0, 40))
        payload += bytes(data.draw(st.binary(min_size=gap, max_size=gap)))
        length = data.draw(st.integers(16, min(120, len(stored))))
        offset_stored = data.draw(st.integers(0, len(stored) - length))
        regions.append(Region(fingerprint=index + 1,
                              offset_new=len(payload),
                              offset_stored=offset_stored,
                              length=length))
        payload += stored[offset_stored: offset_stored + length]
    payload += bytes(data.draw(st.integers(0, 30)))

    wire = encode_payload(bytes(payload), regions)
    parsed = parse_payload(wire)
    if regions:
        rebuilt = __import__("repro.core.wire", fromlist=["reconstruct"]) \
            .reconstruct(parsed, lambda fp: stored)
        assert rebuilt == bytes(payload)
    else:
        assert parsed == bytes(payload)


# ---------------------------------------------------------------------------
# Encoder/decoder: decode(encode(x)) == x over arbitrary streams
# ---------------------------------------------------------------------------

def _stream_roundtrip(policy_name, payloads):
    scheme = FingerprintScheme()
    enc_policy, dec_policy = make_policy_pair(
        policy_name, **({"k": 4} if policy_name == "k_distance" else {}))
    encoder = ByteCachingEncoder(scheme, ByteCache(), enc_policy)
    decoder = ByteCachingDecoder(scheme, ByteCache(), dec_policy)
    for index, payload in enumerate(payloads):
        meta = PacketMeta(packet_id=index, flow=FLOW, tcp_seq=index * 1460,
                          counter=index)
        result = encoder.encode(payload, meta)
        decoded = decoder.decode(result.data, meta,
                                 checksum=payload_checksum(payload))
        assert decoded.ok, (policy_name, index, decoded.status)
        assert decoded.payload == payload


payload_streams = st.lists(st.binary(min_size=0, max_size=1460),
                           min_size=1, max_size=8)


@settings(max_examples=25, deadline=None)
@given(payload_streams)
def test_lossless_roundtrip_naive(payloads):
    _stream_roundtrip("naive", payloads)


@settings(max_examples=25, deadline=None)
@given(payload_streams)
def test_lossless_roundtrip_cache_flush(payloads):
    _stream_roundtrip("cache_flush", payloads)


@settings(max_examples=25, deadline=None)
@given(payload_streams)
def test_lossless_roundtrip_tcp_seq(payloads):
    _stream_roundtrip("tcp_seq", payloads)


@settings(max_examples=25, deadline=None)
@given(payload_streams)
def test_lossless_roundtrip_k_distance(payloads):
    _stream_roundtrip("k_distance", payloads)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_redundant_stream_roundtrip(data):
    """Streams stitched from a shared chunk pool (worst case for region
    bookkeeping: many overlapping matches) must roundtrip exactly."""
    rng = random.Random(data.draw(st.integers(0, 2 ** 16)))
    pool = [rng.randbytes(rng.randrange(30, 300)) for _ in range(5)]
    payloads = []
    for _ in range(data.draw(st.integers(2, 8))):
        parts = []
        for _ in range(rng.randrange(1, 5)):
            if rng.random() < 0.6:
                parts.append(pool[rng.randrange(len(pool))])
            else:
                parts.append(rng.randbytes(rng.randrange(0, 120)))
        payloads.append(b"".join(parts)[:1460])
    _stream_roundtrip("naive", payloads)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_decoder_never_accepts_wrong_bytes(data):
    """Whatever the decoder outputs (under arbitrary single-packet
    loss) either matches the original payload or is dropped — never
    silently corrupted."""
    rng = random.Random(data.draw(st.integers(0, 2 ** 16)))
    scheme = FingerprintScheme()
    encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
    decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())
    pool = [rng.randbytes(200) for _ in range(4)]
    for index in range(10):
        payload = (pool[rng.randrange(4)] + rng.randbytes(rng.randrange(100))
                   + pool[rng.randrange(4)])
        meta = PacketMeta(packet_id=index, flow=FLOW, tcp_seq=index * 1460,
                          counter=index)
        result = encoder.encode(payload, meta)
        if rng.random() < 0.4:
            continue  # the packet is lost: decoder never sees it
        decoded = decoder.decode(result.data, meta,
                                 checksum=payload_checksum(payload))
        if decoded.ok:
            assert decoded.payload == payload


# ---------------------------------------------------------------------------
# Policy safety invariants, machine-checked by the verify oracles
# ---------------------------------------------------------------------------
#
# The §V policies' emission-time safety properties are re-checked
# independently by repro.verify.oracles; these properties drive random
# transmission schedules — in-order segments, retransmissions, losses —
# through harness-attached cores and assert the oracles stay silent for
# the robust policies and trip for the naive one.

def _armed_pair(policy_name, **kwargs):
    from repro.verify import VerificationHarness

    scheme = FingerprintScheme()
    enc_policy, dec_policy = make_policy_pair(policy_name, **kwargs)
    encoder = ByteCachingEncoder(scheme, ByteCache(), enc_policy)
    decoder = ByteCachingDecoder(scheme, ByteCache(), dec_policy)
    VerificationHarness().attach_cores(encoder, decoder)
    return encoder, decoder


def _retransmission_schedule(policy_name, data, **kwargs):
    """Random schedule with retransmissions and losses: the robust
    policies must never trip an oracle, and every accepted decode must
    be byte-exact."""
    from repro.sim.rng import RngRegistry

    rng = RngRegistry(data.draw(st.integers(0, 2 ** 16))).stream(
        f"properties.{policy_name}")
    encoder, decoder = _armed_pair(policy_name, **kwargs)
    pool = [rng.randbytes(rng.randrange(100, 400)) for _ in range(4)]
    segments = []
    for index in range(data.draw(st.integers(2, 8))):
        parts = [pool[rng.randrange(len(pool))]
                 for _ in range(rng.randrange(1, 4))]
        segments.append(b"".join(parts)[:1460])

    # In-order pass, then random retransmissions of earlier segments.
    order = list(range(len(segments)))
    for _ in range(data.draw(st.integers(0, 4))):
        order.append(rng.randrange(len(segments)))

    for counter, index in enumerate(order):
        payload = segments[index]
        meta = PacketMeta(packet_id=counter, flow=FLOW,
                          tcp_seq=index * 1460, counter=counter)
        result = encoder.encode(payload, meta)      # oracles judge here
        if rng.random() < 0.3:
            continue                                 # carrier lost
        decoded = decoder.decode(result.data, meta,
                                 checksum=payload_checksum(payload))
        if decoded.ok:
            assert decoded.payload == payload


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_cache_flush_safety_oracle_silent(data):
    _retransmission_schedule("cache_flush", data)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_tcp_seq_safety_oracle_silent(data):
    _retransmission_schedule("tcp_seq", data)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_k_distance_safety_oracle_silent(data):
    _retransmission_schedule("k_distance", data, k=4)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2 ** 16))
def test_naive_retransmission_trips_circular_dependency_oracle(seed):
    """The §IV failure, as a property: any cached payload retransmitted
    under the naive policy is encoded against itself, and the oracle
    catches it at emission time."""
    import pytest

    from repro.sim.rng import RngRegistry
    from repro.verify import InvariantViolation

    payload = RngRegistry(seed).stream("properties.naive").randbytes(1460)
    encoder, _decoder = _armed_pair("naive")
    first = encoder.encode(payload, PacketMeta(packet_id=0, flow=FLOW,
                                               tcp_seq=0, counter=0))
    retransmission = PacketMeta(packet_id=1, flow=FLOW, tcp_seq=0, counter=1)
    if not first.cached or not list(encoder.scheme.anchors(payload)):
        return  # nothing in the cache to self-reference
    with pytest.raises(InvariantViolation) as excinfo:
        encoder.encode(payload, retransmission)
    assert excinfo.value.oracle == "circular_dependency"


# ---------------------------------------------------------------------------
# Misc invariants
# ---------------------------------------------------------------------------

@given(st.binary(min_size=1, max_size=300), st.binary(min_size=1, max_size=300))
def test_common_runs_are_consistent(a, b):
    limit = min(len(a), len(b))
    prefix = common_prefix_length(a, 0, b, 0, limit)
    assert a[:prefix] == b[:prefix]
    assert prefix == limit or a[prefix] != b[prefix]
    suffix = common_suffix_length(a, len(a), b, len(b), limit)
    assert suffix == 0 or a[len(a) - suffix:] == b[len(b) - suffix:]


@given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=50))
def test_rto_always_within_clamps(samples):
    estimator = RtoEstimator(min_rto=0.2, max_rto=8.0)
    for sample in samples:
        estimator.sample(sample)
        assert 0.2 <= estimator.rto <= 8.0


@given(st.binary(min_size=16, max_size=600))
def test_anchor_offsets_in_bounds(data):
    scheme = FingerprintScheme()
    for offset, fingerprint in scheme.anchors(data):
        assert 0 <= offset <= len(data) - scheme.window
        assert fingerprint & scheme.mask == 0
