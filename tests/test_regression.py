"""Bench regression sentinel: config parsing, statistics, verdicts,
and the ``repro bench diff`` CLI face.

The sentinel's contract is asymmetric: noisy history must NOT fire it
(the CI has to clear the threshold entirely), while a consistent
slowdown MUST exit non-zero.  Both directions are pinned here so CI's
bench-sentinel job can trust the tool it is built on.
"""

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.metrics.regression import (
    BENCH_DIFF_SCHEMA,
    BenchSpec,
    SentinelConfig,
    _parse_bench_subset,
    bench_diff_report,
    bootstrap_ci,
    diff_bench,
    format_bench_diff,
    load_bench_config,
    run_bench_diff,
)

REPO = Path(__file__).resolve().parent.parent

PYPROJECT = """
[tool.other-tool]
window = 99

[tool.repro-bench]
window = 4            # comment after a value
min-history = 2
bootstrap = 64
confidence = 0.9
seed = 7

[tool.repro-bench.benches.alpha]
file = "BENCH_alpha.json"
metric = "seconds"
direction = "lower"
threshold = 1.10

[tool.repro-bench.benches.beta]
file = "BENCH_beta.json"
metric = "throughput"
direction = "higher"
"""


def bench_doc(current, history):
    """A minimal BENCH record: flat history entries, like
    append_bench_history writes them."""
    return {"schema": "bench_x/v1",
            "summary": {"seconds": current},
            "history": [{"name": "x", "seconds": h} for h in history]}


class TestConfig:
    def test_load_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(PYPROJECT)
        config = load_bench_config(tmp_path)
        assert (config.window, config.min_history) == (4, 2)
        assert (config.bootstrap, config.confidence, config.seed) == \
            (64, 0.9, 7)
        assert [b.name for b in config.benches] == ["alpha", "beta"]
        alpha, beta = config.benches
        assert (alpha.file, alpha.metric, alpha.direction) == \
            ("BENCH_alpha.json", "seconds", "lower")
        assert alpha.threshold == pytest.approx(1.10)
        assert (beta.direction, beta.threshold) == ("higher", 1.15)

    def test_missing_pyproject_yields_defaults(self, tmp_path):
        config = load_bench_config(tmp_path / "nowhere")
        assert config.window == 5 and config.benches == []

    def test_subset_parser_matches_tomllib(self):
        """The 3.10 fallback must agree with tomllib on our tables."""
        table = _parse_bench_subset(PYPROJECT)
        assert table["window"] == 4
        assert table["confidence"] == pytest.approx(0.9)
        assert table["benches"]["alpha"]["file"] == "BENCH_alpha.json"
        assert table["benches"]["beta"]["metric"] == "throughput"
        # Foreign tables are ignored entirely.
        assert "other-tool" not in table and 99 not in table.values()

    def test_repo_pyproject_parses(self):
        """The committed config names real BENCH files and metrics."""
        config = load_bench_config(REPO)
        names = {b.name for b in config.benches}
        assert {"hotpath", "multiflow"} <= names
        for bench in config.benches:
            assert bench.threshold > 1.0
            assert bench.direction in ("lower", "higher")


class TestStatistics:
    def test_bootstrap_ci_deterministic_and_ordered(self):
        ratios = [1.0, 1.1, 0.9, 1.2, 1.05]
        a = bootstrap_ci(ratios, 200, 0.95, random.Random(3))
        b = bootstrap_ci(ratios, 200, 0.95, random.Random(3))
        assert a == b
        assert a[0] <= a[1]
        assert min(ratios) <= a[0] and a[1] <= max(ratios)

    def test_constant_ratios_collapse_the_ci(self):
        low, high = bootstrap_ci([1.25] * 5, 100, 0.95, random.Random(1))
        assert low == high == pytest.approx(1.25)


class TestDiffBench:
    SPEC = BenchSpec(name="x", file="BENCH_x.json", metric="seconds",
                     direction="lower", threshold=1.20)
    CONFIG = SentinelConfig(window=5, min_history=3, bootstrap=200)

    def diff(self, doc, spec=None):
        return diff_bench(spec or self.SPEC, doc, self.CONFIG,
                          random.Random(self.CONFIG.seed))

    def test_ok_when_flat(self):
        d = self.diff(bench_doc(1.0, [1.0, 1.01, 0.99, 1.0]))
        assert d.status == "ok"
        assert d.median_ratio == pytest.approx(1.0, abs=0.02)
        assert d.baseline_n == 4

    def test_regression_when_consistently_slower(self):
        d = self.diff(bench_doc(1.3, [1.0, 1.0, 1.0, 1.0]))
        assert d.status == "regression"
        assert d.ci_low > self.SPEC.threshold

    def test_single_noisy_history_record_does_not_fire(self):
        """One garbage 0.1s record would make ratios [13, 1.3...]; the
        median and CI must stay driven by the sane majority."""
        d = self.diff(bench_doc(1.1, [0.1, 1.1, 1.1, 1.1, 1.1]))
        assert d.status == "ok"

    def test_higher_is_better_flips_the_ratio(self):
        spec = BenchSpec(name="x", file="f", metric="seconds",
                         direction="higher", threshold=1.20)
        d = self.diff(bench_doc(0.7, [1.0, 1.0, 1.0]), spec=spec)
        assert d.status == "regression"  # throughput fell 30%

    def test_insufficient_history(self):
        d = self.diff(bench_doc(1.0, [1.0, 1.0]))
        assert d.status == "insufficient-history"
        assert d.baseline_n == 2 and d.median_ratio is None

    def test_window_limits_the_baseline(self):
        # Ancient fast records outside the window must not count.
        doc = bench_doc(1.0, [0.5, 0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0])
        d = self.diff(doc)
        assert d.status == "ok" and d.baseline_n == 5

    def test_missing_metric(self):
        d = self.diff({"summary": {"other": 1.0}, "history": []})
        assert d.status == "missing"

    def test_nonpositive_history_entries_skipped(self):
        d = self.diff(bench_doc(1.0, [0.0, -1.0, 1.0, 1.0]))
        assert d.status == "insufficient-history" and d.baseline_n == 2


class TestRunBenchDiff:
    def project(self, tmp_path, current=1.0, history=(1.0, 1.0, 1.0)):
        (tmp_path / "pyproject.toml").write_text(PYPROJECT)
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps(bench_doc(current, list(history))))
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path):
        root = self.project(tmp_path)
        diffs, code = run_bench_diff(root)
        assert code == 0
        by_name = {d.name: d.status for d in diffs}
        assert by_name["alpha"] == "ok"
        assert by_name["beta"] == "missing"  # absent file is not a failure

    def test_injected_regression_exits_nonzero(self, tmp_path):
        root = self.project(tmp_path, current=1.25)
        diffs, code = run_bench_diff(root)
        assert code == 1
        assert {d.status for d in diffs} == {"regression", "missing"}

    def test_window_override(self, tmp_path):
        root = self.project(tmp_path, history=(1.0,) * 10)
        diffs, _ = run_bench_diff(root, window=3)
        assert next(d for d in diffs if d.name == "alpha").baseline_n == 3

    def test_report_and_table(self, tmp_path):
        root = self.project(tmp_path, current=1.25)
        diffs, _ = run_bench_diff(root)
        report = bench_diff_report(diffs)
        assert report["schema"] == BENCH_DIFF_SCHEMA
        assert report["summary"]["regressions"] == 1
        assert len(report["diffs"]) == len(diffs)
        text = "\n".join(format_bench_diff(diffs))
        assert "regression" in text and "alpha" in text

    def test_committed_history_passes(self):
        """The repo's own BENCH records must never trip the sentinel."""
        _diffs, code = run_bench_diff(REPO)
        assert code == 0


class TestCli:
    def run_cli(self, *argv, cwd):
        env_src = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench", "diff", *argv],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"})

    def test_cli_clean_and_doctored(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(PYPROJECT)
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps(bench_doc(1.0, [1.0, 1.0, 1.0])))
        out = tmp_path / "bench-diff.json"
        clean = self.run_cli("--out", str(out), cwd=tmp_path)
        assert clean.returncode == 0, clean.stderr
        assert "no significant regressions" in clean.stdout
        assert json.loads(out.read_text())["schema"] == BENCH_DIFF_SCHEMA

        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps(bench_doc(1.3, [1.0, 1.0, 1.0])))
        doctored = self.run_cli(cwd=tmp_path)
        assert doctored.returncode == 1
        assert "REGRESSION" in doctored.stdout
