"""Unit tests for the whole-program project model (call graph etc.).

The model is the substrate the interprocedural rule families walk, so
these tests pin its resolution semantics: direct calls, ``self.``
method resolution through declared bases, attribute- and local-typed
receivers, relative imports, opaque duck-typed sinks, effect records
(global mutations, tries) and the BFS reachability helpers.
"""

from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.engine import collect_files, parse_file
from repro.analysis.project import MODULE_SCOPE, ProjectModel


def build(tmp_path, files):
    """Write ``{relpath: source}`` and build the project model."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for package_dir in sorted({p.parent for p in tmp_path.rglob("*.py")}):
        init = package_dir / "__init__.py"
        if package_dir != tmp_path / "src" and not init.exists():
            init.write_text("", encoding="utf-8")
    config = LintConfig(root=Path(tmp_path))
    parsed = [parse_file(path, config) for path in collect_files(config)]
    return ProjectModel(parsed, config)


class TestSymbols:
    def test_functions_classes_and_methods(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/codec.py": (
                "class Codec:\n"
                "    def encode(self, data):\n"
                "        return data\n"
                "def helper():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
            ),
        })
        functions = project.functions
        assert "repro.core.codec.Codec.encode" in functions
        assert "repro.core.codec.helper" in functions
        assert functions["repro.core.codec.helper.inner"].is_nested
        assert not functions["repro.core.codec.helper"].is_nested
        encode = functions["repro.core.codec.Codec.encode"]
        assert encode.class_id == "repro.core.codec.Codec"
        assert encode.params == ["self", "data"]
        codec = project.classes["repro.core.codec.Codec"]
        assert codec.methods["encode"] == "repro.core.codec.Codec.encode"

    def test_module_globals_recorded(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/state.py": "CACHE = {}\nLIMIT = 3\n",
        })
        assert project.module_globals["repro.core.state"] == \
            {"CACHE", "LIMIT"}


class TestCallResolution:
    def test_direct_and_imported_calls(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/a.py": (
                "from repro.core.b import helper\n"
                "def caller():\n"
                "    return helper() + local()\n"
                "def local():\n"
                "    return 1\n"
            ),
            "src/repro/core/b.py": "def helper():\n    return 2\n",
        })
        callees = {site.callee
                   for site in project.calls["repro.core.a.caller"]}
        assert "repro.core.b.helper" in callees
        assert "repro.core.a.local" in callees

    def test_relative_import_resolves(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/a.py": (
                "from .b import helper\n"
                "def caller():\n"
                "    return helper()\n"
            ),
            "src/repro/core/b.py": "def helper():\n    return 2\n",
        })
        callees = {site.callee
                   for site in project.calls["repro.core.a.caller"]}
        assert "repro.core.b.helper" in callees

    def test_self_method_through_base_class(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/c.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        return 0\n"
                "class Derived(Base):\n"
                "    def run(self):\n"
                "        return self.shared()\n"
            ),
        })
        callees = {site.callee
                   for site in project.calls["repro.core.c.Derived.run"]}
        assert "repro.core.c.Base.shared" in callees

    def test_declared_attribute_type_resolves(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/d.py": (
                "class Cache:\n"
                "    def insert(self, item):\n"
                "        return item\n"
                "class Gateway:\n"
                "    def __init__(self):\n"
                "        self.cache = Cache()\n"
                "    def process(self, item):\n"
                "        return self.cache.insert(item)\n"
            ),
        })
        gateway = project.classes["repro.core.d.Gateway"]
        assert gateway.attr_types["cache"] == "repro.core.d.Cache"
        callees = {site.callee
                   for site in project.calls["repro.core.d.Gateway.process"]}
        assert "repro.core.d.Cache.insert" in callees

    def test_annotated_local_resolves(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/e.py": (
                "class Codec:\n"
                "    def encode(self, data):\n"
                "        return data\n"
                "def run(codec: Codec, data):\n"
                "    return codec.encode(data)\n"
            ),
        })
        callees = {site.callee
                   for site in project.calls["repro.core.e.run"]}
        assert "repro.core.e.Codec.encode" in callees

    def test_duck_typed_receiver_stays_opaque(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/f.py": (
                "def run(anything):\n"
                "    return anything.do_it()\n"
            ),
        })
        sites = project.calls["repro.core.f.run"]
        assert len(sites) == 1
        assert sites[0].callee is None and sites[0].external is None

    def test_external_call_keeps_dotted_name(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/g.py": (
                "import json\n"
                "def dump(payload, handle):\n"
                "    json.dump(payload, handle)\n"
            ),
        })
        externals = {site.external
                     for site in project.calls["repro.core.g.dump"]}
        assert "json.dump" in externals

    def test_module_level_calls_recorded(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/h.py": (
                "def setup():\n"
                "    return 1\n"
                "VALUE = setup()\n"
            ),
        })
        owner = f"repro.core.h.{MODULE_SCOPE}"
        callees = {site.callee for site in project.calls[owner]}
        assert "repro.core.h.setup" in callees


class TestEffects:
    def test_global_mutations_recorded(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/state.py": (
                "CACHE = {}\n"
                "COUNT = 0\n"
                "def store(key, value):\n"
                "    CACHE[key] = value\n"
                "def bump():\n"
                "    global COUNT\n"
                "    COUNT += 1\n"
                "def local_only():\n"
                "    CACHE = {}\n"
                "    CACHE['x'] = 1\n"
            ),
        })
        stored = project.mutations["repro.core.state.store"]
        assert any(m.name == "CACHE" for m in stored)
        bumped = project.mutations["repro.core.state.bump"]
        assert any(m.name == "COUNT" for m in bumped)
        # A local shadowing the global name is not a global mutation.
        assert "repro.core.state.local_only" not in project.mutations

    def test_mutating_method_call_recorded(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/state2.py": (
                "ITEMS = []\n"
                "def push(item):\n"
                "    ITEMS.append(item)\n"
            ),
        })
        mutations = project.mutations["repro.core.state2.push"]
        assert any(m.name == "ITEMS" for m in mutations)


class TestReachability:
    def test_bfs_and_chain(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/chain.py": (
                "def a():\n"
                "    return b()\n"
                "def b():\n"
                "    return c()\n"
                "def c():\n"
                "    return 1\n"
            ),
        })
        parents = project.reachable_from("repro.core.chain.a")
        assert "repro.core.chain.c" in parents
        chain = project.chain_to(parents, "repro.core.chain.c")
        assert [site.callee for site in chain] == [
            "repro.core.chain.b", "repro.core.chain.c"]

    def test_cycle_terminates(self, tmp_path):
        project = build(tmp_path, {
            "src/repro/core/cycle.py": (
                "def ping():\n"
                "    return pong()\n"
                "def pong():\n"
                "    return ping()\n"
            ),
        })
        parents = project.reachable_from("repro.core.cycle.ping")
        assert "repro.core.cycle.pong" in parents


class TestRepoModel:
    def test_builds_on_shipped_tree(self):
        root = Path(__file__).resolve().parent.parent
        from repro.analysis.graphexport import build_project
        project = build_project(root)
        # Spot-check a known hot-path edge: the encoder calls into the
        # cache it owns.
        encoder = "repro.core.encoder.ByteCachingEncoder"
        assert f"{encoder}.encode" in project.functions
        assert project.functions[f"{encoder}.encode"].class_id == encoder
        assert len(project.functions) > 500
        assert len(project.classes) > 100
