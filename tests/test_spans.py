"""Tests for causal span tracing (repro.metrics.spans) and the flame
builder (repro.metrics.flame)."""

import json
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_transfer
from repro.metrics.collectors import TransferResult
from repro.metrics.flame import build_flame, format_flame, to_folded
from repro.metrics.spans import (SPANS_SCHEMA, SpanRecorder,
                                 find_livelock_trace, format_chain,
                                 spans_by_trace, spans_if, spans_rollup,
                                 validate_spans)


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestSpanRecorderScopes:
    def test_begin_end_nest_under_context_stack(self):
        rec = SpanRecorder()
        outer = rec.begin("outer", "a")
        inner = rec.begin("inner", "a")
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        rec.end(inner)
        rec.end(outer)
        assert rec.current_ids() == (None, None)

    def test_begin_stage_noops_without_context(self):
        """Codec cores driven directly (benchmarks) record nothing."""
        rec = SpanRecorder()
        assert rec.begin_stage("table_probe", "enc") is None
        rec.end_stage(None)  # must be None-safe
        assert rec.spans == []

    def test_stage_attaches_to_active_packet(self):
        rec = SpanRecorder()
        pkt = rec.packet_begin("encode", "gw", packet_id=1)
        stage = rec.begin_stage("table_probe", "enc")
        assert stage.trace_id == pkt.trace_id
        assert stage.parent_id == pkt.span_id
        rec.end_stage(stage)
        rec.packet_end(pkt, encoded=True)
        assert pkt.tags["encoded"] is True

    def test_sim_clock_stamps_start_end(self):
        sim = FakeSim()
        rec = SpanRecorder(sim=sim)
        span = rec.begin("s", "a")
        sim.now = 2.5
        rec.end(span)
        assert span.start == 0.0 and span.end == 2.5

    def test_event_is_zero_duration(self):
        rec = SpanRecorder()
        span = rec.event("watchdog_trip", "dec", window=16)
        assert span.end == span.start
        assert span.tags["window"] == 16

    def test_open_span_survives_across_events(self):
        rec = SpanRecorder()
        resync = rec.open("resync", "dec", resync_id=3)
        child = rec.child_event(resync, "resync_retry", "dec", attempt=1)
        assert child.parent_id == resync.span_id
        rec.end(resync, outcome="completed")
        assert resync.tags["outcome"] == "completed"


class TestTracePropagation:
    def test_trace_crosses_gateway_link_gateway(self):
        """encode -> link_transit -> decode share one trace id."""
        rec = SpanRecorder()
        enc = rec.packet_begin("encode", "enc-gw", packet_id=7,
                               flow=("a", 1, "b", 2), seq=100)
        rec.packet_end(enc)
        transit = rec.link_begin("link.fwd", 7, bytes=60)
        rec.link_end(7, "delivered")
        dec = rec.packet_begin("decode", "dec-gw", packet_id=7)
        rec.packet_end(dec, status="ok")
        assert enc.trace_id == transit.trace_id == dec.trace_id
        assert transit.parent_id == enc.span_id
        assert dec.parent_id == transit.span_id
        assert transit.tags["outcome"] == "delivered"

    def test_flow_sampling_every_nth(self):
        rec = SpanRecorder(trace_sample=2)
        kept = rec.packet_begin("encode", "gw", 1, flow="f0", seq=1)
        rec.packet_end(kept)
        skipped = rec.packet_begin("encode", "gw", 2, flow="f1", seq=1)
        assert kept is not None and skipped is None
        # Same flow keeps its verdict.
        again = rec.packet_begin("encode", "gw", 3, flow="f0", seq=2)
        assert again is not None
        rec.packet_end(again)

    def test_packet_event_needs_traced_packet(self):
        rec = SpanRecorder()
        assert rec.packet_event("queue_drop", "link", 99) is None
        span = rec.packet_begin("encode", "gw", 99)
        rec.packet_end(span)
        drop = rec.packet_event("queue_drop", "link", 99)
        assert drop.trace_id == span.trace_id

    def test_link_deps_record_encoded_against(self):
        rec = SpanRecorder()
        dep = rec.packet_begin("encode", "gw", 1)
        rec.packet_end(dep)
        cur = rec.packet_begin("encode", "gw", 2)
        rec.link_deps(cur, [1, 42])  # 42 untraced -> skipped
        rec.packet_end(cur)
        assert cur.links == [{"ref": "encoded_against",
                              "trace": dep.trace_id,
                              "span": dep.span_id, "packet": 1}]

    def test_retransmit_links_close_the_causal_loop(self):
        rec = SpanRecorder()
        flow = ("s", 80, "c", 1000)
        first = rec.packet_begin("encode", "gw", 1, flow=flow, seq=500)
        rec.packet_end(first)
        retx = rec.note_retransmit("tcp", flow, 500)
        assert retx.links == [{"ref": "retransmission_of",
                               "trace": first.trace_id,
                               "span": first.span_id}]
        second = rec.packet_begin("encode", "gw", 2, flow=flow, seq=500)
        rec.packet_end(second)
        assert {"ref": "caused_by_retransmit", "trace": retx.trace_id,
                "span": retx.span_id} in second.links

    def test_fault_windows_tag_spans(self):
        rec = SpanRecorder()
        rec.fault_begin("link_flap")
        span = rec.packet_begin("encode", "gw", 1)
        rec.packet_end(span)
        rec.fault_end("link_flap")
        after = rec.packet_begin("encode", "gw", 2)
        assert span.tags["faults"] == ["link_flap"]
        assert "faults" not in after.tags
        rec.fault_end("never_opened")  # must not raise

    def test_max_spans_bounds_and_counts_drops(self):
        rec = SpanRecorder(max_spans=2)
        a = rec.begin("a", "x")
        rec.end(a)
        b = rec.begin("b", "x")
        rec.end(b)
        assert rec.begin("c", "x") is None
        assert rec.packet_begin("d", "x", 9) is None
        assert len(rec.spans) == 2
        assert rec.dropped == 2
        assert rec.export()["summary"]["dropped"] == 2


class TestExport:
    def make_doc(self):
        rec = SpanRecorder(sim=FakeSim())
        enc = rec.packet_begin("encode", "gw", 1, flow=("a", 1, "b", 2),
                               seq=10)
        stage = rec.begin_stage("table_probe", "enc")
        rec.end_stage(stage)
        rec.packet_end(enc)
        rec.link_begin("link", 1)
        rec.link_end(1, "delivered")
        return rec.export()

    def test_export_shape_and_validation(self):
        doc = self.make_doc()
        assert doc["schema"] == SPANS_SCHEMA
        assert doc["summary"]["spans"] == len(doc["spans"]) == 3
        json.dumps(doc)  # JSON-safe
        validate_spans(doc)

    def test_validate_rejects_corruption(self):
        doc = self.make_doc()
        with pytest.raises(ValueError):
            validate_spans({**doc, "schema": "bogus/v9"})
        broken = json.loads(json.dumps(doc))
        broken["spans"][0].pop("trace")
        with pytest.raises(ValueError):
            validate_spans(broken)
        dup = json.loads(json.dumps(doc))
        dup["spans"][1]["span"] = dup["spans"][0]["span"]
        with pytest.raises(ValueError):
            validate_spans(dup)

    def test_rollup_is_wall_free(self):
        """The rollup feeds cached/replayed records: no wall times."""
        doc = self.make_doc()
        rollup = spans_rollup(doc)
        assert rollup["spans"] == 3
        assert "wall" not in json.dumps(rollup)
        assert rollup["by_name"]["encode"]["count"] == 1

    def test_jsonl_roundtrip(self, tmp_path):
        rec = SpanRecorder()
        span = rec.begin("s", "x")
        rec.end(span)
        path = tmp_path / "spans.jsonl"
        rec.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == SPANS_SCHEMA
        assert len(lines) == 1 + header["summary"]["spans"]
        assert json.loads(lines[1])["name"] == "s"

    def test_spans_if_contract(self):
        assert spans_if(False) is None
        rec = spans_if(True, trace_sample=4)
        assert isinstance(rec, SpanRecorder)
        assert rec.trace_sample == 4


class TestFlame:
    def make_doc(self):
        rec = SpanRecorder(sim=FakeSim())
        for pkt in range(3):
            enc = rec.packet_begin("encode", "gw", pkt)
            stage = rec.begin_stage("table_probe", "enc")
            rec.end_stage(stage)
            rec.packet_end(enc)
        return rec.export()

    def test_tree_structure_and_counts(self):
        root = build_flame(self.make_doc(), weight="count")
        assert set(root.children) == {"encode"}
        encode = root.children["encode"]
        assert encode.count == 3
        assert encode.children["table_probe"].count == 3
        # count weight: self == count, total adds descendants
        assert encode.self_weight == 3
        assert encode.total == 6

    def test_self_never_negative(self):
        root = build_flame(self.make_doc(), weight="wall")
        for node in root.children.values():
            assert node.self_weight >= 0

    def test_format_and_folded(self):
        root = build_flame(self.make_doc(), weight="count")
        text = "\n".join(format_flame(root, weight="count"))
        assert "encode" in text and "table_probe" in text
        folded = to_folded(root, weight="count")
        assert "encode 3" in folded
        assert "encode;table_probe 3" in folded

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            build_flame(self.make_doc(), weight="bogus")


def naive_run(loss=0.01, size=60 * 1460, **kwargs):
    config = ExperimentConfig(
        corpus="file1", file_size=size, policy="naive", policy_kwargs={},
        loss_rate=loss, seed=11, spans=True,
        time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0, **kwargs)
    return run_transfer(config)


class TestEndToEnd:
    def test_disabled_by_default_and_result_roundtrip(self):
        config = ExperimentConfig(corpus="file1", file_size=20 * 1460,
                                  policy="naive", policy_kwargs={},
                                  loss_rate=0.0, seed=3)
        result = run_transfer(config)
        assert result.spans is None
        # The plain-dict round-trip contract holds for the new field.
        clone = TransferResult.from_dict(result.to_dict())
        assert clone.spans is None

    def test_traced_run_validates_and_covers_the_pipeline(self):
        result = naive_run(loss=0.0, size=20 * 1460)
        doc = result.spans
        validate_spans(doc)
        names = {span["name"] for span in doc["spans"]}
        assert {"encode", "table_probe", "region_expand", "wire_pack",
                "link_transit", "decode"} <= names
        assert doc["summary"]["open"] == 0  # clean run closes every span
        clone = TransferResult.from_dict(result.to_dict())
        assert clone.spans["summary"] == doc["summary"]

    def test_livelock_chain_found_and_rendered(self):
        """§IV-B: the naive stall walks back to a circular dependency."""
        result = naive_run(loss=0.01)
        assert not result.completed  # the classic livelock stall
        doc = result.spans
        validate_spans(doc)
        trace = find_livelock_trace(doc)
        assert trace is not None
        lines = format_chain(doc, trace)
        text = "\n".join(lines)
        assert "CIRCULAR" in text
        assert "encoded_against" in text
        assert "retransmission_of" in text or "caused_by_retransmit" in text
        assert "status=missing" in text
        # The flagged hop names the same (flow, seq) twice: the
        # retransmission was encoded against a lost copy of itself.
        by_trace = spans_by_trace(doc)
        assert trace in by_trace

    def test_trace_ids_deterministic_across_runs(self):
        a = naive_run(loss=0.01).spans
        b = naive_run(loss=0.01).spans

        def strip(doc):
            # Wall times are host noise and packet ids come from a
            # process-global counter; everything else must replay
            # bit-identically.
            out = []
            for span in doc["spans"]:
                clean = {k: v for k, v in span.items() if k != "wall"}
                clean["tags"] = {k: v for k, v in span["tags"].items()
                                 if k != "packet"}
                if "links" in clean:
                    clean["links"] = [
                        {k: v for k, v in link.items() if k != "packet"}
                        for link in clean["links"]]
                out.append(clean)
            return out

        assert strip(a) == strip(b)
        assert spans_rollup(a) == spans_rollup(b)

    def test_resilience_control_plane_spans_emitted(self):
        """Resync handshakes and watchdog trips show up as spans."""
        result = naive_run(loss=0.05, resilience=True)
        doc = result.spans
        validate_spans(doc)
        names = {span["name"] for span in doc["spans"]}
        assert "watchdog_trip" in names
        assert "resync" in names and "resync_served" in names
        resyncs = [span for span in doc["spans"]
                   if span["name"] == "resync"]
        assert all("outcome" in span["tags"] for span in resyncs)

    def test_gateway_crash_window_tags_spans(self):
        from repro.app.transfer import FileClient, FileServer
        from repro.experiments.runner import (FILE_NAME, SERVER_ADDR,
                                              build_testbed)
        from repro.sim.faults import schedule_gateway_restart
        from repro.workload.corpus import corpus_object

        config = ExperimentConfig(
            corpus="file1", file_size=40 * 1460, policy="naive",
            policy_kwargs={}, loss_rate=0.0, seed=5, resilience=True,
            spans=True, time_limit=120.0, tcp_max_retries=8,
            tcp_max_rto=2.0)
        testbed = build_testbed(config)
        data = corpus_object(config.corpus, config.file_size,
                             config.corpus_seed)
        FileServer(testbed.server_stack, {FILE_NAME: data})
        client = FileClient(testbed.client_stack, testbed.sim)
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.01, downtime=0.02)
        client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                     on_done=lambda _o: testbed.sim.stop())
        testbed.sim.run(until=config.time_limit)
        doc = testbed.spans.export()
        validate_spans(doc)
        tagged = [span for span in doc["spans"]
                  if span["tags"].get("faults") == ["gateway_down"]]
        assert tagged, "no spans created inside the crash window"
        untagged = [span for span in doc["spans"]
                    if "faults" not in span["tags"]]
        assert untagged, "fault window never closed"
