"""Tests for the unified telemetry layer (repro.metrics.telemetry)."""

import json
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_transfer
from repro.metrics.collectors import TransferResult
from repro.metrics.telemetry import (FlightRecorder, Histogram,
                                     MetricsRegistry, Telemetry,
                                     TelemetrySampler, metric_key,
                                     telemetry_if, validate_telemetry)
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class TestMetricsRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("drops", gw="decoder")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.key == "drops{gw=decoder}"

    def test_same_identity_is_memoised(self):
        registry = MetricsRegistry()
        a = registry.counter("c", gw="x")
        b = registry.counter("c", gw="x")
        assert a is b
        assert registry.counter("c", gw="y") is not a

    def test_label_order_does_not_matter(self):
        assert (metric_key("m", {"a": 1, "b": 2})
                == metric_key("m", {"b": 2, "a": 1}))

    def test_unlabelled_key_is_bare_name(self):
        assert metric_key("dre.perceived_loss", {}) == "dre.perceived_loss"

    def test_pull_gauge_reads_callback(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        gauge = registry.gauge("g", fn=lambda: state["v"])
        assert gauge.read() == 1.0
        state["v"] = 7.5
        assert gauge.read() == 7.5

    def test_push_gauge_and_callback_failure(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert math.isnan(gauge.read())  # never set
        gauge.set(3)
        assert gauge.read() == 3.0
        broken = registry.gauge("bad", fn=lambda: 1 / 0)
        assert math.isnan(broken.read())  # a gauge must not raise

    def test_histogram_buckets_and_summary(self):
        histogram = Histogram("h", {}, bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["buckets"]["1.0"] == 1
        assert summary["buckets"]["10.0"] == 1
        assert summary["buckets"]["+inf"] == 1
        assert summary["min"] == 0.5 and summary["max"] == 50.0
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g", fn=lambda: float("inf"))
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["gauges"]["g"] is None  # inf -> null


class TestTelemetrySampler:
    def test_series_align_with_shared_time_axis(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("a", fn=lambda: sim.now)
        sampler = TelemetrySampler(sim, registry, interval=0.1)
        sampler.start()
        sim.run(until=1.0)
        series = sampler.series()
        assert len(sampler.times) == len(series["a"])
        assert sampler.times[0] == 0.0
        assert series["a"] == sampler.times  # gauge reads the clock

    def test_late_gauge_is_nan_backfilled(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("early", fn=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, interval=0.1)
        sampler.start()
        sim.at(0.55, lambda: registry.gauge("late", fn=lambda: 2.0))
        sim.run(until=1.0)
        series = sampler.series()
        assert len(series["late"]) == len(sampler.times)
        n_padded = sum(1 for v in series["late"] if math.isnan(v))
        assert 0 < n_padded < len(sampler.times)
        assert series["late"][-1] == 2.0

    def test_decimation_bounds_memory_and_doubles_interval(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g", fn=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, interval=0.01,
                                   max_samples=64)
        sampler.start()
        sim.run(until=10.0)  # 1000 naive samples >> max_samples
        assert len(sampler.times) <= 64
        assert sampler.decimations >= 1
        assert sampler.interval > sampler.initial_interval
        # Decimated series stay aligned and span the whole run.
        assert len(sampler.series()["g"]) == len(sampler.times)
        assert sampler.times[-1] > 9.0

    def test_decimation_at_exact_max_samples_boundary(self):
        """The max_samples-th sample (not one more) triggers decimation."""
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g", fn=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, interval=0.01,
                                   max_samples=8)
        for _ in range(7):
            sampler.sample_once()
        assert sampler.decimations == 0
        assert len(sampler.times) == 7
        sampler.sample_once()  # the boundary sample
        assert sampler.decimations == 1
        assert len(sampler.times) == 4  # 8 stored, halved in place
        assert sampler.interval == 2 * sampler.initial_interval
        assert len(sampler.series()["g"]) == len(sampler.times)

    def test_late_gauge_backfilled_across_decimation(self):
        """A gauge registered after a decimation still aligns.

        Backfill length must match the *decimated* time axis, not the
        raw sample count — the known-untested edge of late
        registration.
        """
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("early", fn=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, interval=0.01,
                                   max_samples=16)
        sampler.start()
        # Register mid-run, after at least one decimation has halved
        # the stored series.
        sim.at(0.5, lambda: registry.gauge("late", fn=lambda: 2.0))
        sim.run(until=1.0)
        assert sampler.decimations >= 1
        series = sampler.series()
        assert len(series["late"]) == len(sampler.times)
        assert len(series["early"]) == len(sampler.times)
        assert series["late"][-1] == 2.0
        assert math.isnan(series["late"][0])

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TelemetrySampler(sim, MetricsRegistry(), interval=0.0)
        with pytest.raises(ValueError):
            TelemetrySampler(sim, MetricsRegistry(), max_samples=2)


class TestFlightRecorder:
    def test_per_flow_rings_are_bounded(self):
        recorder = FlightRecorder(ring_size=4, max_flows=8)
        for index in range(20):
            recorder.record(float(index), "gw", "event", {"flow": "a"})
        assert len(recorder) == 4
        assert recorder.events_seen == 20
        dump = recorder.dump()
        assert [event["time"] for event in dump] == [16.0, 17.0, 18.0, 19.0]

    def test_chatty_flow_cannot_evict_another(self):
        recorder = FlightRecorder(ring_size=4, max_flows=8)
        recorder.record(0.0, "gw", "rare", {"flow": "quiet"})
        for index in range(100):
            recorder.record(1.0 + index, "gw", "spam", {"flow": "noisy"})
        events = {event["event"] for event in recorder.dump()}
        assert "rare" in events

    def test_flowless_events_group_by_source(self):
        recorder = FlightRecorder(ring_size=2, max_flows=8)
        recorder.record(0.0, "encoder-gw", "a")
        recorder.record(1.0, "decoder-gw", "b")
        recorder.record(2.0, "encoder-gw", "c")
        recorder.record(3.0, "encoder-gw", "d")
        events = [event["event"] for event in recorder.dump()]
        assert events == ["b", "c", "d"]  # encoder ring dropped "a"

    def test_flow_count_bounded_by_overflow_ring(self):
        recorder = FlightRecorder(ring_size=8, max_flows=2)
        for index in range(10):
            recorder.record(float(index), "gw", "e", {"flow": f"f{index}"})
        # 2 dedicated rings + 1 shared overflow ring, all bounded.
        assert len(recorder) <= 8 * 3

    def test_dump_merges_in_time_order_with_limit(self):
        recorder = FlightRecorder(ring_size=8, max_flows=8)
        recorder.record(2.0, "b", "second")
        recorder.record(1.0, "a", "first")
        recorder.record(3.0, "a", "third")
        dump = recorder.dump()
        assert [event["event"] for event in dump] == ["first", "second",
                                                      "third"]
        assert [e["event"] for e in recorder.dump(max_events=2)] == [
            "second", "third"]


class TestTelemetryFacade:
    def test_export_schema_and_validation(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        telemetry.registry.gauge("g", fn=lambda: 1.0)
        telemetry.start()
        sim.run(until=0.5)
        export = telemetry.export(reason="completed")
        validate_telemetry(export)
        assert export["schema"] == "telemetry/v1"
        assert export["flight_recorder"] == []  # clean completion

    def test_export_dumps_recorder_on_post_mortem_reason(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        telemetry.recorder.record(0.0, "gw", "drop_undecodable",
                                  {"packet_id": 1})
        export = telemetry.export(reason="stall")
        assert len(export["flight_recorder"]) == 1
        assert export["flight_recorder_events_seen"] == 1
        validate_telemetry(export)

    def test_validate_rejects_misaligned_series(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        telemetry.registry.gauge("g", fn=lambda: 1.0)
        export = telemetry.export()
        export["sampler"]["series"]["g"].append(1.0)
        with pytest.raises(ValueError):
            validate_telemetry(export)

    def test_telemetry_if(self):
        sim = Simulator()
        assert telemetry_if(False, sim) is None
        telemetry = telemetry_if(True, sim, sample_interval=0.2)
        assert isinstance(telemetry, Telemetry)
        assert telemetry.config.sample_interval == 0.2

    def test_tracer_sink_feeds_recorder_while_tracing_disabled(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        tracer = Tracer(enabled=False)
        tracer.bind_clock(lambda: sim.now)
        tracer.sink = telemetry.trace_sink()
        tracer.emit("encoder-gw", "encode", packet_id=3)
        assert tracer.records == []  # full tracing stayed off
        assert telemetry.recorder.events_seen == 1
        assert telemetry.recorder.dump()[0]["detail"]["packet_id"] == 3


class TestTracerJsonl:
    def test_to_jsonl_round_trips(self):
        tracer = Tracer(enabled=True)
        tracer.emit("gw", "encode", packet_id=1, deps=[0],
                    raw=b"\x01", nested={"k": ("a", 2)})
        tracer.emit("gw", "drop", packet_id=2)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["source"] == "gw"
        assert first["detail"]["deps"] == [0]
        assert first["detail"]["raw"] == "01"  # bytes -> hex
        assert first["detail"]["nested"] == {"k": ["a", 2]}

    def test_to_jsonl_empty(self):
        assert Tracer(enabled=True).to_jsonl() == ""


class TestEndToEnd:
    def test_disabled_run_carries_no_telemetry(self):
        result = run_transfer(ExperimentConfig(file_size=20 * 1460))
        assert result.telemetry is None

    def test_enabled_run_exports_expected_series(self):
        result = run_transfer(ExperimentConfig(
            file_size=40 * 1460, loss_rate=0.01, telemetry=True,
            telemetry_kwargs={"sample_interval": 0.02}))
        export = result.telemetry
        validate_telemetry(export)
        assert export["reason"] == "completed"
        keys = export["sampler"]["series"]
        for expected in ("tcp.cwnd{conn=server:80}",
                         "tcp.rto{conn=server:80}",
                         "tcp.inflight{conn=server:80}",
                         "dre.perceived_loss",
                         "cache.entries{gw=encoder}",
                         "cache.entries{gw=decoder}",
                         "link.queue_depth{link=bottleneck-fwd}"):
            assert expected in keys, expected
        json.dumps(export)  # must be a plain JSON document

    def test_naive_stall_dumps_flight_recorder(self):
        result = run_transfer(ExperimentConfig(
            policy="naive", file_size=60 * 1460, loss_rate=0.05,
            telemetry=True, seed=11,
            time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0))
        assert not result.completed
        export = result.telemetry
        assert export["reason"] in ("stall", "time_limit")
        events = {event["event"] for event in export["flight_recorder"]}
        # The §IV-B livelock signature: retransmissions encoded against
        # undelivered packets, each dropped as undecodable.
        assert "drop_undecodable" in events

    def test_resilience_run_exports_epoch_series(self):
        result = run_transfer(ExperimentConfig(
            file_size=20 * 1460, telemetry=True, resilience=True))
        keys = result.telemetry["sampler"]["series"]
        assert "cache.epoch{gw=encoder}" in keys
        assert "resilience.resyncing{gw=decoder}" in keys
        assert "resilience.degraded{gw=encoder}" in keys

    def test_telemetry_survives_result_round_trip(self):
        result = run_transfer(ExperimentConfig(
            file_size=20 * 1460, telemetry=True))
        clone = TransferResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.telemetry == result.telemetry

    def test_deterministic_across_runs(self):
        config = ExperimentConfig(file_size=20 * 1460, loss_rate=0.02,
                                  telemetry=True, seed=7)
        first = run_transfer(config).telemetry
        second = run_transfer(config).telemetry
        assert first["sampler"] == second["sampler"]
        assert first["counters"] == second["counters"]


class TestSweepExport:
    def test_bench_telemetry_json_and_jsonl(self, tmp_path):
        from repro.experiments.sweep import (SweepSpec, run_sweep,
                                             validate_bench_telemetry,
                                             write_telemetry_export)

        spec = SweepSpec(
            base=ExperimentConfig(file_size=20 * 1460, telemetry=True),
            grid={"loss_rate": [0.0, 0.01]})
        swept = run_sweep(spec)

        json_path = tmp_path / "tele.json"
        payload = write_telemetry_export(swept, str(json_path), name="t")
        validate_bench_telemetry(payload)
        on_disk = json.loads(json_path.read_text())
        validate_bench_telemetry(on_disk)
        assert on_disk["summary"]["with_telemetry"] == 2

        jsonl_path = tmp_path / "tele.jsonl"
        write_telemetry_export(swept, str(jsonl_path), name="t")
        rows = [json.loads(line)
                for line in jsonl_path.read_text().splitlines()]
        assert len(rows) == 2
        for row in rows:
            validate_bench_telemetry(row)

    def test_validator_rejects_garbage(self):
        from repro.experiments.sweep import validate_bench_telemetry

        with pytest.raises(ValueError):
            validate_bench_telemetry({"schema": "bench_sweep/v1"})
        with pytest.raises(ValueError):
            validate_bench_telemetry({"schema": "bench_telemetry/v1"})
