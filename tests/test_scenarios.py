"""Tests for the paper-artifact scenario layer (reduced parameters)."""

from repro.experiments import scenarios
from repro.workload.corpus import corpus_object


class TestOfflineRatio:
    def test_redundant_data_compresses(self):
        data = corpus_object("file1", size=120 * 1460, seed=3)
        ratio = scenarios.offline_compression_ratio(data)
        assert 0.3 < ratio < 0.8

    def test_cache_window_limits_savings(self):
        data = corpus_object("file1", size=120 * 1460, seed=3)
        tiny = scenarios.offline_compression_ratio(data, cache_packets=2)
        full = scenarios.offline_compression_ratio(data)
        assert tiny > full

    def test_random_data_ratio_near_one(self):
        data = corpus_object("random", size=60 * 1460, seed=3)
        assert scenarios.offline_compression_ratio(data) > 0.99


class TestTable1:
    def test_rows_and_report(self):
        result = scenarios.table1(ks=(10, 100),
                                  objects=("ebook", "webpages"))
        assert len(result.rows) == 4
        report = result.report()
        assert "Table I" in report
        assert "ebook" in report and "webpages" in report

    def test_shapes(self):
        result = scenarios.table1(ks=(10, 1000), objects=("ebook", "video"))
        savings = {(name, k): s for name, k, s in result.rows}
        assert savings[("ebook", 10)] < 0.02
        assert savings[("video", 10)] < 0.02


class TestFigure6:
    def test_small_run(self):
        result = scenarios.figure6(runs=4, loss_rate=0.02)
        assert len(result.fractions) == 4
        assert result.stall_count >= 3
        report = result.report()
        assert "Figure 6" in report
        assert "successful retrievals" in report

    def test_zero_loss_all_succeed(self):
        result = scenarios.figure6(runs=2, loss_rate=0.0)
        assert result.stall_count == 0
        assert result.success_count == 2


class TestRatioScenarios:
    def test_headline(self):
        result = scenarios.headline(seeds=(11,))
        assert 0.2 < result.byte_savings < 0.7
        assert "paper" in result.report()

    def test_table2_small(self):
        result = scenarios.table2(losses=(0.05,), seeds=(11,))
        assert ("Bytes Sent", "cache_flush", 0.05) in result.cells
        report = result.report()
        assert "cache_flush" in report and "k_distance" in report

    def test_figure10_11_small(self):
        result = scenarios.figure10_11(policies=("cache_flush",),
                                       files=("file1",),
                                       losses=(0.0, 0.02), seeds=(11,))
        assert len(result.bytes_series) == 1
        series = result.bytes_series[0]
        assert series.point(0.0).mean < series.point(0.02).mean
        assert "Figure 10" in result.report_bytes()
        assert "Figure 11" in result.report_delay()

    def test_figure12_small(self):
        result = scenarios.figure12(ks=(2, 16), losses=(0.05,), seeds=(11,))
        bytes5 = result.bytes_series[0]
        assert bytes5.point(16).mean < bytes5.point(2).mean
        assert "Figure 12" in result.report()

    def test_figure13_small(self):
        result = scenarios.figure13(
            policies=(("cache_flush", {}),), losses=(0.0, 0.05), seeds=(11,))
        series = result.series[0]
        assert series.point(0.05).mean > series.point(0.0).mean
        assert "Figure 13" in result.report()

    def test_ablation_small(self):
        result = scenarios.ablation_packet_size(seeds=(11,))
        labels = [label for label, _, _ in result.rows]
        assert "cache_flush" in labels
        assert any("k=8" in label for label in labels)
        assert all(size > 0 for _, size, _ in result.rows)

    def test_impairment_matrix_small(self):
        result = scenarios.impairment_matrix(
            policies=("cache_flush",), kinds=("loss",), rates=(0.02,),
            seeds=(11,))
        completed, delay = result.cells[("cache_flush", "loss", 0.02)]
        assert completed == 1.0
        assert delay is not None and delay > 0
        assert "Impairment matrix" in result.report()

    def test_stall_scaling_small(self):
        result = scenarios.stall_scaling(sizes=(40 * 1024,),
                                         losses=(0.05,), seeds=(11, 23))
        assert 0.0 <= result.stall_by_size[40 * 1024] <= 1.0
        assert result.retrieved_by_loss[0.05] > 0
        assert "stall probability" in result.report()

    def test_extensions_small(self):
        result = scenarios.extensions(losses=(0.0, 0.03), seeds=(11,))
        names = {s.name for s in result.bytes_series}
        assert names == {"informed_marking", "ack_gated", "nack_recovery",
                         "adaptive_k"}
        for series in result.bytes_series:
            assert series.point(0.0).mean < 1.0
