"""Tests for the minimal HTTP/1.0 layer."""

import random

from repro.app.http import HTTPClient, HTTPServer, _parse_response

from tests.tcp_helpers import TcpTestbed, drop_data_segments


def page(n=30000, seed=3):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def build(resources=None, drop_s2c=None):
    testbed = TcpTestbed(drop_s2c=drop_s2c)
    server = HTTPServer(testbed.server_stack,
                        resources if resources is not None else {})
    client = HTTPClient(testbed.client_stack, testbed.sim)
    return testbed, server, client


def test_get_200():
    body = page()
    testbed, server, client = build({"/index.html": body})
    responses = []
    client.get("10.0.0.2", "/index.html", on_done=responses.append)
    testbed.sim.run(until=30)
    assert len(responses) == 1
    response = responses[0]
    assert response.status == 200
    assert response.body == body
    assert int(response.headers["content-length"]) == len(body)
    assert server.hits == 1


def test_get_404():
    testbed, server, client = build({})
    responses = []
    client.get("10.0.0.2", "/nope", on_done=responses.append)
    testbed.sim.run(until=10)
    assert responses[0].status == 404
    assert responses[0].body == b""
    assert server.misses == 1


def test_get_under_loss():
    body = page(seed=4)
    drops = drop_data_segments(*[k * 1460 for k in (0, 3)])
    testbed, server, client = build({"/a": body}, drop_s2c=drops)
    responses = []
    client.get("10.0.0.2", "/a", on_done=responses.append)
    testbed.sim.run(until=60)
    assert responses and responses[0].body == body


def test_parse_response_robustness():
    assert _parse_response(b"").status == 0
    assert _parse_response(b"HTTP/1.0 200 OK").status == 0  # no header end
    parsed = _parse_response(b"garbage\r\n\r\nbody")
    assert parsed.status == 0
    assert parsed.body == b"body"


def test_parallel_gets():
    pages = {f"/{i}": page(5000, seed=10 + i) for i in range(3)}
    testbed, server, client = build(dict(pages))
    responses = {}
    for path in pages:
        client.get("10.0.0.2", path,
                   on_done=lambda response, p=path: responses.setdefault(
                       p, response))
    testbed.sim.run(until=30)
    assert set(responses) == set(pages)
    for path, response in responses.items():
        assert response.body == pages[path]
