"""Tests for winnowing anchor selection and eviction-policy options."""

import random

import numpy as np
import pytest

from repro.core.cache import PacketStore
from repro.core.fingerprint import FingerprintScheme
from repro.core.winnowing import winnow_anchors, winnow_positions


class TestWinnowPositions:
    def test_empty(self):
        assert winnow_positions(np.array([], dtype=np.uint64), 4) == []

    def test_short_input_single_minimum(self):
        hashes = np.array([5, 3, 9], dtype=np.uint64)
        assert winnow_positions(hashes, 8) == [1]

    def test_every_window_covered(self):
        """The winnowing guarantee: no gap of >= window positions."""
        rng = np.random.default_rng(1)
        hashes = rng.integers(0, 1 << 60, 5000, dtype=np.uint64)
        window = 16
        positions = winnow_positions(hashes, window)
        assert positions == sorted(positions)
        gaps = np.diff([0] + positions + [len(hashes) - 1])
        assert gaps.max() <= window

    def test_selection_density_near_value_sampling(self):
        """With window 2^k, winnowing density ~ 2/(w+1) ≈ value
        sampling's 2^-k within a small factor."""
        rng = np.random.default_rng(2)
        hashes = rng.integers(0, 1 << 60, 20000, dtype=np.uint64)
        positions = winnow_positions(hashes, 16)
        density = len(positions) / len(hashes)
        assert 0.05 < density < 0.20

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        hashes = rng.integers(0, 1 << 60, 1000, dtype=np.uint64)
        assert winnow_positions(hashes, 8) == winnow_positions(hashes, 8)

    def test_winnow_anchors_list_form(self):
        fingerprints = [(i, (i * 7919) % 100) for i in range(50)]
        anchors = winnow_anchors(fingerprints, 8)
        assert anchors
        assert all(pair in fingerprints for pair in anchors)


class TestWinnowingScheme:
    def test_scheme_accepts_selection(self):
        scheme = FingerprintScheme(selection="winnowing")
        rng = random.Random(4)
        data = rng.randbytes(3000)
        anchors = scheme.anchors(data)
        assert anchors
        offsets = [off for off, _ in anchors]
        assert offsets == sorted(offsets)
        # Bounded gaps (the winnowing property), +window slack at edges.
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(gaps) <= 16

    def test_identical_selection_across_instances(self):
        rng = random.Random(5)
        data = rng.randbytes(2000)
        a = FingerprintScheme(selection="winnowing").anchors(data)
        b = FingerprintScheme(selection="winnowing").anchors(data)
        assert a == b

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            FingerprintScheme(selection="magic")

    def test_rabin_backend_winnowing(self):
        rng = random.Random(6)
        data = rng.randbytes(1200)
        anchors = FingerprintScheme(kind="rabin",
                                    selection="winnowing").anchors(data)
        assert anchors

    def test_winnowing_roundtrips_through_encoder(self):
        from repro.core import (ByteCache, ByteCachingDecoder,
                                ByteCachingEncoder)
        from repro.core.policies import (DecoderPolicy, NaivePolicy,
                                         PacketMeta)
        from repro.net.checksum import payload_checksum

        scheme = FingerprintScheme(selection="winnowing")
        encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
        decoder = ByteCachingDecoder(scheme, ByteCache(), DecoderPolicy())
        rng = random.Random(7)
        base = rng.randbytes(1460)
        for index, payload in enumerate([base, base[:700] + rng.randbytes(760)]):
            meta = PacketMeta(packet_id=index, flow=("a", 1, "b", 2),
                              tcp_seq=index * 1460, counter=index)
            result = encoder.encode(payload, meta)
            decoded = decoder.decode(result.data, meta,
                                     checksum=payload_checksum(payload))
            assert decoded.ok and decoded.payload == payload
        assert encoder.stats.packets_encoded >= 1


class TestEvictionPolicies:
    def test_lru_keeps_hot_entries(self):
        store = PacketStore(byte_budget=300, eviction="lru")
        hot = store.add(b"a" * 100)
        cold = store.add(b"b" * 100)
        store.get(hot)                      # touch
        store.add(b"c" * 100)
        store.add(b"d" * 100)               # evicts the coldest
        assert hot in store
        assert cold not in store

    def test_fifo_ignores_touches(self):
        store = PacketStore(byte_budget=300, eviction="fifo")
        first = store.add(b"a" * 100)
        store.add(b"b" * 100)
        store.get(first)                    # touch is irrelevant
        store.add(b"c" * 100)
        store.add(b"d" * 100)
        assert first not in store

    def test_unknown_eviction_rejected(self):
        with pytest.raises(ValueError):
            PacketStore(eviction="random")

    def test_experiment_runs_with_lru_and_winnowing(self):
        from repro.experiments import ExperimentConfig, run_transfer

        result = run_transfer(ExperimentConfig(
            policy="cache_flush", file_size=40 * 1460, seed=5,
            cache_eviction="lru", fingerprint_selection="winnowing",
            verify_content=True))
        assert result.completed
        assert result.outcome.content_ok is True
