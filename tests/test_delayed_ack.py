"""Tests for RFC 1122 delayed ACKs."""

import random

from repro.net.tcp import TCPConfig

from tests.tcp_helpers import TcpTestbed, drop_data_segments


def payload(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def ack_count(testbed):
    return sum(1 for pkt in testbed.c2s.delivered
               if pkt.tcp is not None and not pkt.tcp.data
               and not pkt.tcp.syn)


def test_delayed_acks_halve_the_ack_stream():
    data = payload(40 * 1460)
    immediate = TcpTestbed(config=TCPConfig(delayed_ack=False))
    immediate.serve_bytes(data)
    conn, received, _ = immediate.fetch()
    immediate.sim.run(until=30)
    assert bytes(received) == data
    immediate_acks = ack_count(immediate)

    delayed = TcpTestbed(config=TCPConfig(delayed_ack=True))
    delayed.serve_bytes(data)
    conn, received, _ = delayed.fetch()
    delayed.sim.run(until=30)
    assert bytes(received) == data
    delayed_acks = ack_count(delayed)

    assert delayed_acks < 0.75 * immediate_acks


def test_delayed_ack_timer_bounds_latency():
    """A lone segment (no second one to trigger the every-2 rule) must
    still be ACKed within the delayed-ACK timeout."""
    testbed = TcpTestbed(config=TCPConfig(delayed_ack=True))
    testbed.serve_bytes(b"tiny")
    conn, received, events = testbed.fetch()
    testbed.sim.run(until=5)
    assert bytes(received) == b"tiny"
    assert "eof" in events


def test_dup_acks_still_immediate_under_loss():
    """Loss recovery must not be slowed: out-of-order segments generate
    immediate duplicate ACKs even with delayed ACKs on."""
    testbed = TcpTestbed(config=TCPConfig(delayed_ack=True),
                         drop_s2c=drop_data_segments(3 * 1460))
    data = payload(30 * 1460, seed=1)
    testbed.serve_bytes(data)
    conn, received, _ = testbed.fetch()
    testbed.sim.run(until=30)
    assert bytes(received) == data
    server_conn = testbed.server_stack.connections()[0]
    assert server_conn.stats.timeouts == 0  # fast retransmit worked


def test_transfer_with_dre_and_delayed_acks():
    from repro.experiments import ExperimentConfig

    config = ExperimentConfig(policy="cache_flush", file_size=60 * 1460,
                              seed=5, loss_rate=0.02, verify_content=True)
    config = config.with_updates()
    # Wire delayed acks through a custom TCP config.
    tcp = config.tcp_config()
    tcp.delayed_ack = True
    from repro.experiments.runner import (FILE_NAME, SERVER_ADDR,
                                          build_testbed)
    from repro.app.transfer import FileClient, FileServer
    from repro.workload.corpus import corpus_object

    testbed = build_testbed(config)
    # Replace stacks' config for both endpoints.
    testbed.client_stack.config.delayed_ack = True
    testbed.server_stack.config.delayed_ack = True
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           expected_content=data,
                           on_done=lambda _o: testbed.sim.stop())
    testbed.sim.run(until=120)
    assert outcome.completed
    assert outcome.content_ok is True
