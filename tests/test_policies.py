"""Unit tests for every encoding/decoding policy."""

import random

import pytest

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        FingerprintScheme)
from repro.core.cache import CacheEntry
from repro.core.policies import (AckGatedPolicy, AdaptiveKDistancePolicy,
                                 CacheFlushPolicy, DecoderPolicy,
                                 ENCODER_POLICIES,
                                 InformedMarkingDecoderPolicy,
                                 InformedMarkingEncoderPolicy,
                                 KDistancePolicy, NaivePolicy,
                                 NackRecoveryDecoderPolicy,
                                 NackRecoveryEncoderPolicy, PacketMeta,
                                 PolicyServices, TcpSeqPolicy,
                                 make_policy_pair)

FLOW = ("10.0.2.1", 80, "10.0.1.1", 5000)


def meta(i, seq=None, counter=None):
    return PacketMeta(packet_id=i, flow=FLOW,
                      tcp_seq=seq, counter=counter if counter is not None else i)


def entry(seq=None, flow=FLOW, counter=0):
    return CacheEntry(fingerprint=1, store_id=1, offset=0, tcp_seq=seq,
                      flow=flow, packet_counter=counter)


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in ENCODER_POLICIES:
            encoder_policy, decoder_policy = make_policy_pair(name)
            assert encoder_policy.name
            assert decoder_policy is not None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy_pair("bogus")

    def test_kwargs_forwarded(self):
        policy, _ = make_policy_pair("k_distance", k=5)
        assert policy.k == 5

    def test_decoder_kwargs_forwarded(self):
        _, decoder_policy = make_policy_pair("nack_recovery",
                                             decoder_timeout=2.5)
        assert decoder_policy.timeout == 2.5

    def test_paired_decoder_policies(self):
        _, im = make_policy_pair("informed_marking")
        assert isinstance(im, InformedMarkingDecoderPolicy)
        _, nack = make_policy_pair("nack_recovery")
        assert isinstance(nack, NackRecoveryDecoderPolicy)
        _, plain = make_policy_pair("cache_flush")
        assert type(plain) is DecoderPolicy


class TestNaive:
    def test_everything_permitted(self):
        policy = NaivePolicy()
        assert policy.may_encode(meta(1))
        assert policy.entry_eligible(entry(), meta(1))
        assert policy.should_cache_now(meta(1))
        assert policy.region_acceptable(1460, 1460, meta(1))


class TestCacheFlush:
    def test_increasing_sequence_no_flush(self):
        policy = CacheFlushPolicy()
        cache = ByteCache()
        cache.insert_packet(b"x" * 50, [(0, 7)])
        for seq in (0, 1460, 2920):
            policy.before_packet(meta(1, seq=seq), cache)
        assert cache.flushes == 0

    def test_decrease_triggers_flush(self):
        policy = CacheFlushPolicy()
        cache = ByteCache()
        policy.before_packet(meta(1, seq=0), cache)
        policy.before_packet(meta(2, seq=1460), cache)
        policy.before_packet(meta(3, seq=0), cache)     # retransmission
        assert cache.flushes == 1
        assert policy.flushes_triggered == 1

    def test_equal_sequence_triggers_flush(self):
        """A segment retransmitted twice in a row repeats the same seq."""
        policy = CacheFlushPolicy()
        cache = ByteCache()
        policy.before_packet(meta(1, seq=1460), cache)
        policy.before_packet(meta(2, seq=1460), cache)
        assert cache.flushes == 1

    def test_ascending_retransmission_burst_flushes_once(self):
        policy = CacheFlushPolicy()
        cache = ByteCache()
        for seq in (0, 1460, 2920, 4380, 5840):
            policy.before_packet(meta(1, seq=seq), cache)
        # Burst retransmitting holes 1460 and 2920 in ascending order.
        policy.before_packet(meta(2, seq=1460), cache)
        policy.before_packet(meta(3, seq=2920), cache)
        assert cache.flushes == 1

    def test_non_tcp_traffic_ignored(self):
        policy = CacheFlushPolicy()
        cache = ByteCache()
        policy.before_packet(PacketMeta(packet_id=1), cache)
        assert cache.flushes == 0

    def test_flows_tracked_independently(self):
        policy = CacheFlushPolicy()
        cache = ByteCache()
        other = ("other", 1, "flow", 2)
        policy.before_packet(meta(1, seq=5000), cache)
        policy.before_packet(PacketMeta(packet_id=2, flow=other, tcp_seq=0),
                             cache)
        assert cache.flushes == 0


class TestTcpSeq:
    def test_strictly_earlier_segment_eligible(self):
        policy = TcpSeqPolicy()
        assert policy.entry_eligible(entry(seq=0), meta(1, seq=1460))

    def test_same_or_later_segment_ineligible(self):
        """Fig. 7 line B.7: TCPseq_stored must be strictly lower."""
        policy = TcpSeqPolicy()
        assert not policy.entry_eligible(entry(seq=1460), meta(1, seq=1460))
        assert not policy.entry_eligible(entry(seq=2920), meta(1, seq=1460))

    def test_cross_flow_allowed_by_default(self):
        policy = TcpSeqPolicy()
        other = entry(seq=999999, flow=("x", 1, "y", 2))
        assert policy.entry_eligible(other, meta(1, seq=0))

    def test_strict_cross_flow_disallows(self):
        policy = TcpSeqPolicy(strict_cross_flow=True)
        other = entry(seq=0, flow=("x", 1, "y", 2))
        assert not policy.entry_eligible(other, meta(1, seq=1460))

    def test_non_tcp_never_encodes(self):
        policy = TcpSeqPolicy()
        assert not policy.entry_eligible(entry(seq=0), PacketMeta(packet_id=1))

    def test_entry_without_seq_ineligible(self):
        policy = TcpSeqPolicy()
        assert not policy.entry_eligible(entry(seq=None), meta(1, seq=1460))


class TestKDistance:
    def test_first_packet_is_reference(self):
        policy = KDistancePolicy(k=4)
        assert not policy.may_encode(meta(1, counter=0))

    def test_reference_every_k_packets(self):
        policy = KDistancePolicy(k=4)
        encodable = [policy.may_encode(meta(i, counter=i)) for i in range(9)]
        assert encodable == [False, True, True, True,
                             False, True, True, True, False]
        assert policy.references_sent == 3

    def test_eligibility_limited_to_reference_window(self):
        policy = KDistancePolicy(k=4)
        for i in range(5):
            policy.may_encode(meta(i, counter=i))  # reference at 0 and 4
        assert policy.entry_eligible(entry(counter=4), meta(5, counter=5))
        assert policy.entry_eligible(entry(counter=5), meta(6, counter=6))
        assert not policy.entry_eligible(entry(counter=3), meta(5, counter=5))

    def test_whole_payload_match_vetoed_in_counter_mode(self):
        policy = KDistancePolicy(k=4)
        assert not policy.region_acceptable(1460, 1460, meta(1))
        assert policy.region_acceptable(1459, 1460, meta(1))

    def test_whole_payload_match_allowed_in_stream_mode(self):
        policy = KDistancePolicy(k=4)
        assert policy.region_acceptable(1460, 1460, meta(1, seq=1460))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KDistancePolicy(k=0)


class TestKDistanceStreamMode:
    """TCP traffic uses stream-position groups (§V-C + §VII)."""

    MSS = 1460

    def seq_meta(self, segment_index, packet_id=1):
        return meta(packet_id, seq=1 + segment_index * self.MSS,
                    counter=segment_index)

    def test_group_leaders_are_references(self):
        policy = KDistancePolicy(k=4, mss=self.MSS)
        encodable = [policy.may_encode(self.seq_meta(i)) for i in range(9)]
        assert encodable == [False, True, True, True,
                             False, True, True, True, False]

    def test_retransmitted_reference_stays_reference(self):
        policy = KDistancePolicy(k=4, mss=self.MSS)
        assert not policy.may_encode(self.seq_meta(0))
        for i in range(1, 4):
            policy.may_encode(self.seq_meta(i))
        # A later retransmission of segment 0 is still the group leader.
        assert not policy.may_encode(self.seq_meta(0))

    def test_eligibility_windowed_to_group(self):
        policy = KDistancePolicy(k=4, mss=self.MSS)
        for i in range(6):
            policy.may_encode(self.seq_meta(i))
        current = self.seq_meta(6)      # group of segments 4..7
        in_group = entry(seq=1 + 5 * self.MSS)
        previous_group = entry(seq=1 + 3 * self.MSS)
        assert policy.entry_eligible(in_group, current)
        assert not policy.entry_eligible(previous_group, current)

    def test_never_references_self_or_future(self):
        policy = KDistancePolicy(k=8, mss=self.MSS)
        current = self.seq_meta(2)
        assert not policy.entry_eligible(entry(seq=current.tcp_seq), current)
        assert not policy.entry_eligible(
            entry(seq=current.tcp_seq + self.MSS), current)

    def test_large_k_matches_tcp_seq_eligibility(self):
        """§VII: as k grows the behaviour must converge to TCP-seq."""
        kdist = KDistancePolicy(k=10_000, mss=self.MSS)
        tcp_seq_policy = TcpSeqPolicy(strict_cross_flow=True)
        kdist.may_encode(self.seq_meta(0))  # learn the flow's stream base
        current = self.seq_meta(500)
        for segment_index in range(500):
            candidate = entry(seq=1 + segment_index * self.MSS)
            assert kdist.entry_eligible(candidate, current) == \
                tcp_seq_policy.entry_eligible(candidate, current)

    def test_cross_flow_ineligible(self):
        policy = KDistancePolicy(k=4, mss=self.MSS)
        other = entry(seq=1, flow=("x", 1, "y", 2))
        assert not policy.entry_eligible(other, self.seq_meta(2))


class TestAdaptiveKDistance:
    def test_loss_estimate_rises_on_retransmissions(self):
        policy = AdaptiveKDistancePolicy(ewma_alpha=0.5, initial_loss=0.0)
        cache = ByteCache()
        policy.before_packet(meta(1, seq=0), cache)
        policy.before_packet(meta(2, seq=1460), cache)
        before = policy.loss_estimate
        policy.before_packet(meta(3, seq=0), cache)   # retransmission
        assert policy.loss_estimate > before

    def test_k_shrinks_under_loss(self):
        policy = AdaptiveKDistancePolicy(k_min=2, k_max=64, ewma_alpha=0.5,
                                         initial_loss=0.0)
        cache = ByteCache()
        policy.before_packet(meta(1, seq=0), cache)
        k_clean = policy.k
        # Hammer with retransmissions.
        for _ in range(10):
            policy.before_packet(meta(2, seq=0), cache)
        assert policy.k < k_clean
        assert policy.k >= policy.k_min

    def test_k_recovers_when_clean(self):
        policy = AdaptiveKDistancePolicy(k_min=2, k_max=64, ewma_alpha=0.3,
                                         initial_loss=0.5)
        cache = ByteCache()
        for i in range(200):
            policy.before_packet(meta(i, seq=i * 1460), cache)
        assert policy.k == policy.k_max


class TestInformedMarking:
    def test_decoder_reports_and_encoder_marks(self):
        sent = []
        encoder_policy = InformedMarkingEncoderPolicy()
        decoder_policy = InformedMarkingDecoderPolicy()
        decoder_policy.attach_services(PolicyServices(
            send_control=lambda kind, payload: sent.append((kind, payload))))
        cache = ByteCache()
        cache.insert_packet(b"x" * 50, [(0, 77)])
        owned = decoder_policy.on_undecodable([77], None, ByteCache())
        assert owned is False          # packet still dropped
        assert sent == [("mark", [77])]
        encoder_policy.on_control("mark", [77], cache)
        assert cache.lookup(77) is None
        assert encoder_policy.marks_received == 1

    def test_report_batch_limited(self):
        sent = []
        decoder_policy = InformedMarkingDecoderPolicy(max_report_batch=2)
        decoder_policy.attach_services(PolicyServices(
            send_control=lambda kind, payload: sent.append(payload)))
        decoder_policy.on_undecodable([1, 2, 3, 4], None, ByteCache())
        assert sent == [[1, 2]]

    def test_unrelated_control_ignored(self):
        policy = InformedMarkingEncoderPolicy()
        cache = ByteCache()
        cache.insert_packet(b"x" * 50, [(0, 77)])
        policy.on_control("nack", [77], cache)
        assert cache.lookup(77) is not None


class TestAckGated:
    def make(self):
        scheme = FingerprintScheme()
        policy = AckGatedPolicy()
        encoder = ByteCachingEncoder(scheme, ByteCache(), policy)
        return policy, encoder

    def test_tcp_data_deferred(self):
        policy, encoder = self.make()
        rng = random.Random(0)
        payload = bytes(rng.randrange(256) for _ in range(1460))
        result = encoder.encode(payload, meta(1, seq=0))
        assert result.cached is False
        assert encoder.cache.lookup(
            encoder.scheme.anchors(payload)[0][1]) is None

    def test_ack_commits_pending(self):
        policy, encoder = self.make()
        rng = random.Random(1)
        payload = bytes(rng.randrange(256) for _ in range(1460))
        encoder.encode(payload, meta(1, seq=0))

        class FakePkt:
            src, dst = FLOW[2], FLOW[0]

            class tcp:
                src_port, dst_port = FLOW[3], FLOW[1]
                ack = 1460
                has_ack = True
                data = b""

            tcp = tcp()

        policy.on_reverse_packet(FakePkt(), encoder.cache)
        assert policy.committed == 1
        anchor_fp = encoder.scheme.anchors(payload)[0][1]
        assert encoder.cache.lookup(anchor_fp) is not None

    def test_partial_ack_does_not_commit(self):
        policy, encoder = self.make()
        rng = random.Random(2)
        payload = bytes(rng.randrange(256) for _ in range(1460))
        encoder.encode(payload, meta(1, seq=0))

        class FakePkt:
            src, dst = FLOW[2], FLOW[0]

            class tcp:
                src_port, dst_port = FLOW[3], FLOW[1]
                ack = 700
                has_ack = True
                data = b""

            tcp = tcp()

        policy.on_reverse_packet(FakePkt(), encoder.cache)
        assert policy.committed == 0

    def test_pending_bounded(self):
        policy = AckGatedPolicy(max_pending=3)
        for i in range(5):
            policy.defer_cache(b"x", [], meta(i, seq=i * 1460))
        assert policy.dropped_pending == 2

    def test_non_tcp_caches_immediately(self):
        policy = AckGatedPolicy()
        assert policy.should_cache_now(PacketMeta(packet_id=1))


class TestNackRecovery:
    def test_nack_and_repair_flow(self):
        control = []
        services = PolicyServices(
            send_control=lambda kind, payload: control.append((kind, payload)),
            clock=lambda: 0.0)

        scheme = FingerprintScheme()
        rng = random.Random(99)
        payload = bytes(rng.randrange(256) for _ in range(800))
        # Use a real content anchor so the repair insertion (which
        # fingerprints the payload) actually restores this entry.
        anchor_offset, anchor_fp = scheme.anchors(payload)[0]

        encoder_policy = NackRecoveryEncoderPolicy()
        encoder_policy.attach_services(services)
        encoder_cache = ByteCache()
        encoder_cache.insert_packet(payload, [(anchor_offset, anchor_fp)])

        retried = []
        decoder_policy = NackRecoveryDecoderPolicy(retry=retried.append)
        decoder_policy.attach_services(services)
        decoder = ByteCachingDecoder(scheme, ByteCache(), decoder_policy)

        # The decoder buffers an undecodable packet and NACKs.
        owned = decoder_policy.on_undecodable([anchor_fp], object(),
                                              decoder.cache)
        assert owned is True
        assert control[-1][0] == "nack"

        # Encoder answers with the raw payload.
        encoder_policy.on_control("nack", [anchor_fp], encoder_cache)
        kind, repairs = control[-1]
        assert kind == "repair"
        assert repairs[0][0] == anchor_fp

        # Decoder installs the repair and retries the buffered packet.
        decoder_policy.on_control("repair", repairs, decoder.cache)
        assert decoder_policy.repairs_received == 1
        assert len(retried) == 1
        assert decoder.cache.lookup(anchor_fp)

    def test_unavailable_repair_counted(self):
        services = PolicyServices(send_control=lambda *a: None)
        policy = NackRecoveryEncoderPolicy()
        policy.attach_services(services)
        policy.on_control("nack", [999], ByteCache())
        assert policy.repairs_unavailable == 1

    def test_buffer_limit(self):
        policy = NackRecoveryDecoderPolicy(buffer_limit=1)
        policy.attach_services(PolicyServices(send_control=lambda *a: None,
                                              clock=lambda: 0.0))
        assert policy.on_undecodable([1], object(), ByteCache()) is True
        assert policy.on_undecodable([2], object(), ByteCache()) is False

    def test_timeout_expires_buffered(self):
        now = [0.0]
        policy = NackRecoveryDecoderPolicy(timeout=1.0)
        policy.attach_services(PolicyServices(send_control=lambda *a: None,
                                              clock=lambda: now[0]))
        policy.on_undecodable([1], object(), ByteCache())
        now[0] = 5.0
        policy._expire()
        assert policy.timeouts == 1
        assert policy._buffer == []
