"""Unit tests for named deterministic random streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    registry = RngRegistry(42)
    assert registry.stream("loss") is registry.stream("loss")


def test_streams_deterministic_across_registries():
    a = RngRegistry(42).stream("loss")
    b = RngRegistry(42).stream("loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(42)
    a = [registry.stream("loss").random() for _ in range(5)]
    b = [registry.stream("corrupt").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("loss").random()
    b = RngRegistry(2).stream("loss").random()
    assert a != b


def test_numpy_stream_deterministic():
    a = RngRegistry(7).numpy_stream("gen").integers(0, 1 << 30, 8)
    b = RngRegistry(7).numpy_stream("gen").integers(0, 1 << 30, 8)
    assert list(a) == list(b)


def test_fork_creates_derived_registry():
    root = RngRegistry(42)
    child_a = root.fork("child")
    child_b = RngRegistry(42).fork("child")
    assert child_a.seed == child_b.seed
    assert child_a.seed != root.seed


def test_derive_seed_stable_and_63_bit():
    seed = derive_seed(123, "stream")
    assert seed == derive_seed(123, "stream")
    assert 0 <= seed < 1 << 63


def test_drawing_from_one_stream_does_not_perturb_another():
    registry = RngRegistry(9)
    registry.stream("a")  # created before any draws from b
    expected = RngRegistry(9).stream("b").random()
    for _ in range(100):
        registry.stream("a").random()
    assert registry.stream("b").random() == expected
