"""Unit tests for the SACK range set and block selection."""

from repro.net.tcp.sack import RangeSet, select_sack_blocks


class TestRangeSet:
    def test_add_and_iterate(self):
        ranges = RangeSet()
        ranges.add(10, 20)
        ranges.add(30, 40)
        assert list(ranges) == [(10, 20), (30, 40)]

    def test_empty_range_ignored(self):
        ranges = RangeSet()
        ranges.add(10, 10)
        ranges.add(10, 5)
        assert not ranges

    def test_merge_overlapping(self):
        ranges = RangeSet([(10, 20), (15, 30)])
        assert list(ranges) == [(10, 30)]

    def test_merge_adjacent(self):
        ranges = RangeSet([(10, 20), (20, 30)])
        assert list(ranges) == [(10, 30)]

    def test_merge_spanning_several(self):
        ranges = RangeSet([(0, 5), (10, 15), (20, 25)])
        ranges.add(4, 21)
        assert list(ranges) == [(0, 25)]

    def test_insert_between(self):
        ranges = RangeSet([(0, 5), (20, 25)])
        ranges.add(10, 15)
        assert list(ranges) == [(0, 5), (10, 15), (20, 25)]

    def test_contains_point(self):
        ranges = RangeSet([(10, 20)])
        assert ranges.contains_point(10)
        assert ranges.contains_point(19)
        assert not ranges.contains_point(20)
        assert not ranges.contains_point(9)

    def test_covers(self):
        ranges = RangeSet([(10, 30)])
        assert ranges.covers(10, 30)
        assert ranges.covers(15, 25)
        assert not ranges.covers(5, 15)
        assert not ranges.covers(25, 35)
        assert ranges.covers(5, 5)  # empty range trivially covered

    def test_coverage_partial(self):
        ranges = RangeSet([(10, 20), (30, 40)])
        assert ranges.coverage(0, 50) == 20
        assert ranges.coverage(15, 35) == 10
        assert ranges.coverage(20, 30) == 0

    def test_remove_below(self):
        ranges = RangeSet([(10, 20), (30, 40)])
        ranges.remove_below(15)
        assert list(ranges) == [(15, 20), (30, 40)]
        ranges.remove_below(25)
        assert list(ranges) == [(30, 40)]

    def test_first_gap(self):
        ranges = RangeSet([(10, 20), (30, 40)])
        assert ranges.first_gap(0, 50) == (0, 10)
        assert ranges.first_gap(10, 50) == (20, 30)
        assert ranges.first_gap(30, 40) is None
        assert ranges.first_gap(40, 50) == (40, 50)

    def test_gaps(self):
        ranges = RangeSet([(10, 20), (30, 40)])
        assert ranges.gaps(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert ranges.gaps(10, 40) == [(20, 30)]
        assert RangeSet().gaps(5, 8) == [(5, 8)]

    def test_max_end(self):
        assert RangeSet().max_end() == 0
        assert RangeSet([(10, 20), (30, 40)]).max_end() == 40

    def test_clear(self):
        ranges = RangeSet([(1, 2)])
        ranges.clear()
        assert not ranges


class TestSelectSackBlocks:
    def test_limit_three(self):
        ooo = RangeSet([(10, 20), (30, 40), (50, 60), (70, 80)])
        blocks = select_sack_blocks(ooo)
        assert len(blocks) == 3

    def test_recent_first(self):
        ooo = RangeSet([(10, 20), (30, 40), (50, 60)])
        blocks = select_sack_blocks(ooo, recent_seqs=[55, 32])
        assert blocks[0] == (50, 60)
        assert blocks[1] == (30, 40)

    def test_recent_rotation_covers_all_ranges(self):
        """With >3 ranges, recency ordering must let every range appear
        across successive ACKs (the sender-starvation regression)."""
        ooo = RangeSet([(10, 20), (30, 40), (50, 60), (70, 80)])
        first = select_sack_blocks(ooo, recent_seqs=[75])
        assert (70, 80) in first
        second = select_sack_blocks(ooo, recent_seqs=[15, 75])
        assert (10, 20) == second[0]

    def test_duplicate_recent_seqs_deduped(self):
        ooo = RangeSet([(10, 20)])
        blocks = select_sack_blocks(ooo, recent_seqs=[12, 15, 11])
        assert blocks == ((10, 20),)

    def test_empty(self):
        assert select_sack_blocks(RangeSet()) == ()
