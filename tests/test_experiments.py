"""End-to-end tests of the experiment harness (§III-C testbed)."""

import pytest

from repro.experiments import ExperimentConfig, run_paired, run_transfer


def small_config(**kwargs):
    defaults = dict(corpus="file1", file_size=60 * 1460, corpus_seed=3,
                    seed=5, time_limit=300.0)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestBaseline:
    def test_clean_baseline_completes(self):
        result = run_transfer(small_config(policy=None))
        assert result.completed
        assert not result.dre_enabled
        assert result.download_time is not None
        assert result.perceived_loss_rate == 0.0

    def test_baseline_under_loss_completes(self):
        result = run_transfer(small_config(policy=None, loss_rate=0.05))
        assert result.completed
        assert result.server_retransmissions > 0

    def test_content_verification(self):
        result = run_transfer(small_config(policy=None, verify_content=True))
        assert result.outcome.content_ok is True

    def test_throughput_bounded_by_shaper(self):
        """A 60-segment file at 1 MB/s cannot finish faster than its
        serialisation time."""
        result = run_transfer(small_config(policy=None))
        wire_time = result.forward_bytes_on_link / 1_000_000.0
        assert result.download_time >= wire_time * 0.95


class TestDreTransfers:
    def test_clean_dre_saves_bytes(self):
        dre, baseline = run_paired(small_config(policy="cache_flush"))
        assert dre.completed and baseline.completed
        assert dre.forward_bytes_on_link < 0.75 * baseline.forward_bytes_on_link
        assert dre.download_time < baseline.download_time

    def test_dre_content_correct_under_loss(self):
        result = run_transfer(small_config(policy="cache_flush",
                                           loss_rate=0.03,
                                           verify_content=True))
        assert result.completed
        assert result.outcome.content_ok is True

    def test_naive_stalls_under_loss(self):
        """§IV: the naive scheme livelocks after the first loss."""
        result = run_transfer(small_config(policy="naive", loss_rate=0.08))
        assert result.stalled
        assert result.fraction_retrieved < 1.0

    def test_naive_clean_channel_works(self):
        result = run_transfer(small_config(policy="naive",
                                           verify_content=True))
        assert result.completed and result.outcome.content_ok

    @pytest.mark.parametrize("policy,kwargs", [
        ("cache_flush", {}),
        ("tcp_seq", {}),
        ("k_distance", {"k": 8}),
        ("informed_marking", {}),
        ("ack_gated", {}),
        ("nack_recovery", {}),
        ("adaptive_k", {}),
    ])
    def test_robust_policies_survive_loss(self, policy, kwargs):
        result = run_transfer(small_config(
            policy=policy, policy_kwargs=kwargs, loss_rate=0.03,
            verify_content=True))
        assert result.completed, (policy, result.outcome.close_reason)
        assert result.outcome.content_ok is True

    def test_perceived_loss_amplification(self):
        """§VII: dependencies make perceived loss exceed channel loss."""
        result = run_transfer(small_config(policy="tcp_seq", loss_rate=0.05))
        assert result.perceived_loss_rate > 0.05

    def test_corruption_survivable_with_cache_flush(self):
        result = run_transfer(small_config(policy="cache_flush",
                                           corrupt_rate=0.02,
                                           verify_content=True))
        assert result.completed and result.outcome.content_ok

    def test_reordering_survivable_with_cache_flush(self):
        result = run_transfer(small_config(policy="cache_flush",
                                           reorder_rate=0.05,
                                           verify_content=True))
        assert result.completed and result.outcome.content_ok


class TestHarness:
    def test_with_updates_copies(self):
        config = small_config()
        updated = config.with_updates(loss_rate=0.07)
        assert updated.loss_rate == 0.07
        assert config.loss_rate == 0.0
        assert updated is not config

    def test_run_paired_requires_dre(self):
        with pytest.raises(ValueError):
            run_paired(small_config(policy=None))

    def test_determinism_same_seed(self):
        a = run_transfer(small_config(policy="cache_flush", loss_rate=0.02))
        b = run_transfer(small_config(policy="cache_flush", loss_rate=0.02))
        assert a.download_time == b.download_time
        assert a.forward_bytes_on_link == b.forward_bytes_on_link

    def test_different_seed_different_run(self):
        a = run_transfer(small_config(policy="cache_flush", loss_rate=0.05,
                                      seed=1))
        b = run_transfer(small_config(policy="cache_flush", loss_rate=0.05,
                                      seed=2))
        assert (a.download_time != b.download_time
                or a.forward_bytes_on_link != b.forward_bytes_on_link)

    def test_cache_window_limit_applies(self):
        result = run_transfer(small_config(policy="cache_flush",
                                           cache_max_packets=4))
        assert result.completed
        # With a 4-packet cache the long-range redundancy is invisible:
        # savings shrink relative to the unlimited cache.
        unlimited = run_transfer(small_config(policy="cache_flush"))
        assert result.forward_bytes_on_link > unlimited.forward_bytes_on_link
