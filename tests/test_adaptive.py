"""Tests for the loss-rate estimator behind the adaptive policy."""

import pytest

from repro.core.adaptive import AdaptiveKDistancePolicy, LossRateEstimator


def test_clean_stream_estimate_decays_to_zero():
    estimator = LossRateEstimator(alpha=0.1, initial=0.5)
    for seq in range(0, 100 * 1460, 1460):
        estimator.observe(("f",), seq)
    assert estimator.estimate < 0.01
    assert estimator.retransmissions == 0


def test_retransmissions_raise_estimate():
    estimator = LossRateEstimator(alpha=0.2)
    estimator.observe(("f",), 0)
    estimator.observe(("f",), 1460)
    assert estimator.observe(("f",), 0) is True
    assert estimator.estimate > 0.1


def test_equal_seq_counts_as_retransmission():
    estimator = LossRateEstimator(alpha=0.2)
    estimator.observe(("f",), 100)
    assert estimator.observe(("f",), 100) is True


def test_flows_independent():
    estimator = LossRateEstimator()
    estimator.observe(("a",), 99999)
    assert estimator.observe(("b",), 0) is False


def test_non_tcp_ignored():
    estimator = LossRateEstimator()
    assert estimator.observe(("f",), None) is False
    assert estimator.observations == 0


def test_recommended_k_tracks_estimate():
    estimator = LossRateEstimator(initial=0.1)
    assert estimator.recommended_k(target=0.5) == 5
    estimator.estimate = 0.01
    assert estimator.recommended_k(target=0.5) == 50
    estimator.estimate = 0.0
    assert estimator.recommended_k(k_max=64) == 64
    estimator.estimate = 0.9
    assert estimator.recommended_k(k_min=2) == 2


def test_invalid_alpha():
    with pytest.raises(ValueError):
        LossRateEstimator(alpha=0.0)


def test_policy_reexported():
    assert AdaptiveKDistancePolicy.name == "adaptive_k"
