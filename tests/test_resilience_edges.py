"""Resilience timing edges, driven by the chaos fault primitives.

Three corners the failover tests don't reach: the resync client
exhausting its retry budget while the control channel stays black, the
heartbeat clock continuing to tick through degraded mode, and an epoch
bump racing a still-in-flight encoded packet.
"""

from repro.app.transfer import FileClient, FileServer
from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.sim.faults import (FaultInjector, all_of, control_blackout,
                              match_time_window, schedule_gateway_restart)
from repro.workload.redundancy import (DependencyFileSpec,
                                       generate_dependency_file)

#: Long-range redundancy: a cold decoder cache stays broken until the
#: resync protocol repairs it (see test_gateway_failover).
DATA = generate_dependency_file(DependencyFileSpec(
    size=250 * 1460, avg_dependencies=3.0, redundancy=0.5,
    history_window=300, locality_scale=100.0, seed=7))

#: Fast protocol tunables so every edge fits in ~1 s simulated.  The
#: retry cap is lowered so exhaustion (0.05 + 0.1 + 0.2 s of backoff)
#: happens inside a sub-second blackout.
RESILIENCE_KWARGS = dict(heartbeat_interval=0.02, heartbeat_timeout=0.06,
                         resync_timeout=0.05, resync_grace=0.02,
                         resync_max_retries=2, watchdog_window=8)


def build(seed=5):
    config = ExperimentConfig(
        corpus="file1", policy="tcp_seq", seed=seed,
        tcp_max_retries=8, tcp_min_rto=0.05, tcp_max_rto=0.5,
        time_limit=30.0, resilience=True,
        resilience_kwargs=RESILIENCE_KWARGS)
    testbed = build_testbed(config)
    FileServer(testbed.server_stack, {FILE_NAME: DATA})
    client = FileClient(testbed.client_stack, testbed.sim)
    # No sim.stop() on completion: the edges under test are timer-driven
    # (retry backoff, heartbeat ticks, delayed deliveries) and must keep
    # running after the transfer itself is done.
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(DATA))
    return testbed, outcome


def blackout(testbed, start, end):
    injectors = [FaultInjector(testbed.bottleneck_forward),
                 FaultInjector(testbed.bottleneck_reverse)]
    control_blackout(injectors, start, end)
    return injectors


class TestResyncRetryExhaustion:
    def test_cap_reached_while_control_stays_black(self):
        """Every resync request disappears into the blackout: the client
        must burn its retries, give up cleanly (resync_failures), and
        leave the door open for a later attempt rather than spinning."""
        testbed, outcome = build()
        blackout(testbed, 0.1, 10.0)
        decoder = testbed.gateways.decoder
        testbed.sim.at(0.15, decoder.resilience.start_resync)
        testbed.sim.run(until=2.0)

        stats = decoder.resilience.stats
        assert stats.resync_failures >= 1
        assert stats.resyncs_completed == 0
        assert not decoder.resilience.resyncing     # gave up, not stuck
        # The encoder degraded into pass-through (no heartbeat acks), so
        # raw TCP still carried the transfer home.
        assert outcome.completed

    def test_resync_succeeds_once_control_returns(self):
        """Same exhaustion, but the blackout lifts: the next trigger
        (the watchdog, here) must start a *fresh* attempt that lands."""
        testbed, outcome = build()
        blackout(testbed, 0.1, 0.6)
        decoder = testbed.gateways.decoder
        testbed.sim.at(0.15, decoder.resilience.start_resync)
        testbed.sim.run(until=2.0)

        stats = decoder.resilience.stats
        assert stats.resync_failures >= 1
        assert not testbed.gateways.encoder.resilience.stats.degraded
        assert outcome.completed


class TestHeartbeatsDuringDegradedMode:
    def test_ticks_continue_while_degraded(self):
        """Degraded mode is probing, not dead: the heartbeat clock keeps
        ticking through the outage — that is what notices the peer's
        return — and recovery follows the blackout end."""
        testbed, outcome = build()
        blackout(testbed, 0.1, 0.7)
        encoder = testbed.gateways.encoder
        probes = {}

        def probe(tag):
            stats = encoder.resilience.stats
            probes[tag] = (stats.degraded, stats.heartbeats_sent)

        testbed.sim.at(0.35, probe, "early")
        testbed.sim.at(0.65, probe, "late")
        testbed.sim.run(until=2.0)

        assert probes["early"][0] and probes["late"][0]   # degraded mid-out
        assert probes["late"][1] > probes["early"][1]     # still ticking
        stats = encoder.resilience.stats
        assert not stats.degraded                         # recovered
        assert stats.degraded_time > 0
        assert outcome.completed


class TestEpochBumpRace:
    def test_in_flight_old_epoch_packet_is_gated(self):
        """A decoder restart forces a resync (epoch 0 -> 1) while some
        encoded packets stamped with epoch 0 are held up on the wire by
        a re-order fault.  When they finally land the decoder must gate
        them on the epoch stamp — decoding them against the new cache
        generation would mis-decode — and it must not crash or stall."""
        testbed, outcome = build()
        schedule_gateway_restart(testbed.sim, testbed.gateways.decoder,
                                 at=0.12, downtime=0.02)
        # Hold back every other data packet offered in the window around
        # the restart long enough to land after the resync ack.
        counter = {"seen": 0}

        def every_other_data(pkt, index):
            segment = pkt.tcp
            if segment is None or not segment.data:
                return False
            counter["seen"] += 1
            return counter["seen"] % 2 == 0

        injector = FaultInjector(testbed.bottleneck_forward)
        sim = testbed.sim
        injector.reorder_when(
            all_of(match_time_window(lambda: sim.now, 0.1, 0.4),
                   every_other_data),
            extra_delay=0.3)
        testbed.sim.run(until=5.0)

        stats = testbed.gateways.decoder.resilience.stats
        assert stats.epoch_mismatch_dropped >= 1
        assert outcome.completed
        assert not testbed.gateways.decoder.resilience.resyncing
