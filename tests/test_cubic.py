"""Tests for CUBIC congestion control and the reno/cubic ablation."""

import pytest

from repro.net.tcp import CubicCongestionControl, make_congestion_control
from repro.net.tcp.congestion import RenoCongestionControl

MSS = 1460


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(clock=None):
    return CubicCongestionControl(MSS, initial_cwnd_segments=2,
                                  clock=clock or FakeClock())


class TestFactory:
    def test_reno(self):
        cc = make_congestion_control("reno", MSS)
        assert type(cc) is RenoCongestionControl

    def test_cubic(self):
        cc = make_congestion_control("cubic", MSS, clock=lambda: 0.0)
        assert isinstance(cc, CubicCongestionControl)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_congestion_control("vegas", MSS)


class TestCubicBehaviour:
    def test_slow_start_same_as_reno(self):
        cc = make()
        assert cc.in_slow_start
        before = cc.cwnd
        cc.on_new_ack(MSS, 0)
        assert cc.cwnd == before + MSS

    def test_multiplicative_decrease_is_beta(self):
        cc = make()
        cc.cwnd = 20 * MSS
        cc.ssthresh = 10 * MSS  # out of slow start
        cc.on_fast_retransmit(flight_size=20 * MSS, snd_nxt=0)
        assert cc.ssthresh == int(20 * MSS * 0.7)
        assert cc.in_fast_recovery

    def test_concave_recovery_towards_w_max(self):
        clock = FakeClock()
        cc = make(clock)
        cc.cwnd = 30 * MSS
        cc.ssthresh = MSS  # force CA
        cc.on_fast_retransmit(flight_size=30 * MSS, snd_nxt=100)
        cc.on_new_ack(0, snd_una=101)          # exit recovery (full ACK)
        assert not cc.in_fast_recovery
        start = cc.cwnd
        # Feed ACKs over simulated time: the window climbs back toward
        # W_max = 30 segments.
        grown = []
        for step in range(200):
            clock.now += 0.01
            cc.on_new_ack(MSS, snd_una=0)
            grown.append(cc.cwnd)
        assert grown[-1] > start
        assert grown[-1] >= int(0.85 * 30 * MSS)

    def test_convex_probing_beyond_w_max(self):
        clock = FakeClock()
        cc = make(clock)
        cc.cwnd = 10 * MSS
        cc.ssthresh = MSS
        cc.on_timeout(flight_size=10 * MSS)
        cc.cwnd = cc.ssthresh  # skip slow start for the test
        for _ in range(600):
            clock.now += 0.01
            cc.on_new_ack(MSS, snd_una=0)
        # Long after K the cubic term dominates and the window exceeds
        # the old W_max.
        assert cc.cwnd > 10 * MSS

    def test_timeout_collapses_window(self):
        cc = make()
        cc.cwnd = 16 * MSS
        cc.on_timeout(flight_size=16 * MSS)
        assert cc.cwnd == MSS
        assert cc.ssthresh == int(16 * MSS * 0.7)


class TestEndToEnd:
    def test_transfer_completes_with_cubic(self):
        from repro.experiments import ExperimentConfig, run_transfer

        result = run_transfer(ExperimentConfig(
            policy="cache_flush", file_size=60 * 1460, seed=5,
            tcp_congestion="cubic", verify_content=True))
        assert result.completed
        assert result.outcome.content_ok is True

    def test_cubic_survives_loss(self):
        from repro.experiments import ExperimentConfig, run_transfer

        result = run_transfer(ExperimentConfig(
            policy="cache_flush", file_size=60 * 1460, seed=5,
            loss_rate=0.05, tcp_congestion="cubic", verify_content=True))
        assert result.completed

    def test_unknown_congestion_rejected(self):
        from repro.experiments import ExperimentConfig, run_transfer

        with pytest.raises(ValueError):
            run_transfer(ExperimentConfig(policy=None, file_size=14600,
                                          tcp_congestion="vegas"))
