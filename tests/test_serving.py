"""Serving mode: Zipf sampler, sessions, engine goldens, 10k soak.

The property tests pin the statistical and determinism contracts of
the serving workload; the golden test freezes the end-to-end numbers
of one small fixed run so a cache/encoder change that shifts serving
results is caught deliberately; the soak run holds the sharded-cache
invariants and the no-per-flow-leak bound under 10k requests of churn.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.sweep import parallel_map
from repro.serving import (ServingSpec, generate_sessions, run_serving,
                           run_serving_grid)
from repro.serving.engine import deterministic_report
from repro.serving.sessions import SessionSpec, session_digest
from repro.serving.sweep import (serving_bench_payload,
                                 validate_bench_serving,
                                 write_serving_bench)
from repro.workload.catalog import (CatalogSpec, ContentCatalog,
                                    zipf_sample_counts)


# ---------------------------------------------------------------------------
# Zipf sampler matches the theoretical pmf (chi-square)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("alpha", [0.6, 0.8, 1.0, 1.2])
def test_zipf_sampler_matches_pmf(alpha):
    """Observed draw frequencies fit rank^-alpha within chi-square.

    With k-1 degrees of freedom the chi-square statistic concentrates
    around k-1 (sd ~ sqrt(2k)); a sampler drawing from the wrong
    distribution blows through the 2*(k-1) ceiling immediately, while
    a correct one stays near it for any seed.
    """
    spec = CatalogSpec(n_contents=50, alpha=alpha, seed=11)
    n_samples = 60_000
    counts = zipf_sample_counts(spec, n_samples)
    pmf = ContentCatalog(spec).pmf()
    chi2 = sum((counts[i] - n_samples * pmf[i]) ** 2 / (n_samples * pmf[i])
               for i in range(spec.n_contents))
    dof = spec.n_contents - 1
    assert chi2 < 2.0 * dof, (
        f"alpha={alpha}: chi-square {chi2:.1f} vs {dof} dof")


@given(alpha=st.floats(0.0, 1.5), seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_zipf_sampler_total_and_support(alpha, seed):
    """Every draw lands in [0, n); counts sum to the sample size."""
    spec = CatalogSpec(n_contents=20, alpha=alpha, seed=seed)
    counts = zipf_sample_counts(spec, 2_000)
    assert counts.sum() == 2_000
    assert len(counts) == 20
    # Monotone pmf: rank 0 is the most popular content in expectation.
    pmf = ContentCatalog(spec).pmf()
    assert all(pmf[i] >= pmf[i + 1] - 1e-12 for i in range(19))
    assert math.isclose(float(pmf.sum()), 1.0, rel_tol=1e-9)


def test_catalog_objects_deterministic_and_distinct():
    spec = CatalogSpec(n_contents=10, seed=5)
    a, b = ContentCatalog(spec), ContentCatalog(spec)
    for cid in range(10):
        assert a.object_bytes(cid) == b.object_bytes(cid)
        assert len(a.object_bytes(cid)) == a.size_of(cid)
    assert a.object_bytes(0) != a.object_bytes(1)
    assert a.content_id(a.name_of(7)) == 7
    with pytest.raises(KeyError):
        a.content_id("c999")
    with pytest.raises(KeyError):
        a.content_id("bogus")


# ---------------------------------------------------------------------------
# session generator: deterministic across reruns and worker counts
# ---------------------------------------------------------------------------

def _session_digest_job(seed):
    """Module-level so the process pool can pickle it."""
    catalog = ContentCatalog(CatalogSpec(n_contents=40, seed=seed))
    requests = generate_sessions(
        SessionSpec(users=30, seed=seed), catalog)
    return session_digest(requests)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_sessions_byte_identical_across_reruns(seed):
    catalog = ContentCatalog(CatalogSpec(n_contents=40, seed=seed))
    spec = SessionSpec(users=25, seed=seed)
    first = generate_sessions(spec, catalog)
    second = generate_sessions(spec, catalog)
    assert first == second
    assert session_digest(first) == session_digest(second)
    # Time-ordered, non-negative, content ids in range.
    assert all(a.time <= b.time for a, b in zip(first, first[1:]))
    assert all(0 <= r.content_id < 40 and r.time >= 0 for r in first)


def test_sessions_byte_identical_across_worker_counts():
    seeds = [3, 7, 11]
    serial = parallel_map(_session_digest_job, seeds)
    pooled = parallel_map(_session_digest_job, seeds, workers=2)
    assert serial == pooled


def test_sessions_respect_max_requests_and_users():
    catalog = ContentCatalog(CatalogSpec(n_contents=10, seed=1))
    capped = generate_sessions(
        SessionSpec(users=50, seed=1, max_requests=20), catalog)
    uncapped = generate_sessions(SessionSpec(users=50, seed=1), catalog)
    assert len(capped) == 20
    assert capped == uncapped[:20]
    assert len({r.user for r in uncapped}) == 50


# ---------------------------------------------------------------------------
# golden end-to-end runs (seed 7, 50 users, 200 contents)
# ---------------------------------------------------------------------------

def test_serving_golden_run():
    """Frozen numbers for the canonical small serve-sim.

    Any cache/encoder/session change that shifts serving results must
    update these constants consciously, with the shift explained in
    the PR — that is the point of the test.
    """
    report = run_serving(ServingSpec(users=50, n_contents=200, seed=7))
    assert report["requests"]["total"] == 85
    assert report["requests"]["completed"] == 85
    assert report["requests"]["timeouts"] == 0
    assert report["requests"]["unfinished"] == 0
    assert report["steady"]["hit_ratio"] == pytest.approx(
        0.8203125, rel=1e-12)
    assert report["steady"]["bytes_saved_ratio"] == pytest.approx(
        0.42451746521818334, rel=1e-9)
    assert report["cache"]["evictions"] == 0
    assert report["steady"]["samples"] == 68


def test_serving_golden_run_under_memory_pressure():
    """Same run with a 64 KB budget: evictions happen, hits survive."""
    report = run_serving(ServingSpec(users=50, n_contents=200, seed=7,
                                     cache_bytes=64 * 1024, cache_shards=4))
    assert report["requests"]["completed"] == 85
    assert report["cache"]["evictions"] == 680
    assert report["steady"]["hit_ratio"] == pytest.approx(
        0.8151041666666666, rel=1e-12)
    assert report["steady"]["bytes_saved_ratio"] == pytest.approx(
        0.4085336503888084, rel=1e-9)
    # Per-shard occupancy never exceeds its split budget.
    for shard in report["cache"]["shards"]:
        assert shard["bytes"] <= shard["byte_budget"]


def test_serving_report_is_deterministic():
    spec = ServingSpec(users=20, n_contents=50, seed=13)
    first = json.dumps(deterministic_report(run_serving(spec)),
                       sort_keys=True)
    second = json.dumps(deterministic_report(run_serving(spec)),
                        sort_keys=True)
    assert first == second


def test_serving_grid_serial_parallel_bit_identical(tmp_path):
    base = ServingSpec(users=15, n_contents=40, mean_object_bytes=2048,
                       seed=7)
    specs = [base, ServingSpec(users=25, n_contents=40,
                               mean_object_bytes=2048, seed=7)]
    serial = run_serving_grid(specs)
    pooled = run_serving_grid(specs, workers=2)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(pooled, sort_keys=True)

    path = tmp_path / "BENCH_serving.json"
    doc = write_serving_bench(serial, str(path))
    validate_bench_serving(doc)
    validate_bench_serving(json.loads(path.read_text()))
    # The sentinel's contract: summary carries the watched metric.
    assert "steady_hit_ratio" in doc["summary"]
    # Second write folds the first into history.
    doc2 = write_serving_bench(serial, str(path))
    assert len(doc2["history"]) == 1
    assert doc2["history"][0]["steady_hit_ratio"] == \
        doc["summary"]["steady_hit_ratio"]


def test_bench_serving_validation_rejects_garbage():
    with pytest.raises(ValueError):
        validate_bench_serving({"schema": "nope"})
    with pytest.raises(ValueError):
        validate_bench_serving({"schema": "bench_serving/v1", "cells": []})
    good = serving_bench_payload(
        [deterministic_report(run_serving(
            ServingSpec(users=5, n_contents=10, seed=2)))])
    validate_bench_serving(good)
    bad = dict(good)
    bad["summary"] = {}
    with pytest.raises(ValueError):
        validate_bench_serving(bad)


# ---------------------------------------------------------------------------
# soak: 10k requests, invariants armed, churn leaks nothing
# ---------------------------------------------------------------------------

def test_serving_soak_10k_requests_with_invariants():
    """10k requests of churning users through a tight sharded cache.

    ``verify=True`` arms per-flow content checks and the serving
    oracle (per-shard budgets respected, fingerprints in exactly one
    shard, global count consistent) every simulated second — any
    violation raises InvariantViolation and fails the run.  The pool
    bound is the leak check: without connection release the stacks
    would peak at exactly 2 table entries per request (20k); staying
    well under that proves churned flows are actually pruned.
    """
    spec = ServingSpec(users=6000, n_contents=2000, mean_object_bytes=1200,
                       max_requests=10_000, cache_bytes=256 * 1024,
                       cache_shards=8, arrival_rate=400.0, linger=2.0,
                       seed=3, verify=True)
    report = run_serving(spec)
    requests = report["requests"]
    assert requests["total"] == 10_000
    assert requests["completed"] == 10_000
    assert requests["unfinished"] == 0
    assert requests["content_mismatches"] == 0
    # The oracle actually ran, repeatedly, and never raised.
    assert report["oracle_checks"] > 10
    # Memory bound held under real eviction pressure.
    assert report["cache"]["evictions"] > 1_000
    assert report["cache"]["bytes_used"] <= report["cache"]["byte_budget"]
    for shard in report["cache"]["shards"]:
        assert shard["bytes"] <= shard["byte_budget"]
    # Churn leak bound: high-water well below the no-release ceiling.
    pool = report["pool"]
    assert pool["released"] > 5_000
    assert pool["high_water"] < 2 * requests["total"] * 0.75
    # And the cache still earns its keep in steady state.
    assert report["steady"]["hit_ratio"] > 0.2
