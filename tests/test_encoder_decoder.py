"""Unit/integration tests for the encoder/decoder pair."""

import random

from repro.core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                        DecodeStatus, FingerprintScheme)
from repro.core.policies import DecoderPolicy, NaivePolicy, PacketMeta
from repro.net.checksum import payload_checksum

FLOW = ("10.0.2.1", 80, "10.0.1.1", 5000)


def make_pair(scheme=None, cache_kwargs=None):
    scheme = scheme or FingerprintScheme()
    kwargs = cache_kwargs or {}
    encoder = ByteCachingEncoder(scheme, ByteCache(**kwargs), NaivePolicy())
    decoder = ByteCachingDecoder(scheme, ByteCache(**kwargs), DecoderPolicy())
    return encoder, decoder


def meta(i, seq=None):
    return PacketMeta(packet_id=i, flow=FLOW,
                      tcp_seq=seq if seq is not None else i * 1460, counter=i)


def random_payload(rng, n=1460):
    return bytes(rng.randrange(256) for _ in range(n))


def roundtrip(encoder, decoder, payload, packet_meta):
    result = encoder.encode(payload, packet_meta)
    decoded = decoder.decode(result.data, packet_meta,
                             checksum=payload_checksum(payload))
    return result, decoded


class TestRoundtrip:
    def test_fresh_content_passes_through(self):
        encoder, decoder = make_pair()
        rng = random.Random(0)
        payload = random_payload(rng)
        result, decoded = roundtrip(encoder, decoder, payload, meta(1))
        assert not result.encoded
        assert decoded.status is DecodeStatus.OK_RAW
        assert decoded.payload == payload

    def test_repeated_content_compresses_and_decodes(self):
        encoder, decoder = make_pair()
        rng = random.Random(1)
        base = random_payload(rng)
        roundtrip(encoder, decoder, base, meta(1))
        overlap = base[:800] + random_payload(rng, 660)
        result, decoded = roundtrip(encoder, decoder, overlap, meta(2))
        assert result.encoded
        assert result.bytes_out < result.bytes_in
        assert decoded.status is DecodeStatus.OK_DECODED
        assert decoded.payload == overlap

    def test_identical_retransmission_compresses_to_nearly_nothing(self):
        encoder, decoder = make_pair()
        rng = random.Random(2)
        payload = random_payload(rng)
        roundtrip(encoder, decoder, payload, meta(1))
        result, decoded = roundtrip(encoder, decoder, payload, meta(2))
        assert result.encoded
        assert result.bytes_out < 40
        assert decoded.payload == payload

    def test_long_stream_roundtrip(self):
        encoder, decoder = make_pair()
        rng = random.Random(3)
        chunks = [random_payload(rng, 400) for _ in range(6)]
        for i in range(40):
            payload = (chunks[rng.randrange(6)] + random_payload(rng, 200)
                       + chunks[rng.randrange(6)])
            _, decoded = roundtrip(encoder, decoder, payload, meta(i))
            assert decoded.ok
            assert decoded.payload == payload

    def test_multiple_regions_in_one_packet(self):
        encoder, decoder = make_pair()
        rng = random.Random(4)
        a, b = random_payload(rng, 700), random_payload(rng, 700)
        roundtrip(encoder, decoder, a, meta(1))
        roundtrip(encoder, decoder, b, meta(2))
        mixed = a[:300] + random_payload(rng, 100) + b[100:500]
        result, decoded = roundtrip(encoder, decoder, mixed, meta(3))
        assert len(result.regions) >= 2
        assert decoded.payload == mixed

    def test_dependencies_tracked(self):
        encoder, decoder = make_pair()
        rng = random.Random(5)
        a = random_payload(rng, 700)
        b = random_payload(rng, 700)
        roundtrip(encoder, decoder, a, meta(10))
        roundtrip(encoder, decoder, b, meta(11))
        mixed = a[:300] + b[:300] + random_payload(rng, 100)
        result, _ = roundtrip(encoder, decoder, mixed, meta(12))
        assert result.dependencies == {10, 11}


class TestLossBehaviour:
    def test_missing_dependency_is_undecodable(self):
        """§IV-A t1-t3: the carrier packet is lost, the next packet's
        encoding references it, the decoder must drop."""
        encoder, decoder = make_pair()
        rng = random.Random(6)
        payload = random_payload(rng)
        lost = encoder.encode(payload, meta(1))       # never decoded
        assert lost is not None
        result = encoder.encode(payload, meta(2))     # encoded against #1
        assert result.encoded
        decoded = decoder.decode(result.data, meta(2),
                                 checksum=payload_checksum(payload))
        assert decoded.status is DecodeStatus.MISSING
        assert decoded.missing
        assert decoder.stats.missing == 1

    def test_stale_entry_caught_by_checksum(self):
        """Encoder replaced an entry with a packet the decoder missed:
        the fingerprint resolves to wrong bytes and the end-to-end
        checksum must catch it."""
        scheme = FingerprintScheme()
        encoder, decoder = make_pair(scheme)
        rng = random.Random(7)
        shared = random_payload(rng, 600)
        first = shared + random_payload(rng, 300)
        # Delivered: both caches hold `first`.
        r1 = encoder.encode(first, meta(1))
        decoder.decode(r1.data, meta(1), checksum=payload_checksum(first))
        # Same shared chunk at a different offset — lost in transit, so
        # only the encoder replaces its entries.
        second = random_payload(rng, 100) + shared + random_payload(rng, 200)
        encoder.encode(second, meta(2))
        # Third packet references the shared chunk; the encoder's entry
        # points into `second`, the decoder's into `first`.
        third = shared[:400] + random_payload(rng, 500)
        r3 = encoder.encode(third, meta(3))
        if r3.encoded:
            decoded = decoder.decode(r3.data, meta(3),
                                     checksum=payload_checksum(third))
            assert decoded.status in (DecodeStatus.CHECKSUM_MISMATCH,
                                      DecodeStatus.MISSING,
                                      DecodeStatus.MALFORMED)
            assert decoded.payload is None

    def test_history_retry_rescues_one_generation_lag(self):
        """The decoder's fingerprint entry was replaced by a packet the
        *encoder* hadn't processed when it encoded — the displaced entry
        still reconstructs correctly (the ACK-gating race, generalised)."""
        scheme = FingerprintScheme()
        encoder, decoder = make_pair(scheme)
        rng = random.Random(20)
        shared = random_payload(rng, 600)

        first = shared + random_payload(rng, 300)
        r1 = encoder.encode(first, meta(1))
        decoder.decode(r1.data, meta(1), checksum=payload_checksum(first))

        # The encoder, still referencing `first`, encodes a new packet.
        third = shared[:400] + random_payload(rng, 500)
        r3 = encoder.encode(third, meta(3))

        # Before r3 arrives, the decoder processes another copy of the
        # shared chunk at a different offset (replacing its entries).
        second = random_payload(rng, 100) + shared + random_payload(rng, 200)
        # Bypass the encoder: decode a raw-wrapped copy directly.
        from repro.core.wire import wrap_raw
        decoder.decode(wrap_raw(second), meta(2),
                       checksum=payload_checksum(second))

        if r3.encoded:
            outcome = decoder.decode(r3.data, meta(3),
                                     checksum=payload_checksum(third))
            assert outcome.ok
            assert outcome.payload == third
            assert decoder.stats.history_decodes >= 1

    def test_malformed_wire_data_counted(self):
        _, decoder = make_pair()
        result = decoder.decode(b"\x00garbage", meta(1), checksum=0)
        assert result.status is DecodeStatus.MALFORMED
        assert decoder.stats.malformed == 1

    def test_corrupted_raw_payload_caught(self):
        encoder, decoder = make_pair()
        rng = random.Random(8)
        payload = random_payload(rng)
        result = encoder.encode(payload, meta(1))
        damaged = bytearray(result.data)
        damaged[100] ^= 0xFF
        decoded = decoder.decode(bytes(damaged), meta(1),
                                 checksum=payload_checksum(payload))
        assert decoded.status is DecodeStatus.CHECKSUM_MISMATCH


class TestCacheSynchronisation:
    def test_caches_stay_aligned_over_stream(self):
        encoder, decoder = make_pair()
        rng = random.Random(9)
        previous = random_payload(rng)
        for i in range(30):
            payload = previous[:700] + random_payload(rng, 760)
            _, decoded = roundtrip(encoder, decoder, payload, meta(i))
            assert decoded.ok
            previous = payload
        assert len(encoder.cache.table) == len(decoder.cache.table)

    def test_encoder_never_grows_output_beyond_shim(self):
        encoder, _ = make_pair()
        rng = random.Random(10)
        for i in range(20):
            payload = random_payload(rng, rng.randrange(100, 1460))
            result = encoder.encode(payload, meta(i))
            assert result.bytes_out <= result.bytes_in + 2

    def test_net_loss_region_falls_back_to_raw(self):
        """A single tiny region whose field overhead eats the gain must
        not produce a larger-than-raw packet."""
        encoder, decoder = make_pair()
        rng = random.Random(11)
        shared = random_payload(rng, 16)
        # Force many short windows: payload is mostly fresh with one
        # 16-byte repeat (too small to encode: len must exceed 14... the
        # window w=16 > 14 qualifies only after expansion).
        first = shared + random_payload(rng, 500)
        roundtrip(encoder, decoder, first, meta(1))
        second = random_payload(rng, 250) + shared + random_payload(rng, 250)
        result, decoded = roundtrip(encoder, decoder, second, meta(2))
        assert result.bytes_out <= result.bytes_in + 2
        assert decoded.ok and decoded.payload == second


class TestStats:
    def test_encoder_stats_accumulate(self):
        encoder, decoder = make_pair()
        rng = random.Random(12)
        payload = random_payload(rng)
        roundtrip(encoder, decoder, payload, meta(1))
        roundtrip(encoder, decoder, payload, meta(2))
        stats = encoder.stats
        assert stats.packets == 2
        assert stats.packets_encoded == 1
        assert stats.bytes_in == 2 * 1460
        assert stats.matched_bytes > 1400
        assert 0 < stats.compression_ratio < 1

    def test_decoder_stats_accumulate(self):
        encoder, decoder = make_pair()
        rng = random.Random(13)
        payload = random_payload(rng)
        roundtrip(encoder, decoder, payload, meta(1))
        roundtrip(encoder, decoder, payload, meta(2))
        assert decoder.stats.raw == 1
        assert decoder.stats.decoded == 1
        assert decoder.stats.undecodable == 0


def test_bytes_saved_accounts_for_shim_overhead():
    from repro.core.encoder import EncodeResult
    from repro.core.wire import EPOCH_STAMP_SIZE, SHIM_SIZE

    plain = EncodeResult(data=b"x" * 90, encoded=True,
                         bytes_in=100, bytes_out=90)
    assert plain.shim_overhead == SHIM_SIZE
    assert plain.bytes_saved == 100 - (90 - SHIM_SIZE)

    # A resilience-stamped wire format carries one extra byte; the
    # savings accounting must not charge it as eliminated payload.
    stamped = EncodeResult(data=b"x" * 91, encoded=True,
                           bytes_in=100, bytes_out=91,
                           shim_overhead=SHIM_SIZE + EPOCH_STAMP_SIZE)
    assert stamped.bytes_saved == 100 - (91 - SHIM_SIZE - EPOCH_STAMP_SIZE)
    assert stamped.bytes_saved == plain.bytes_saved
