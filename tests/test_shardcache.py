"""ShardedByteCache: routing, budgets, and oracle parity.

The load-bearing property is the hypothesis parity test: in the
no-eviction regime a sharded cache must be observationally equivalent
to one big reference :class:`ByteCache` (dict table) for *any*
interleaving of inserts, lookups, markings and flushes — otherwise the
serving refactor silently changed what the paper's encoder/decoder
see.  The unit tests pin the shard-local behaviours the oracle cannot
express: budget splitting, per-shard eviction, admission, invariants.
"""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import ByteCache
from repro.core.shardcache import ShardedByteCache, shard_of

BIG = 1 << 30

# Value-selection anchors have their low zero_bits (4) bits zero —
# exactly the fingerprints a naive `fp % n` router would collapse.
FPS = [(i * 2654435761 % (1 << 36)) << 4 for i in range(1, 25)]


def make_pair(n_shards):
    """(reference, sharded) with unbounded budgets — pure parity."""
    oracle = ByteCache(BIG, table_kind="dict")
    sharded = ShardedByteCache(BIG, n_shards=n_shards, eviction="fifo")
    return oracle, sharded


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------

def test_shard_routing_spreads_low_bit_zero_fingerprints():
    for n in (2, 4, 8, 16):
        used = {shard_of(fp, n) for fp in FPS}
        assert len(used) > 1, f"all fingerprints collapsed with {n} shards"
        assert all(0 <= s < n for s in used)


def test_shard_routing_is_deterministic():
    assert [shard_of(fp, 8) for fp in FPS] == \
        [shard_of(fp, 8) for fp in FPS]


# ---------------------------------------------------------------------------
# oracle parity under arbitrary interleavings
# ---------------------------------------------------------------------------

fp_st = st.sampled_from(FPS)
op_st = st.one_of(
    st.tuples(st.just("insert"),
              st.binary(min_size=1, max_size=64),
              st.lists(st.tuples(st.integers(0, 48), fp_st), max_size=4)),
    st.tuples(st.just("lookup"), fp_st),
    st.tuples(st.just("previous"), fp_st),
    st.tuples(st.just("mark"), fp_st),
    st.tuples(st.just("flush")),
)


def _entry_view(hit):
    if hit is None:
        return None
    entry, payload = hit
    return (payload, entry.offset, entry.tcp_seq, entry.flow,
            entry.packet_counter, entry.usable)


@given(ops=st.lists(op_st, max_size=60),
       n_shards=st.integers(1, 12))
@settings(max_examples=120, deadline=None)
def test_sharded_cache_parity_with_unsharded_oracle(ops, n_shards):
    oracle, sharded = make_pair(n_shards)
    counter = 0
    for op in ops:
        if op[0] == "insert":
            _, payload, anchors = op
            sid_a = oracle.insert_packet(payload, anchors, tcp_seq=counter,
                                         flow=("f", counter % 3),
                                         packet_counter=counter,
                                         external_id=counter)
            sid_b = sharded.insert_packet(payload, anchors, tcp_seq=counter,
                                          flow=("f", counter % 3),
                                          packet_counter=counter,
                                          external_id=counter)
            assert sid_a == sid_b
            assert oracle.external_id_for(sid_a) == \
                sharded.external_id_for(sid_b)
            counter += 1
        elif op[0] == "lookup":
            assert _entry_view(oracle.lookup(op[1])) == \
                _entry_view(sharded.lookup(op[1]))
            view_a = oracle.lookup_view(op[1])
            view_b = sharded.lookup_view(op[1])
            assert (view_a is None) == (view_b is None)
            if view_a is not None:
                assert bytes(view_a) == bytes(view_b)
        elif op[0] == "previous":
            assert _entry_view(oracle.lookup_previous(op[1])) == \
                _entry_view(sharded.lookup_previous(op[1]))
        elif op[0] == "mark":
            assert oracle.mark_unusable(op[1]) == sharded.mark_unusable(op[1])
        else:
            oracle.flush()
            sharded.flush()
            assert oracle.flushes == sharded.flushes
    # Aggregate views agree at the end of every interleaving.
    assert len(oracle.table) == len(sharded.table)
    assert len(oracle.store) == len(sharded.store)
    assert oracle.store.bytes_used == sharded.store.bytes_used
    assert oracle.table.inserts == sharded.table.inserts
    assert oracle.table.replacements == sharded.table.replacements
    for fp in FPS:
        assert _entry_view(oracle.lookup(fp)) == \
            _entry_view(sharded.lookup(fp))
    assert sharded.check_invariants() == []


# ---------------------------------------------------------------------------
# budgets / eviction / admission (beyond the oracle's reach)
# ---------------------------------------------------------------------------

def test_budget_splits_across_shards_and_bounds_hold():
    cache = ShardedByteCache(8_000, n_shards=4)
    for shard in cache.shards:
        assert shard.store.byte_budget == 2_000
    for i in range(200):
        cache.insert_packet(bytes(100), [(0, FPS[i % len(FPS)])])
    assert cache.store.bytes_used <= 8_000
    for shard in cache.shards:
        assert shard.store.bytes_used <= shard.store.byte_budget
    assert cache.store.evictions > 0
    assert cache.check_invariants() == []


def test_set_byte_budget_rescales_and_evicts():
    cache = ShardedByteCache(16_000, n_shards=4)
    for i in range(100):
        cache.insert_packet(bytes(120), [(0, FPS[i % len(FPS)])])
    evicted = cache.set_byte_budget(4_000)
    assert evicted > 0
    assert cache.byte_budget == 4_000
    for shard in cache.shards:
        assert shard.store.byte_budget == 1_000
        assert shard.store.bytes_used <= 1_000
    assert cache.check_invariants() == []


def test_evict_fraction_and_lazy_invalidation():
    cache = ShardedByteCache(BIG, n_shards=4)
    for i, fp in enumerate(FPS):
        cache.insert_packet(bytes([i]) * 50, [(0, fp)])
    before = len(cache.store)
    assert cache.evict_fraction(1.0) == before
    # Dangling table entries are invalidated lazily on lookup.
    for fp in FPS:
        assert cache.lookup(fp) is None
    assert len(cache.table) == 0
    with pytest.raises(ValueError):
        cache.evict_fraction(1.5)


def test_lru_keeps_hot_payloads_alive():
    # One shard, room for ~2 payloads; touching A repeatedly must evict
    # B, not A (the reason serving defaults to LRU).
    cache = ShardedByteCache(250, n_shards=1, eviction="lru")
    fp_a, fp_b, fp_c = FPS[0], FPS[1], FPS[2]
    cache.insert_packet(b"A" * 100, [(0, fp_a)])
    cache.insert_packet(b"B" * 100, [(0, fp_b)])
    assert cache.lookup(fp_a) is not None   # touch A: now most-recent
    cache.insert_packet(b"C" * 100, [(0, fp_c)])
    assert cache.lookup(fp_a) is not None
    assert cache.lookup(fp_b) is None


def test_probabilistic_admission_is_content_keyed():
    full = ShardedByteCache(BIG, n_shards=4, admission=1.0)
    half_a = ShardedByteCache(BIG, n_shards=4, admission=0.5)
    half_b = ShardedByteCache(BIG, n_shards=4, admission=0.5)
    payloads = [bytes([i]) * 40 for i in range(64)]
    admitted = 0
    for i, payload in enumerate(payloads):
        fp = FPS[i % len(FPS)]
        assert full.insert_packet(payload, [(0, fp)]) != 0
        sid_a = half_a.insert_packet(payload, [(0, fp)])
        sid_b = half_b.insert_packet(payload, [(0, fp)])
        # Content-keyed coin: two caches (think encoder + decoder)
        # always make the same decision for the same bytes.
        assert (sid_a == 0) == (sid_b == 0)
        expected = (zlib.crc32(payload) & 0xFFFFFFFF) <= int(0.5 * 0xFFFFFFFF)
        assert (sid_a != 0) == expected
        admitted += sid_a != 0
    assert 0 < admitted < len(payloads)
    assert half_a.admission_rejected == len(payloads) - admitted


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardedByteCache(0)
    with pytest.raises(ValueError):
        ShardedByteCache(1024, n_shards=0)
    with pytest.raises(ValueError):
        ShardedByteCache(1024, admission=0.0)
    with pytest.raises(ValueError):
        ShardedByteCache(1024, admission=1.5)
    with pytest.raises(ValueError):
        ShardedByteCache(1024).set_byte_budget(-1)


def test_check_invariants_detects_misrouted_fingerprint():
    cache = ShardedByteCache(BIG, n_shards=4)
    fp = FPS[0]
    cache.insert_packet(b"x" * 30, [(0, fp)])
    home = shard_of(fp, 4)
    wrong = (home + 1) % 4
    entry = cache.shards[home].table.get(fp)
    # Manufacture the corruption the oracle exists to catch.
    cache.shards[wrong].table._table[fp] = entry
    problems = cache.check_invariants()
    assert any("owned by shard" in p for p in problems)
    assert any("in two shards" in p for p in problems)


def test_store_and_table_views_for_telemetry_and_oracles():
    cache = ShardedByteCache(BIG, n_shards=4)
    sid = cache.insert_packet(b"y" * 40, [(0, FPS[0]), (8, FPS[1])])
    # Telemetry surface (register_gateway reads these).
    assert len(cache.store) == 1
    assert cache.store.bytes_used == 40
    assert cache.store.evictions == 0
    assert cache.epoch == 0
    # Coherence-oracle surface: side-effect-free merged _data.get.
    assert cache.store._data.get(sid) == b"y" * 40
    assert cache.store._data.get(sid + 999) is None
    entries = list(cache.table.entries())
    assert {e.fingerprint for e in entries} == {FPS[0], FPS[1]}
    occupancy = cache.shard_occupancy()
    assert len(occupancy) == 4
    assert sum(row["payloads"] for row in occupancy) == 1
    assert sum(row["entries"] for row in occupancy) == 2
