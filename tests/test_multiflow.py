"""Tests for inter-flow redundancy and cross-connection poisoning."""

from repro.experiments import ExperimentConfig
from repro.experiments.multiflow import (run_concurrent_fetches,
                                         run_sequential_fetches)


def config(**kwargs) -> ExperimentConfig:
    defaults = dict(corpus="file1", file_size=60 * 1460, corpus_seed=3,
                    policy="cache_flush", seed=5, time_limit=300.0)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestInterFlowRedundancy:
    def test_second_fetch_rides_the_cache(self):
        """§I: inter-flow redundancy — refetching the same object over a
        new connection costs a fraction of the first transfer."""
        result = run_sequential_fetches(config(), n_fetches=2)
        assert result.all_completed
        first, second = result.per_fetch_link_bytes
        assert second < 0.25 * first

    def test_distinct_objects_no_free_lunch(self):
        result = run_sequential_fetches(config(), n_fetches=2,
                                        same_object=False)
        assert result.all_completed
        first, second = result.per_fetch_link_bytes
        assert second > 0.5 * first

    def test_second_fetch_content_correct(self):
        result = run_sequential_fetches(config(), n_fetches=2)
        assert all(outcome.content_ok for outcome in result.outcomes)

    def test_tcp_seq_cross_flow_compression(self):
        """The default TCP-seq policy allows cross-flow references."""
        result = run_sequential_fetches(config(policy="tcp_seq"),
                                        n_fetches=2)
        assert result.all_completed
        first, second = result.per_fetch_link_bytes
        assert second < 0.25 * first

    def test_inter_flow_redundancy_survives_loss(self):
        result = run_sequential_fetches(config(loss_rate=0.02),
                                        n_fetches=2)
        assert result.all_completed
        assert all(outcome.content_ok for outcome in result.outcomes)


class TestConcurrentFlows:
    def test_concurrent_fetches_complete_and_share(self):
        result = run_concurrent_fetches(config(), n_clients=3)
        assert len(result.outcomes) == 3
        assert result.all_completed
        assert all(outcome.content_ok for outcome in result.outcomes)
        # Three copies over the link would cost ~3 file sizes + headers;
        # sharing must bring it well under two.
        file_size = 60 * 1460
        assert result.bytes_on_link < 2.0 * file_size

    def test_concurrent_under_loss_with_cache_flush(self):
        result = run_concurrent_fetches(config(loss_rate=0.02),
                                        n_clients=2)
        assert result.all_completed


class TestVersionUpdate:
    def test_v2_costs_roughly_the_changed_fraction(self):
        """§I "modified content": fetching v2 after v1 pays only for the
        rewritten blocks (8 % here) plus encoding overhead."""
        from repro.experiments.multiflow import run_version_update

        result = run_version_update(config(), change_fraction=0.08)
        assert result.all_completed
        assert all(outcome.content_ok for outcome in result.outcomes)
        v1_bytes, v2_bytes = result.per_fetch_link_bytes
        assert v2_bytes < 0.35 * v1_bytes

    def test_generator_versions_differ_but_share(self):
        from repro.workload.objects import generate_software_versions

        v1, v2, v3 = generate_software_versions(200_000, n_versions=3,
                                                seed=3)
        assert v1 != v2 != v3
        assert len(v1) == len(v2) == len(v3) == 200_000
        # Shared content dominates.
        shared = sum(1 for a, b in zip(v1, v2) if a == b)
        assert shared > 0.5 * len(v1)

    def test_generator_validation(self):
        import pytest as _pytest

        from repro.workload.objects import generate_software_versions

        with _pytest.raises(ValueError):
            generate_software_versions(1000, n_versions=0)
        with _pytest.raises(ValueError):
            generate_software_versions(1000, change_fraction=1.5)


class TestCrossConnectionPoisoning:
    def test_naive_poisoning_affects_subsequent_connection(self):
        """§IV-C: after a naive-policy stall, the *next* connection
        through the same gateways inherits the desynchronised caches."""
        result = run_sequential_fetches(
            config(policy="naive", loss_rate=0.05, time_limit=400.0),
            n_fetches=2)
        # The first fetch stalls (naive + loss), and the second fares no
        # better: its content is fully redundant against the poisoned
        # encoder cache, so its packets reference undelivered state.
        assert not result.outcomes[0].completed
        assert len(result.outcomes) >= 2
        assert not result.outcomes[1].completed

    def test_cache_flush_recovers_across_connections(self):
        result = run_sequential_fetches(
            config(policy="cache_flush", loss_rate=0.05), n_fetches=2)
        assert result.all_completed


class TestParallelFlows:
    """Flow-parallel execution: deterministic merge, serial == pooled."""

    def _configs(self, n=3):
        return [ExperimentConfig(corpus="file1", file_size=15 * 1460,
                                 corpus_seed=3 + index, seed=11 + index)
                for index in range(n)]

    def test_serial_run_completes_in_index_order(self):
        from repro.experiments.multiflow import run_parallel_flows

        result = run_parallel_flows(self._configs())
        assert result.all_completed
        assert result.workers_used == 1
        assert len(result.flows) == 3
        assert result.total_bytes_on_link == \
            sum(result.per_flow_link_bytes)

    def test_parallel_merge_is_bit_identical_to_serial(self):
        from repro.experiments.multiflow import run_parallel_flows

        configs = self._configs()
        serial = run_parallel_flows(configs)
        parallel = run_parallel_flows(configs, workers=2)
        assert parallel.workers_used == 2
        assert serial.per_flow_link_bytes == parallel.per_flow_link_bytes
        assert [flow.per_fetch_link_bytes for flow in serial.flows] == \
            [flow.per_fetch_link_bytes for flow in parallel.flows]
        assert serial.total_bytes_on_link == parallel.total_bytes_on_link

    def test_distinct_seeds_give_distinct_flows(self):
        from repro.experiments.multiflow import run_parallel_flows

        result = run_parallel_flows(self._configs())
        # Different corpus seeds → genuinely different transfers.
        assert len(set(result.per_flow_link_bytes)) > 1

    def test_empty_config_list(self):
        from repro.experiments.multiflow import run_parallel_flows

        result = run_parallel_flows([])
        assert result.flows == []
        assert result.total_bytes_on_link == 0
        assert result.all_completed
