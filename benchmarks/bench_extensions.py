"""Extensions — the schemes §VIII/§IX discuss but the paper never built.

* informed marking (Lumezanu et al. IMC'10) — decoder reports missing
  fingerprints; encoder stops referencing them;
* ACK-gated caching — cache a segment only once it is cumulatively
  acknowledged;
* NACK recovery — decoder buffers undecodable packets and requests the
  missing content out of band;
* adaptive k-distance (§IX "tune-able" scheme) — reference spacing
  tracks the estimated loss rate.
"""

from conftest import print_report

from repro.experiments import scenarios


def test_extensions(benchmark):
    result = benchmark.pedantic(scenarios.extensions,
                                kwargs={"seeds": (11, 23)},
                                rounds=1, iterations=1)
    print_report("Extensions (§VIII/§IX)", result.report())

    bytes_by = {s.name: s for s in result.bytes_series}
    delay_by = {s.name: s for s in result.delay_series}
    for name, series in bytes_by.items():
        # Every robust extension still compresses on a clean channel.
        assert series.point(0.0).mean < 1.0, name
    # None of the robust schemes may livelock the way naive does.
    assert all(count <= 2 for count in result.stall_counts.values()), \
        result.stall_counts
    # ACK-gating only references receiver-confirmed state, so its
    # perceived-loss-driven delay penalty stays bounded at 5 % loss.
    assert delay_by["ack_gated"].point(0.05).mean < 20.0
