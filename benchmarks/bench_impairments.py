"""Impairment matrix (§IV) — loss, corruption and re-ordering.

The paper's correctness claim covers all three events: "a packet
corruption, a packet loss or a re-ordered packet — all events which
occur in the Internet — can result in cache desynchronization ...
and ultimately circular dependencies".  This bench checks that the
naive policy degrades or stalls under each impairment kind while Cache
Flush completes under all of them.
"""

from conftest import print_report

from repro.experiments import scenarios


def test_impairment_matrix(benchmark):
    result = benchmark.pedantic(
        scenarios.impairment_matrix,
        kwargs={"rates": (0.01, 0.05), "seeds": (11, 23)},
        rounds=1, iterations=1)
    print_report("Impairment matrix (§IV)", result.report())

    for kind in ("loss", "corrupt", "reorder"):
        naive_completed, _ = result.cells[("naive", kind, 0.05)]
        robust_completed, _ = result.cells[("cache_flush", kind, 0.05)]
        # The robust policy survives every impairment kind...
        assert robust_completed == 1.0, kind
        # ...while naive encoding fails at least sometimes under loss
        # and corruption (re-ordering is survivable more often: the
        # packet still arrives, merely late).
        if kind in ("loss", "corrupt"):
            assert naive_completed < 1.0, kind
