"""Figure 10 — byte savings in the presence of packet losses.

Paper shape: ~45 % savings at zero loss, eroding as loss grows but
still positive at 10 %; File 2 (higher dependency degree) is more
sensitive than File 1.
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios

SWEEP_KEY = "figure10_11"
SWEEP_KWARGS = {"seeds": (11, 23), "workers": bench_workers()}


def test_figure10(benchmark, sweep_cache):
    result = benchmark.pedantic(
        lambda: sweep_cache(SWEEP_KEY,
                            lambda: scenarios.figure10_11(**SWEEP_KWARGS)),
        rounds=1, iterations=1)
    print_report("Figure 10 (bytes sent ratio)", result.report_bytes())

    by_name = {s.name: s for s in result.bytes_series}
    cf1 = by_name["cache_flush(file1)"]
    # ~45 % savings at zero loss.
    assert cf1.point(0.0).mean < 0.65
    # Savings still positive at 10 % loss (ratio below 1).
    assert cf1.point(0.10).mean < 1.0
    # Ratio degrades monotonically-ish with loss.
    assert cf1.point(0.10).mean > cf1.point(0.0).mean
