"""Ablation — anchor selection rule: value sampling vs winnowing.

§III-A selects fingerprints whose last k bits are zero (value
sampling).  Winnowing guarantees bounded anchor gaps at comparable
density; this bench measures the resulting compression on the
evaluation corpus, offline (no network), at matched expected density.
"""

from conftest import print_report

from repro.experiments.scenarios import offline_compression_ratio
from repro.core.fingerprint import FingerprintScheme
from repro.metrics import format_table
from repro.workload.corpus import corpus_object


def measure():
    rows = []
    for corpus in ("file1", "webpages", "ebook"):
        data = corpus_object(corpus, size=200 * 1460, seed=3)
        cells = [corpus]
        for selection in ("value", "winnowing"):
            scheme = FingerprintScheme(selection=selection)
            ratio = offline_compression_ratio(data, scheme=scheme)
            cells.append(f"{(1 - ratio) * 100:.1f}%")
        rows.append(cells)
    return rows


def test_sampling_ablation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_report("Ablation — anchor selection rule", format_table(
        "offline byte savings at matched anchor density (w=16, 2^-4)",
        ["corpus", "value sampling (§III-A)", "winnowing"], rows))

    by_corpus = {row[0]: row for row in rows}
    # Both rules find the bulk of the redundancy on redundant corpora.
    for corpus in ("file1", "webpages"):
        value = float(by_corpus[corpus][1].rstrip("%"))
        winnow = float(by_corpus[corpus][2].rstrip("%"))
        assert value > 20.0
        assert winnow > 20.0
        assert abs(value - winnow) < 15.0
