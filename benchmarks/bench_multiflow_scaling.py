"""Flow-parallel multiflow execution: scaling and determinism.

Independent flows (one testbed + simulator each) shard across a
process pool via :func:`repro.experiments.multiflow.run_parallel_flows`
and merge back in submission order.  This bench asserts the load-
bearing property — the parallel merge is **bit-identical** to the
serial run — and records the wall-clock scaling point in
``BENCH_multiflow.json`` so the trajectory is tracked across PRs.

Process pools pay a per-worker interpreter spawn, so on tiny workloads
the parallel run can lose; the gate here is determinism, not a speedup
floor.  The measured serial/parallel times are reported and recorded.
"""

from __future__ import annotations

import time
from typing import List

from conftest import bench_workers, print_report

from repro.experiments import ExperimentConfig
from repro.experiments.multiflow import run_parallel_flows
from repro.experiments.sweep import append_bench_history
from repro.metrics import format_table
from repro.metrics.profiling import StageProfiler

FLOWS = 4
FILE_SIZE = 80 * 1460


def _configs() -> List[ExperimentConfig]:
    # Distinct seeds per flow: genuinely independent transfers, not
    # four copies of one.
    return [ExperimentConfig(corpus="file1", file_size=FILE_SIZE,
                             corpus_seed=3 + index, policy="cache_flush",
                             seed=11 + index, time_limit=300.0)
            for index in range(FLOWS)]


def test_multiflow_scaling(benchmark):
    configs = _configs()
    workers = bench_workers() or 2

    started = time.perf_counter()
    serial = run_parallel_flows(configs)
    serial_elapsed = time.perf_counter() - started

    profiler = StageProfiler()
    started = time.perf_counter()
    parallel = run_parallel_flows(configs, workers=workers,
                                  profiler=profiler)
    parallel_elapsed = time.perf_counter() - started

    benchmark.pedantic(lambda: run_parallel_flows(configs, workers=workers),
                       rounds=1, iterations=1)

    # The hard gate: sharding changes wall-clock only, never results.
    assert serial.per_flow_link_bytes == parallel.per_flow_link_bytes
    assert serial.total_bytes_on_link == parallel.total_bytes_on_link
    assert [f.per_fetch_link_bytes for f in serial.flows] == \
        [f.per_fetch_link_bytes for f in parallel.flows]
    assert serial.all_completed and parallel.all_completed

    speedup = serial_elapsed / parallel_elapsed
    append_bench_history({
        "schema": "bench_multiflow/v1",
        "name": "multiflow-scaling",
        "summary": {
            "flows": FLOWS,
            "workers": workers,
            "serial_seconds": serial_elapsed,
            "parallel_seconds": parallel_elapsed,
            "speedup": speedup,
            "total_bytes_on_link": serial.total_bytes_on_link,
            "merge_seconds": profiler.total("merge"),
        },
    }, "BENCH_multiflow.json")

    rows = [
        ["flows", FLOWS],
        ["workers", workers],
        ["serial wall-clock (s)", f"{serial_elapsed:.2f}"],
        [f"parallel wall-clock (s, {workers} workers)",
         f"{parallel_elapsed:.2f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["bit-identical merge", "yes"],
    ]
    print_report("Multiflow scaling (flow-parallel execution)",
                 format_table(
                     f"{FLOWS} independent flows, {FILE_SIZE} B each",
                     ["measurement", "value"], rows))
