"""Serving-mode grid: users x catalog size x cache budget.

Runs a small serving grid through the sweep engine's
:func:`~repro.experiments.sweep.parallel_map` twice — serially and over
a process pool — and asserts the two produce **bit-identical**
``serving/v1`` reports (the serving engine is a pure function of its
spec).  The steady-state summary lands in ``BENCH_serving.json``,
feeding the regression sentinel (``repro bench diff``): a cache or
encoder change that silently depresses the population hit ratio, or
inflates p99 download time, trips the gate.
"""

from __future__ import annotations

import json
import time

from conftest import bench_workers, print_report

from repro.metrics import format_table
from repro.serving import ServingSpec, run_serving_grid
from repro.serving.sweep import grid_specs, write_serving_bench

BASE = ServingSpec(mean_object_bytes=4096, arrival_rate=50.0, seed=7)
USERS = [30, 60]
CONTENTS = [100, 400]
CACHE_BYTES = [1 * 1024 * 1024, 4 * 1024 * 1024]


def test_serving_grid(benchmark):
    specs = grid_specs(BASE, USERS, CONTENTS, CACHE_BYTES)
    workers = bench_workers() or 2

    started = time.perf_counter()
    serial = run_serving_grid(specs)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_serving_grid(specs, workers=workers)
    parallel_elapsed = time.perf_counter() - started

    benchmark.pedantic(lambda: run_serving_grid(specs, workers=workers),
                       rounds=1, iterations=1)

    # The hard gate: worker count changes wall-clock only, never results.
    serial_blob = json.dumps(serial, sort_keys=True)
    parallel_blob = json.dumps(parallel, sort_keys=True)
    assert serial_blob == parallel_blob, \
        "serial and parallel serving grids diverged"

    doc = write_serving_bench(serial, "BENCH_serving.json",
                              name="serving-grid")
    summary = doc["summary"]
    speedup = serial_elapsed / parallel_elapsed

    rows = [
        ["grid cells", summary["cells"]],
        ["total requests", summary["total_requests"]],
        ["completed", summary["completed_requests"]],
        ["mean steady hit ratio", f"{summary['steady_hit_ratio']:.1%}"],
        ["mean steady bytes saved",
         f"{summary['steady_bytes_saved_ratio']:.1%}"],
        ["worst steady p99 download",
         f"{summary['worst_p99_download_s']:.3f}s"],
        ["serial wall-clock (s)", f"{serial_elapsed:.2f}"],
        [f"parallel wall-clock (s, {workers} workers)",
         f"{parallel_elapsed:.2f}"],
        ["speedup", f"{speedup:.2f}x"],
        ["bit-identical grids", "yes"],
    ]
    print_report("Serving grid (users x catalog x cache budget)",
                 format_table(
                     f"users={USERS} contents={CONTENTS} "
                     f"cache={[b // (1024 * 1024) for b in CACHE_BYTES]}MB",
                     ["measurement", "value"], rows))
