"""Headline claims (§VI) — gains at zero packet loss.

Paper: byte caching reduces bytes sent by ~45 % and download time by
~28 % when the channel is clean.
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios


def test_headline(benchmark):
    result = benchmark.pedantic(scenarios.headline,
                                kwargs={"workers": bench_workers()},
                                rounds=1, iterations=1)
    print_report("Headline", result.report())

    # ~45 % byte savings (generous band; workload is synthetic).
    assert 0.30 <= result.byte_savings <= 0.60
    # Meaningful delay reduction, smaller than or comparable to the
    # byte savings (the paper's 28 % vs 45 %).
    assert 0.10 <= result.delay_reduction <= 0.60
