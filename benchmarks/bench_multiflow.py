"""Inter-flow redundancy (§I) and cross-connection poisoning (§IV-C).

Not a numbered figure, but two load-bearing claims of the paper:
byte caching "eliminates redundancy both intra-flow and inter-flows",
and after a cache desynchronisation "not only one TCP connection, but
all subsequent connections going through the encoder and decoder may
get affected".
"""

from conftest import print_report

from repro.experiments import ExperimentConfig
from repro.experiments.multiflow import (run_concurrent_fetches,
                                         run_sequential_fetches)
from repro.metrics import format_table


def config(**kwargs):
    defaults = dict(corpus="file1", file_size=120 * 1460, corpus_seed=3,
                    policy="cache_flush", seed=11, time_limit=300.0)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def measure():
    refetch = run_sequential_fetches(config(), n_fetches=2)
    concurrent = run_concurrent_fetches(config(), n_clients=3)
    poisoned = run_sequential_fetches(
        config(policy="naive", loss_rate=0.05), n_fetches=2)
    robust = run_sequential_fetches(
        config(policy="cache_flush", loss_rate=0.05), n_fetches=2)
    return refetch, concurrent, poisoned, robust


def test_multiflow(benchmark):
    refetch, concurrent, poisoned, robust = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    file_size = 120 * 1460
    rows = [
        ["refetch: 1st connection bytes", refetch.per_fetch_link_bytes[0]],
        ["refetch: 2nd connection bytes", refetch.per_fetch_link_bytes[1]],
        ["3 concurrent clients, total bytes", concurrent.bytes_on_link],
        ["naive+5% loss: connections completed",
         sum(1 for o in poisoned.outcomes if o.completed)],
        ["cache_flush+5% loss: connections completed",
         sum(1 for o in robust.outcomes if o.completed)],
    ]
    print_report("Inter-flow (§I / §IV-C)", format_table(
        f"two claims beyond single-connection transfers ({file_size} B "
        "object)", ["measurement", "value"], rows))

    # Inter-flow redundancy: the refetch is nearly free.
    assert refetch.per_fetch_link_bytes[1] < \
        0.25 * refetch.per_fetch_link_bytes[0]
    # Three concurrent copies cost well under two uncached ones.
    assert concurrent.bytes_on_link < 2.0 * file_size
    assert concurrent.all_completed
    # §IV-C poisoning: with naive encoding both connections die; the
    # robust policy completes both.
    assert sum(1 for o in poisoned.outcomes if o.completed) == 0
    assert robust.all_completed
