"""Gateway failover: download-time ratio vs decoder-restart frequency.

The recovery-layer counterpart of the paper's loss sweeps: instead of
sweeping channel loss, sweep how often the decoder gateway crashes and
restarts with a cold cache.  With the resilience layer
(epochs + resync + heartbeats) each restart costs one bounded resync
and the download-time ratio stays near 1; without it every restart
strands the encoder's long-range references and the transfer limps
home on raw TCP retransmission timers — an order of magnitude slower,
accruing *more* restarts because it stays exposed longer.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_gateway_failover.py
"""

from conftest import print_report

from repro.app.transfer import FileClient, FileServer
from repro.experiments import ExperimentConfig
from repro.experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from repro.metrics.collectors import TransferResult
from repro.metrics.report import format_recovery, format_table
from repro.workload.redundancy import (DependencyFileSpec,
                                       generate_dependency_file)

#: Long-range redundancy: references point at long-ACKed segments TCP
#: will never retransmit, so a cold cache cannot heal by itself.
DATA = generate_dependency_file(DependencyFileSpec(
    size=250 * 1460, avg_dependencies=3.0, redundancy=0.5,
    history_window=300, locality_scale=100.0, seed=7))

RESILIENCE_KWARGS = dict(heartbeat_interval=0.02, heartbeat_timeout=0.06,
                         resync_timeout=0.05, resync_grace=0.02,
                         watchdog_window=8)

#: Seconds between decoder crashes (downtime 0.02 s each).
RESTART_PERIODS = [0.4, 0.2, 0.1]
DOWNTIME = 0.02
TIME_LIMIT = 30.0


def run_one(resilience: bool, period=None):
    """One transfer; decoder restarts every ``period`` seconds if set."""
    config = ExperimentConfig(
        corpus="file1", policy="tcp_seq", seed=5,
        tcp_max_retries=8, tcp_min_rto=0.05, tcp_max_rto=0.5,
        time_limit=TIME_LIMIT, resilience=resilience,
        resilience_kwargs=RESILIENCE_KWARGS if resilience else {})
    testbed = build_testbed(config)
    FileServer(testbed.server_stack, {FILE_NAME: DATA})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(DATA),
                           on_done=lambda _o: testbed.sim.stop())
    restarts = {"n": 0}
    if period is not None:
        gateway = testbed.gateways.decoder
        sim = testbed.sim

        def crash():
            gateway.fail()
            sim.after(DOWNTIME, restore)

        def restore():
            gateway.restart()
            restarts["n"] += 1
            sim.after(max(period - DOWNTIME, 0.01), crash)

        sim.at(0.12, crash)
    testbed.sim.run(until=TIME_LIMIT)
    gateways = testbed.gateways
    result = TransferResult(
        outcome=outcome,
        bottleneck_forward=testbed.bottleneck_forward.stats,
        bottleneck_reverse=testbed.bottleneck_reverse.stats,
        encoder_stats=gateways.encoder.stats,
        decoder_stats=gateways.decoder.stats,
        encoder_resilience=(gateways.encoder.resilience.stats
                            if gateways.encoder.resilience else None),
        decoder_resilience=(gateways.decoder.resilience.stats
                            if gateways.decoder.resilience else None),
        sim_time=testbed.sim.now,
        policy=config.policy, seed=config.seed, dre_enabled=True)
    return result, restarts["n"]


def sweep():
    baseline, _ = run_one(resilience=False)
    rows = []
    for period in RESTART_PERIODS:
        repaired, restarts_on = run_one(resilience=True, period=period)
        unrepaired, restarts_off = run_one(resilience=False, period=period)
        rows.append((period, baseline, repaired, restarts_on,
                     unrepaired, restarts_off))
    return baseline, rows


def _ratio(result: TransferResult, baseline: TransferResult) -> float:
    if result.download_time is None:        # stall: charge the time limit
        return TIME_LIMIT / baseline.download_time
    return result.download_time / baseline.download_time


def test_failover_ratio_vs_restart_frequency(benchmark):
    baseline, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = []
    summaries, labels = [], []
    for period, base, repaired, n_on, unrepaired, n_off in rows:
        ratio_on = _ratio(repaired, base)
        ratio_off = _ratio(unrepaired, base)
        table_rows.append([
            f"{period:.1f}", n_on, f"{ratio_on:.2f}",
            repaired.resyncs_completed,
            repaired.decoder_stats.undecodable_dropped,
            n_off, f"{ratio_off:.2f}",
            unrepaired.decoder_stats.undecodable_dropped,
        ])
        summaries.append(repaired.recovery_summary())
        labels.append(f"period={period:.1f}")
    print_report(
        "Download-time ratio vs decoder restart frequency "
        f"(baseline {baseline.download_time:.2f} s, fault-free)",
        format_table(
            "tcp_seq policy, decoder restarts every <period> s",
            ["period", "restarts+", "ratio+", "resyncs", "undec+",
             "restarts-", "ratio-", "undec-"],
            table_rows))
    print_report(
        "Recovery metrics (resilience layer on)",
        format_recovery("Per-period recovery summary", summaries, labels))

    for period, base, repaired, _n_on, unrepaired, _n_off in rows:
        assert repaired.completed, period
        # One bounded resync per crash: the repaired run stays far
        # closer to fault-free than the unrepaired one at every
        # frequency ...
        assert _ratio(repaired, base) < _ratio(unrepaired, base), period
        assert repaired.resyncs_completed >= 1, period
    # ... and at moderate frequency it is near-baseline while the
    # unrepaired transfer blows out by an order of magnitude.
    moderate = rows[0]
    assert _ratio(moderate[2], moderate[1]) < 4.0
    assert _ratio(moderate[4], moderate[1]) > 8.0
