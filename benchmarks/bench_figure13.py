"""Figure 13 — perceived packet loss rate vs actual loss rate.

Perceived = channel losses plus packets the decoder drops as
undecodable.  Paper shape: all schemes sit well above the diagonal,
with the aggressive TCP-seq scheme at or above Cache Flush, and
k-distance(k=8) comparable to Cache Flush.
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios


def test_figure13(benchmark):
    result = benchmark.pedantic(
        scenarios.figure13,
        kwargs={"losses": (0.0, 0.01, 0.02, 0.05, 0.10, 0.20),
                "seeds": (11, 23), "workers": bench_workers()},
        rounds=1, iterations=1)
    print_report("Figure 13", result.report())

    by_name = {s.name: s for s in result.series}
    cache_flush = by_name["cache_flush"]
    tcp_seq = by_name["tcp_seq"]
    kdist = by_name["k_distance(k=8)"]
    for series in (cache_flush, tcp_seq, kdist):
        # Perceived loss amplifies actual loss (sits above the diagonal).
        assert series.point(0.05).mean > 5.0
        # And grows with the actual loss rate.
        assert series.point(0.10).mean > series.point(0.01).mean
    # k-distance(8) bounds dependencies tightly: perceived loss stays
    # below the unbounded-history schemes at moderate loss.
    assert kdist.point(0.02).mean <= cache_flush.point(0.02).mean + 1.0
