"""Hot-path microbenchmark: anchor selection + encode, new vs pre-PR.

The encoder hot path was rewritten to keep anchors in numpy end-to-end
(:class:`repro.core.polyhash.AnchorSet`), batch the cache-update
bookkeeping, slot :class:`~repro.core.cache.CacheEntry`, and locate
match boundaries by binary halving.  This bench keeps a faithful inline
copy of the *previous* implementation (per-element ``int()`` anchor
lists, dataclass entries, double dict probes per insert, per-byte
mismatch scans) and requires the live code to beat it by >= 1.5x on the
combined anchor-selection + encode pipeline.

Both pipelines must produce byte-identical wire output — the legacy
copy is an oracle, not just a stopwatch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from conftest import print_report

from repro.core.cache import ByteCache, PacketStore
from repro.core.encoder import ByteCachingEncoder
from repro.core.fingerprint import FingerprintScheme
from repro.core.polyhash import _U64
from repro.core.region import Region
from repro.core.policies import PacketMeta, make_policy_pair
from repro.core.wire import MIN_REGION_LENGTH, encode_payload, wrap_raw
from repro.metrics.profiling import StageProfiler
from repro.workload.corpus import corpus_object

MSS = 1460
PACKETS = 192
ROUNDS = 5
REQUIRED_SPEEDUP = 1.5


# ---------------------------------------------------------------------------
# the pre-PR implementation, inlined
# ---------------------------------------------------------------------------

@dataclass
class _LegacyCacheEntry:
    fingerprint: int
    store_id: int
    offset: int
    tcp_seq: Optional[int] = None
    flow: Optional[tuple] = None
    packet_counter: int = 0
    usable: bool = True


class _LegacyFingerprintTable:
    def __init__(self) -> None:
        self._table: Dict[int, _LegacyCacheEntry] = {}
        self.inserts = 0
        self.replacements = 0

    def put(self, entry: _LegacyCacheEntry) -> None:
        if entry.fingerprint in self._table:
            self.replacements += 1
        self.inserts += 1
        self._table[entry.fingerprint] = entry

    def get(self, fingerprint: int) -> Optional[_LegacyCacheEntry]:
        return self._table.get(fingerprint)

    def remove(self, fingerprint: int) -> None:
        self._table.pop(fingerprint, None)


class _LegacyByteCache:
    def __init__(self, byte_budget: int):
        self.store = PacketStore(byte_budget)
        self.table = _LegacyFingerprintTable()
        self._unusable_store_ids: set = set()
        self._previous_entries: Dict[int, _LegacyCacheEntry] = {}

    def insert_packet(self, payload: bytes, anchors: list,
                      tcp_seq=None, flow=None, packet_counter=0) -> int:
        store_id = self.store.add(payload)
        for offset, fingerprint in anchors:
            displaced = self.table.get(fingerprint)
            if displaced is not None and displaced.store_id != store_id:
                self._previous_entries[fingerprint] = displaced
            self.table.put(_LegacyCacheEntry(
                fingerprint=fingerprint,
                store_id=store_id,
                offset=offset,
                tcp_seq=tcp_seq,
                flow=flow,
                packet_counter=packet_counter,
            ))
        return store_id

    def lookup(self, fingerprint: int):
        entry = self.table.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        if entry.store_id in self._unusable_store_ids:
            return None
        payload = self.store.get(entry.store_id)
        if payload is None:
            self.table.remove(fingerprint)
            return None
        return entry, payload


def _legacy_anchors(scheme: FingerprintScheme,
                    data: bytes) -> List[Tuple[int, int]]:
    """Pre-PR anchor selection: one ``int()`` call per anchor."""
    hashes = scheme._impl.hashes(data)
    if len(hashes) == 0:
        return []
    selected = np.nonzero((hashes & _U64(scheme.mask)) == 0)[0]
    return [(int(off), int(hashes[off])) for off in selected]


def _legacy_prefix(a, a_start, b, b_start, limit):
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_start + n: a_start + n + step] == b[b_start + n: b_start + n + step]:
            n += step
            continue
        for i in range(step):
            if a[a_start + n + i] != b[b_start + n + i]:
                return n + i
        return n + step
    return n


def _legacy_suffix(a, a_end, b, b_end, limit):
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_end - n - step: a_end - n] == b[b_end - n - step: b_end - n]:
            n += step
            continue
        for i in range(1, step + 1):
            if a[a_end - n - i] != b[b_end - n - i]:
                return n + i - 1
        return n + step
    return n


def _legacy_expand(new, new_anchor, stored, stored_anchor, window, left_limit):
    if new_anchor < left_limit:
        return None
    if new_anchor + window > len(new) or stored_anchor + window > len(stored):
        return None
    if new[new_anchor: new_anchor + window] != stored[stored_anchor: stored_anchor + window]:
        return None
    left_room = min(new_anchor - left_limit, stored_anchor)
    left = _legacy_suffix(new, new_anchor, stored, stored_anchor, left_room)
    right_room = min(len(new) - (new_anchor + window),
                     len(stored) - (stored_anchor + window))
    right = _legacy_prefix(new, new_anchor + window,
                           stored, stored_anchor + window, right_room)
    return Region(fingerprint=0, offset_new=new_anchor - left,
                  offset_stored=stored_anchor - left,
                  length=left + window + right)


def _legacy_encode_pass(scheme: FingerprintScheme,
                        packets: List[bytes]) -> int:
    """Pre-PR encode pipeline (naive policy semantics), returns bytes out."""
    cache = _LegacyByteCache(16 * 1024 * 1024)
    window = scheme.window
    total_out = 0
    for counter, payload in enumerate(packets):
        anchors = _legacy_anchors(scheme, payload)
        regions: List[Region] = []
        pos = 0
        for offset, fingerprint in anchors:
            if offset < pos:
                continue
            hit = cache.lookup(fingerprint)
            if hit is None:
                continue
            entry, stored = hit
            match = _legacy_expand(payload, offset, stored, entry.offset,
                                   window, pos)
            if match is None or match.length <= MIN_REGION_LENGTH:
                continue
            regions.append(Region(
                fingerprint=fingerprint, offset_new=match.offset_new,
                offset_stored=match.offset_stored, length=match.length))
            pos = match.offset_new + match.length
        if regions:
            data = encode_payload(payload, regions)
            if len(data) >= len(payload) + 2:
                regions = []
                data = wrap_raw(payload)
        else:
            data = wrap_raw(payload)
        cache.insert_packet(payload, anchors, tcp_seq=counter * MSS,
                            flow=("bench", 0), packet_counter=counter)
        total_out += len(data)
    return total_out


# ---------------------------------------------------------------------------
# the live implementation
# ---------------------------------------------------------------------------

def _new_encode_pass(scheme: FingerprintScheme, packets: List[bytes],
                     profiler: Optional[StageProfiler] = None) -> int:
    cache = ByteCache(16 * 1024 * 1024)
    policy, _ = make_policy_pair("naive")
    encoder = ByteCachingEncoder(scheme, cache, policy)
    encoder.profiler = profiler
    total_out = 0
    for counter, payload in enumerate(packets):
        meta = PacketMeta(packet_id=counter, flow=("bench", 0),
                          tcp_seq=counter * MSS, counter=counter)
        total_out += encoder.encode(payload, meta).bytes_out
    return total_out


def _packets() -> List[bytes]:
    data = corpus_object("file1", seed=3)
    return [data[i: i + MSS] for i in range(0, len(data), MSS)][:PACKETS]


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_hotpath_speedup(benchmark):
    scheme = FingerprintScheme(window=16, zero_bits=4)
    packets = _packets()

    # Oracle check: same regions, byte-identical wire output.
    assert (_new_encode_pass(scheme, packets)
            == _legacy_encode_pass(scheme, packets))

    new_time = _best_of(lambda: _new_encode_pass(scheme, packets))
    legacy_time = _best_of(lambda: _legacy_encode_pass(scheme, packets))
    speedup = legacy_time / new_time

    benchmark.pedantic(lambda: _new_encode_pass(scheme, packets),
                       rounds=3, iterations=1)

    profiler = StageProfiler()
    _new_encode_pass(scheme, packets, profiler=profiler)
    print_report(
        "Hot path — anchor selection + encode "
        f"({PACKETS} x {MSS} B packets)",
        f"legacy (pre-PR): {legacy_time * 1e3:8.2f} ms\n"
        f"current:         {new_time * 1e3:8.2f} ms\n"
        f"speedup:         {speedup:8.2f}x  (required >= "
        f"{REQUIRED_SPEEDUP}x)\n\n" + profiler.report())

    assert speedup >= REQUIRED_SPEEDUP, (
        f"hot path regressed: {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"(new {new_time * 1e3:.2f} ms vs legacy {legacy_time * 1e3:.2f} ms)")


def test_anchor_selection_speedup(benchmark):
    """Anchor selection alone: AnchorSet vs per-element int() lists."""
    scheme = FingerprintScheme(window=16, zero_bits=4)
    packets = _packets()

    new_pairs = [list(scheme.anchors(p)) for p in packets]
    legacy_pairs = [_legacy_anchors(scheme, p) for p in packets]
    assert new_pairs == legacy_pairs

    def new_pass():
        for payload in packets:
            scheme.anchors(payload).pairs()

    def legacy_pass():
        for payload in packets:
            _legacy_anchors(scheme, payload)

    new_time = _best_of(new_pass)
    legacy_time = _best_of(legacy_pass)
    benchmark.pedantic(new_pass, rounds=3, iterations=1)
    print_report(
        "Anchor selection only",
        f"legacy: {legacy_time * 1e3:.2f} ms   new: {new_time * 1e3:.2f} ms"
        f"   speedup: {legacy_time / new_time:.2f}x")
    # The combined pipeline carries the hard >= 1.5x gate; anchors alone
    # must at minimum not be slower than the list-building version.
    assert new_time <= legacy_time
