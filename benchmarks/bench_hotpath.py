"""Hot-path microbenchmark: batched encoder vs the pre-batching oracle.

The encoder hot path fingerprints a whole window of packets in one
numpy pass (:meth:`FingerprintScheme.batch_anchors`), stores cache
entries in the contiguous ring table (:mod:`repro.core.ringtable`,
batch insert + bitmap candidate prefilter), and locates match
boundaries with single-slice compares plus a big-endian-XOR diff.
This bench keeps a faithful inline copy of the *previous*
implementation (per-packet hashing, per-element ``int()`` anchor
lists, dataclass entries, double dict probes per insert, per-byte
mismatch scans) and requires the live code to beat it by
``REQUIRED_SPEEDUP`` on the combined pipeline.

The workload is a three-phase traffic mix (fresh / cold transfer /
repeated transfer — see :func:`_packets`) so the gate covers the
insert-heavy, mixed, and hit-heavy regimes rather than a single
flattering one.  Speedup is the median of per-round time ratios with
the two pipelines timed back-to-back, which cancels machine-wide
noise.

Both pipelines must produce byte-identical wire output — the legacy
copy is an oracle, not just a stopwatch.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from conftest import print_report

from repro.core.cache import ByteCache, PacketStore
from repro.core.encoder import ByteCachingEncoder, EncodeResult, EncoderStats
from repro.core.fingerprint import FingerprintScheme
from repro.core.polyhash import _U64
from repro.core.region import Region
from repro.core.policies import PacketMeta, make_policy_pair
from repro.core.wire import (MIN_REGION_LENGTH, SHIM_SIZE, encode_payload,
                             wrap_raw)
from repro.experiments.sweep import append_bench_history
from repro.metrics.profiling import StageProfiler
from repro.workload.corpus import corpus_object

MSS = 1460
PACKETS = 192
ROUNDS = 9
REQUIRED_SPEEDUP = 3.0


# ---------------------------------------------------------------------------
# the pre-PR implementation, inlined
# ---------------------------------------------------------------------------

@dataclass
class _LegacyCacheEntry:
    fingerprint: int
    store_id: int
    offset: int
    tcp_seq: Optional[int] = None
    flow: Optional[tuple] = None
    packet_counter: int = 0
    usable: bool = True


class _LegacyFingerprintTable:
    def __init__(self) -> None:
        self._table: Dict[int, _LegacyCacheEntry] = {}
        self.inserts = 0
        self.replacements = 0

    def put(self, entry: _LegacyCacheEntry) -> None:
        if entry.fingerprint in self._table:
            self.replacements += 1
        self.inserts += 1
        self._table[entry.fingerprint] = entry

    def get(self, fingerprint: int) -> Optional[_LegacyCacheEntry]:
        return self._table.get(fingerprint)

    def remove(self, fingerprint: int) -> None:
        self._table.pop(fingerprint, None)


class _LegacyByteCache:
    def __init__(self, byte_budget: int):
        self.store = PacketStore(byte_budget)
        self.table = _LegacyFingerprintTable()
        self._unusable_store_ids: set = set()
        self._previous_entries: Dict[int, _LegacyCacheEntry] = {}
        self._external_ids: Dict[int, int] = {}

    def external_id_for(self, store_id: int):
        return self._external_ids.get(store_id)

    def insert_packet(self, payload: bytes, anchors: list,
                      tcp_seq=None, flow=None, packet_counter=0,
                      external_id=None) -> int:
        store_id = self.store.add(payload)
        if external_id is not None:
            self._external_ids[store_id] = external_id
        for offset, fingerprint in anchors:
            displaced = self.table.get(fingerprint)
            if displaced is not None and displaced.store_id != store_id:
                self._previous_entries[fingerprint] = displaced
            self.table.put(_LegacyCacheEntry(
                fingerprint=fingerprint,
                store_id=store_id,
                offset=offset,
                tcp_seq=tcp_seq,
                flow=flow,
                packet_counter=packet_counter,
            ))
        return store_id

    def lookup(self, fingerprint: int):
        entry = self.table.get(fingerprint)
        if entry is None or not entry.usable:
            return None
        if entry.store_id in self._unusable_store_ids:
            return None
        payload = self.store.get(entry.store_id)
        if payload is None:
            self.table.remove(fingerprint)
            return None
        return entry, payload


def _legacy_anchors(scheme: FingerprintScheme,
                    data: bytes) -> List[Tuple[int, int]]:
    """Pre-PR anchor selection: one ``int()`` call per anchor."""
    hashes = scheme._impl.hashes(data)
    if len(hashes) == 0:
        return []
    selected = np.nonzero((hashes & _U64(scheme.mask)) == 0)[0]
    return [(int(off), int(hashes[off])) for off in selected]


def _legacy_prefix(a, a_start, b, b_start, limit):
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_start + n: a_start + n + step] == b[b_start + n: b_start + n + step]:
            n += step
            continue
        for i in range(step):
            if a[a_start + n + i] != b[b_start + n + i]:
                return n + i
        return n + step
    return n


def _legacy_suffix(a, a_end, b, b_end, limit):
    n = 0
    chunk = 256
    while n < limit:
        step = min(chunk, limit - n)
        if a[a_end - n - step: a_end - n] == b[b_end - n - step: b_end - n]:
            n += step
            continue
        for i in range(1, step + 1):
            if a[a_end - n - i] != b[b_end - n - i]:
                return n + i - 1
        return n + step
    return n


def _legacy_expand(new, new_anchor, stored, stored_anchor, window, left_limit):
    if new_anchor < left_limit:
        return None
    if new_anchor + window > len(new) or stored_anchor + window > len(stored):
        return None
    if new[new_anchor: new_anchor + window] != stored[stored_anchor: stored_anchor + window]:
        return None
    left_room = min(new_anchor - left_limit, stored_anchor)
    left = _legacy_suffix(new, new_anchor, stored, stored_anchor, left_room)
    right_room = min(len(new) - (new_anchor + window),
                     len(stored) - (stored_anchor + window))
    right = _legacy_prefix(new, new_anchor + window,
                           stored, stored_anchor + window, right_room)
    return Region(fingerprint=0, offset_new=new_anchor - left,
                  offset_stored=stored_anchor - left,
                  length=left + window + right)


def _legacy_encode_pass(scheme: FingerprintScheme, packets: List[bytes],
                        out: Optional[List[bytes]] = None) -> int:
    """Pre-PR encode pipeline, one packet at a time; returns bytes out.

    Faithful to the original per-packet ``encode()`` loop: the policy
    hooks, stats counters, dependency tracking and per-packet
    ``EncodeResult`` records are part of what the batched pipeline
    restructured, so the oracle pays for them too.  ``out`` collects
    the wire bytes for the byte-identical parity check (pass ``None``
    when timing).
    """
    cache = _LegacyByteCache(16 * 1024 * 1024)
    policy, _ = make_policy_pair("naive")
    stats = EncoderStats()
    window = scheme.window
    total_out = 0
    for counter, payload in enumerate(packets):
        meta = PacketMeta(packet_id=counter, flow=("bench", 0),
                          tcp_seq=counter * MSS, counter=counter)
        stats.packets += 1
        stats.bytes_in += len(payload)
        policy.before_packet(meta, cache)
        anchors = _legacy_anchors(scheme, payload)
        regions: List[Region] = []
        dependencies: Set[int] = set()
        if policy.may_encode(meta):
            pos = 0
            for offset, fingerprint in anchors:
                if offset < pos:
                    continue
                hit = cache.lookup(fingerprint)
                if hit is None:
                    continue
                entry, stored = hit
                if not policy.entry_eligible(entry, meta):
                    stats.ineligible_hits += 1
                    continue
                match = _legacy_expand(payload, offset, stored, entry.offset,
                                       window, pos)
                if match is None:
                    stats.collisions += 1
                    continue
                if match.length <= MIN_REGION_LENGTH:
                    continue
                if not policy.region_acceptable(match.length, len(payload),
                                                meta):
                    stats.ineligible_hits += 1
                    continue
                regions.append(Region(
                    fingerprint=fingerprint, offset_new=match.offset_new,
                    offset_stored=match.offset_stored, length=match.length))
                external = cache.external_id_for(entry.store_id)
                if external is not None:
                    dependencies.add(external)
                pos = match.offset_new + match.length
        if regions:
            data = encode_payload(payload, regions)
            if len(data) >= len(payload) + SHIM_SIZE:
                regions = []
                dependencies = set()
                data = wrap_raw(payload)
        else:
            data = wrap_raw(payload)
        cached = False
        if policy.should_cache_now(meta):
            cache.insert_packet(payload, anchors, tcp_seq=meta.tcp_seq,
                                flow=meta.flow, packet_counter=meta.counter,
                                external_id=meta.packet_id)
            cached = True
        else:
            policy.defer_cache(payload, anchors, meta)
        stats.bytes_out += len(data)
        if regions:
            stats.packets_encoded += 1
            stats.regions += len(regions)
            stats.matched_bytes += sum(r.length for r in regions)
        result = EncodeResult(
            data=data, encoded=bool(regions), bytes_in=len(payload),
            bytes_out=len(data), regions=regions, dependencies=dependencies,
            cached=cached, shim_overhead=SHIM_SIZE)
        total_out += result.bytes_out
        if out is not None:
            out.append(result.data)
    return total_out


# ---------------------------------------------------------------------------
# the live implementation
# ---------------------------------------------------------------------------

def _new_encode_pass(scheme: FingerprintScheme, packets: List[bytes],
                     profiler: Optional[StageProfiler] = None,
                     out: Optional[List[bytes]] = None) -> int:
    cache = ByteCache(16 * 1024 * 1024)
    policy, _ = make_policy_pair("naive")
    encoder = ByteCachingEncoder(scheme, cache, policy)
    encoder.profiler = profiler
    metas = [PacketMeta(packet_id=counter, flow=("bench", 0),
                        tcp_seq=counter * MSS, counter=counter)
             for counter in range(len(packets))]
    total_out = 0
    for result in encoder.encode_batch(packets, metas):
        total_out += result.bytes_out
        if out is not None:
            out.append(result.data)
    return total_out


def _packets() -> List[bytes]:
    """Three-phase workload covering the hot path's regimes.

    1. *fresh*: incompressible traffic — anchor selection and cache
       updates with (almost) no hits; stresses the insert path and the
       candidate prefilter.
    2. *cold*: a corpus object seen for the first time — intra-object
       redundancy; mixed hit/miss region finding.
    3. *warm*: the same object transferred again (the paper's repeated-
       download case) — near-total hits; stresses lookup + expansion.
    """
    rnd = random.Random(0xBC)
    fresh = [rnd.randbytes(MSS) for _ in range(PACKETS // 2)]
    data = corpus_object("file1", seed=3)
    cold = [data[i: i + MSS] for i in range(0, len(data), MSS)][:PACKETS]
    return fresh + cold + cold


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _paired_speedup(legacy_fn, new_fn,
                    rounds: int = ROUNDS) -> Tuple[float, float, float]:
    """Median of per-round legacy/new time ratios.

    The two pipelines are timed back-to-back inside each round, so a
    machine-wide slowdown hits both sides of a ratio equally — far more
    noise-robust than comparing two independently-taken minima.
    Returns ``(speedup, legacy_seconds, new_seconds)`` with the times
    being per-round medians.
    """
    ratios: List[float] = []
    legacy_times: List[float] = []
    new_times: List[float] = []
    legacy_fn()  # warm allocators and workspaces outside the timing
    new_fn()
    for _ in range(rounds):
        started = time.perf_counter()
        legacy_fn()
        legacy_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        new_fn()
        new_elapsed = time.perf_counter() - started
        ratios.append(legacy_elapsed / new_elapsed)
        legacy_times.append(legacy_elapsed)
        new_times.append(new_elapsed)
    return (statistics.median(ratios), statistics.median(legacy_times),
            statistics.median(new_times))


def test_hotpath_speedup(benchmark):
    scheme = FingerprintScheme(window=16, zero_bits=4)
    packets = _packets()

    # Oracle check: byte-identical wire output, packet by packet.
    new_wire: List[bytes] = []
    legacy_wire: List[bytes] = []
    _new_encode_pass(scheme, packets, out=new_wire)
    _legacy_encode_pass(scheme, packets, out=legacy_wire)
    assert new_wire == legacy_wire

    speedup, legacy_time, new_time = _paired_speedup(
        lambda: _legacy_encode_pass(scheme, packets),
        lambda: _new_encode_pass(scheme, packets))

    benchmark.pedantic(lambda: _new_encode_pass(scheme, packets),
                       rounds=3, iterations=1)

    profiler = StageProfiler()
    _new_encode_pass(scheme, packets, profiler=profiler)
    # Record the trajectory point before the gate assert so regressions
    # land in the history too.
    append_bench_history({
        "schema": "bench_hotpath/v1",
        "name": "hotpath",
        "summary": {
            "speedup": speedup,
            "legacy_seconds": legacy_time,
            "new_seconds": new_time,
            "required_speedup": REQUIRED_SPEEDUP,
            "packets": len(packets),
            "rounds": ROUNDS,
            "gate_passed": speedup >= REQUIRED_SPEEDUP,
        },
        "stages": profiler.as_dict(),
    }, "BENCH_hotpath.json")
    print_report(
        "Hot path — batched fingerprint + encode "
        f"({len(packets)} x {MSS} B packets, fresh/cold/warm mix)",
        f"legacy (pre-PR): {legacy_time * 1e3:8.2f} ms\n"
        f"current:         {new_time * 1e3:8.2f} ms\n"
        f"speedup:         {speedup:8.2f}x  (required >= "
        f"{REQUIRED_SPEEDUP}x)\n\n" + profiler.report())

    assert speedup >= REQUIRED_SPEEDUP, (
        f"hot path regressed: {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"(new {new_time * 1e3:.2f} ms vs legacy {legacy_time * 1e3:.2f} ms)")


def test_anchor_selection_speedup(benchmark):
    """Anchor selection alone: AnchorSet vs per-element int() lists."""
    scheme = FingerprintScheme(window=16, zero_bits=4)
    packets = _packets()

    new_pairs = [list(scheme.anchors(p)) for p in packets]
    legacy_pairs = [_legacy_anchors(scheme, p) for p in packets]
    assert new_pairs == legacy_pairs

    def new_pass():
        for payload in packets:
            scheme.anchors(payload).pairs()

    def legacy_pass():
        for payload in packets:
            _legacy_anchors(scheme, payload)

    new_time = _best_of(new_pass)
    legacy_time = _best_of(legacy_pass)
    benchmark.pedantic(new_pass, rounds=3, iterations=1)
    print_report(
        "Anchor selection only",
        f"legacy: {legacy_time * 1e3:.2f} ms   new: {new_time * 1e3:.2f} ms"
        f"   speedup: {legacy_time / new_time:.2f}x")
    # The combined pipeline carries the hard >= 1.5x gate; anchors alone
    # must at minimum not be slower than the list-building version.
    assert new_time <= legacy_time
