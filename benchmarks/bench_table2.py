"""Table II — all three encoding schemes on File 1 at 5 % and 10 % loss.

Paper values (ratios vs no-DRE):
    Bytes: CacheFlush 0.67/0.74, TCPseq 0.70/0.82, k-dist(8) 0.76/0.94
    Delay: CacheFlush 1.64/1.84, TCPseq 2.88/3.87, k-dist(8) 2.11/4.01
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios


def test_table2(benchmark):
    result = benchmark.pedantic(scenarios.table2,
                                kwargs={"seeds": (11, 23), "workers": bench_workers()},
                                rounds=1, iterations=1)
    print_report("Table II", result.report())

    cells = result.cells
    # Byte savings survive at 5 % loss for every scheme.
    for policy in ("cache_flush", "tcp_seq", "k_distance"):
        assert cells[("Bytes Sent", policy, 0.05)] < 1.0
    # Delay is worse than no-DRE for every scheme at 5 % loss.
    for policy in ("cache_flush", "tcp_seq", "k_distance"):
        delay = cells.get(("Delay", policy, 0.05))
        assert delay is not None and delay > 1.0
    # Cache Flush has the lowest delay penalty (the §VII insight).
    assert (cells[("Delay", "cache_flush", 0.05)]
            <= cells[("Delay", "tcp_seq", 0.05)])
    assert (cells[("Delay", "cache_flush", 0.10)]
            <= cells[("Delay", "tcp_seq", 0.10)])
