"""Ablation — cache eviction: FIFO (the paper's sliding window) vs LRU.

With a cache smaller than the working set, eviction policy decides
which redundancy survives.  The webpage-session corpus revisits its
template on every page, so LRU should retain it while FIFO cycles it
out; File 1's redundancy is strictly recent-past, where FIFO and LRU
coincide.
"""

from conftest import print_report

from repro.experiments import ExperimentConfig, run_transfer
from repro.metrics import format_table


def measure():
    rows = []
    for corpus, cache_packets in (("file1", 12), ("webpages", 12)):
        cells = [f"{corpus} (cache={cache_packets} pkts)"]
        for eviction in ("fifo", "lru"):
            result = run_transfer(ExperimentConfig(
                corpus=corpus, policy="cache_flush", seed=11,
                cache_max_packets=cache_packets, cache_eviction=eviction))
            cells.append(result.forward_bytes_on_link)
        rows.append(cells)
    return rows


def test_cache_eviction_ablation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_report("Ablation — cache eviction policy", format_table(
        "bytes on the constrained link, tiny cache, clean channel",
        ["workload", "FIFO (paper)", "LRU"], rows))
    for row in rows:
        assert row[1] > 0 and row[2] > 0
    # On the template-revisiting workload LRU must not do worse than
    # FIFO by more than noise.
    webpages = [row for row in rows if row[0].startswith("webpages")][0]
    assert webpages[2] <= webpages[1] * 1.05
