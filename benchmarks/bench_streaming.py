"""§V-C over UDP — the k-distance trade with no retransmissions.

The evaluation section runs k-distance over TCP only; §V-C claims UDP
applicability.  This bench sweeps k on a media-like UDP frame stream:
compression improves with k while frame delivery degrades under loss —
the trade in its purest form (no TCP to repair the damage).
"""

from conftest import print_report

from repro.experiments.streaming import StreamingConfig, run_streaming
from repro.metrics import format_table


def measure():
    rows = []
    baseline = run_streaming(StreamingConfig(policy=None, loss_rate=0.05))
    rows.append(["(no DRE)", baseline.frames_delivered,
                 baseline.bytes_on_link, "1.00", 0])
    results = {}
    for k in (4, 8, 32):
        result = run_streaming(StreamingConfig(policy="k_distance", k=k,
                                               loss_rate=0.05))
        results[k] = result
        rows.append([f"k={k}", result.frames_delivered,
                     result.bytes_on_link,
                     f"{result.bytes_on_link / baseline.bytes_on_link:.2f}",
                     result.undecodable])
    return rows, baseline, results


def test_udp_streaming(benchmark):
    rows, baseline, results = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    print_report("UDP streaming (§V-C)", format_table(
        "400 media frames at 5% loss — compression vs delivery",
        ["scheme", "frames delivered", "bytes on link", "bytes ratio",
         "undecodable"], rows))

    # Compression improves with k...
    assert results[32].bytes_on_link < results[4].bytes_on_link
    # ...while delivery degrades (losses amplify through dependencies).
    assert results[32].frames_delivered <= results[4].frames_delivered
    # And every DRE point compresses relative to no-DRE.
    for result in results.values():
        assert result.bytes_on_link < baseline.bytes_on_link
