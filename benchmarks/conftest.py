"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (table/figure),
times it with pytest-benchmark, and prints the reproduced rows/series
so the output can be compared against the paper (see EXPERIMENTS.md).

Scenario sweeps are memoised per-session: Figures 10 and 11 come from
the same set of transfer runs, so the second bench reuses the first's
sweep instead of re-simulating it.
"""

from __future__ import annotations

import os

import pytest


def bench_workers():
    """Sweep worker count from ``REPRO_BENCH_WORKERS`` (None = serial).

    Parallel and serial sweeps aggregate bit-identically (see
    repro.experiments.sweep), so the workers knob only changes
    wall-clock, never the reproduced numbers.
    """
    value = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    return int(value) if value else None


@pytest.fixture(scope="session")
def sweep_cache():
    """Session-scoped memo for scenario results shared across benches."""
    cache = {}

    def get(name, factory):
        if name not in cache:
            cache[name] = factory()
        return cache[name]

    return get


_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def print_report(title: str, report: str) -> None:
    """Print a reproduced artifact so it lands in the run's output.

    Capture is suspended around the print so the tables appear even
    without ``-s`` — the canonical
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
    invocation must record them.
    """
    banner = "#" * max(20, len(title) + 4)
    text = f"\n{banner}\n# {title}\n{banner}\n{report}\n"
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            print(text)
    else:
        print(text)
