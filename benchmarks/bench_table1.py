"""Table I — redundancy found in web objects vs cache window size.

Paper values: ebook 0.3–1 %, video 0.009–1 %, web pages 19–42 % (k=10)
rising to 26–52 % (k=1000).
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios


def test_table1(benchmark):
    result = benchmark.pedantic(scenarios.table1,
                                kwargs={"workers": bench_workers()},
                                rounds=1, iterations=1)
    print_report("Table I", result.report())

    savings = {(name, k): s for name, k, s in result.rows}
    # Paper shapes: ebook and video stay below ~1.5 %; web pages are
    # double digits already at k=10 and grow with k.
    for k in (10, 100, 1000):
        assert savings[("ebook", k)] < 0.015
        assert savings[("video", k)] < 0.015
    assert savings[("webpages", 10)] > 0.15
    assert savings[("webpages", 1000)] >= savings[("webpages", 10)]
    assert savings[("video", 10)] < savings[("video", 1000)]
