"""Micro-benchmarks on the encoder itself (DESIGN.md §5 ablations).

Times the two fingerprinter implementations and the full encode pass,
and sweeps the sampling parameters (w, zero-bits) the paper fixes at
w=16, k=4 (§III-B).
"""

import pytest

from repro.core import (ByteCache, ByteCachingEncoder, FingerprintScheme,
                        PolyFingerprinter, RabinFingerprinter)
from repro.core.policies import NaivePolicy, PacketMeta
from repro.workload.corpus import corpus_object

PACKET = corpus_object("file1", seed=3)[: 1460]
BULK = corpus_object("file1", seed=3)[: 64 * 1460]


def test_poly_fingerprint_throughput(benchmark):
    fingerprinter = PolyFingerprinter(16)
    result = benchmark(lambda: fingerprinter.anchors(PACKET, 0xF))
    assert result


def test_rabin_fingerprint_throughput(benchmark):
    fingerprinter = RabinFingerprinter(16)
    result = benchmark(lambda: fingerprinter.anchors(PACKET, 0xF))
    assert result


@pytest.mark.parametrize("zero_bits", [3, 4, 6])
def test_encode_pass_throughput(benchmark, zero_bits):
    """Full encode pass over 64 packets at different sampling densities."""
    scheme = FingerprintScheme(zero_bits=zero_bits)

    def run():
        encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
        out = 0
        for index in range(0, len(BULK), 1460):
            block = BULK[index: index + 1460]
            meta = PacketMeta(packet_id=index, flow=("s", 0, "c", 1),
                              tcp_seq=index, counter=index // 1460)
            out += encoder.encode(block, meta).bytes_out
        return out

    total_out = benchmark(run)
    assert 0 < total_out <= len(BULK) + 2 * (len(BULK) // 1460 + 1)


@pytest.mark.parametrize("window", [8, 16, 32, 64])
def test_window_size_match_recall(benchmark, window):
    """Smaller w finds more (shorter) repeats; w=16 is the paper's pick."""
    scheme = FingerprintScheme(window=window)

    def run():
        encoder = ByteCachingEncoder(scheme, ByteCache(), NaivePolicy())
        saved = 0
        for index in range(0, len(BULK), 1460):
            block = BULK[index: index + 1460]
            meta = PacketMeta(packet_id=index, flow=("s", 0, "c", 1),
                              tcp_seq=index, counter=index // 1460)
            result = encoder.encode(block, meta)
            saved += result.bytes_in - result.bytes_out
        return saved

    saved = benchmark(run)
    assert saved > 0
