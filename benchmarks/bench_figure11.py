"""Figure 11 — download times in the presence of packet losses.

Paper shape: ~28 % faster at zero loss; 1 % loss already nullifies the
gain (ratio crosses 1.0 near ~1 %); ~2x by 2 % loss; Cache Flush stays
below TCP-seq throughout.
"""

from conftest import print_report

from repro.experiments import scenarios
from bench_figure10 import SWEEP_KEY, SWEEP_KWARGS


def test_figure11(benchmark, sweep_cache):
    result = benchmark.pedantic(
        lambda: sweep_cache(SWEEP_KEY,
                            lambda: scenarios.figure10_11(**SWEEP_KWARGS)),
        rounds=1, iterations=1)
    print_report("Figure 11 (download time ratio)", result.report_delay())

    by_name = {s.name: s for s in result.delay_series}
    cf1 = by_name["cache_flush(file1)"]
    ts1 = by_name["tcp_seq(file1)"]
    # Faster than no-DRE at zero loss.
    assert cf1.point(0.0).mean < 1.0
    # The crossover: 1 % loss nullifies the delay gain.
    assert cf1.point(0.01).mean > 1.0
    # ~2x (or worse) by 2 % loss.
    assert cf1.point(0.02).mean > 1.5
    # The paper's headline insight: simple Cache Flush beats the more
    # aggressive TCP-seq scheme on delay under loss.
    assert cf1.point(0.02).mean < ts1.point(0.02).mean
    assert cf1.point(0.05).mean < ts1.point(0.05).mean
