"""Figure 6 — frequency of TCP connection stalls (naive encoding, 1 % loss).

Paper: out of 50 retrievals of a 587,567-byte ebook only one succeeded;
on average 25.5 % of the file (~100 packets, the reciprocal of the 1 %
loss rate) was retrieved before the connection stalled.
"""

from conftest import print_report

from repro.experiments import scenarios


def test_figure6(benchmark):
    result = benchmark.pedantic(scenarios.figure6,
                                kwargs={"runs": 50}, rounds=1, iterations=1)
    print_report("Figure 6", result.report())

    # Paper shape: stalls dominate overwhelmingly (49/50 in the paper).
    assert result.stall_count >= 45
    # Mean retrieved fraction sits near the reciprocal of the loss rate
    # (~100 packets of ~400); allow a generous band.
    assert 0.05 <= result.mean_fraction <= 0.50
