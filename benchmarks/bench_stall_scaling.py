"""§IV-C extrapolations — how size and loss rate govern naive stalls.

Two quantitative claims wrapped around Figure 6:

* "with a packet loss rate of 1 %, approximately 146,000 bytes can on
  average be retrieved before the TCP connection stalls" — the mean
  run to the first loss, MSS/p;
* via Gill et al.: half the web's volume is in objects >4 MB, so at
  any realistic loss rate a naive-encoded large transfer is near
  certain to stall (P ≈ 1-(1-p)^(size/MSS)).
"""

from conftest import print_report

from repro.experiments import scenarios


def test_stall_scaling(benchmark):
    result = benchmark.pedantic(scenarios.stall_scaling,
                                rounds=1, iterations=1)
    print_report("§IV-C stall scaling", result.report())

    # Larger objects are more likely to stall at fixed loss.
    sizes = sorted(result.stall_by_size)
    assert result.stall_by_size[sizes[-1]] >= result.stall_by_size[sizes[0]]
    # At 0.2% loss a 2 MB object (~1436 packets) should essentially
    # always die: P(stall) = 1-(0.998)^1436 ≈ 94%.
    assert result.stall_by_size[sizes[-1]] >= 0.7
    # ...while a 40 KB object (28 packets, P ≈ 5%) usually survives.
    assert result.stall_by_size[sizes[0]] <= 0.5

    # Mean retrieved tracks the MSS/p prediction within a small factor
    # (the run-to-first-loss distribution is geometric, so small-sample
    # means scatter; an order of magnitude is the meaningful check).
    for loss, measured in result.retrieved_by_loss.items():
        predicted = 1460 / loss
        assert 0.1 * predicted < measured < 4.0 * predicted, (loss, measured)
