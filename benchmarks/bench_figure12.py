"""Figure 12 — k-distance performance vs the distance k (File 1).

Paper shape: bytes sent fall as k grows (more encoding opportunity)
while delay worsens; k ≈ 8 is called out as a reasonable trade-off
(~24 % byte savings while still limiting delay).
"""

from conftest import bench_workers, print_report

from repro.experiments import scenarios


def test_figure12(benchmark):
    result = benchmark.pedantic(
        scenarios.figure12,
        kwargs={"ks": (2, 4, 8, 16, 32, 64, 80), "seeds": (11, 23),
                "workers": bench_workers()},
        rounds=1, iterations=1)
    print_report("Figure 12", result.report())

    bytes5 = {s.name: s for s in result.bytes_series}["bytes(5%)"]
    # Larger k → more compression → fewer bytes on the wire.
    assert bytes5.point(80).mean < bytes5.point(2).mean
    # At the paper's chosen k=8, byte savings over sending the raw file
    # are clearly positive at 5 % loss.
    assert bytes5.point(8).mean < 1.0

    delay5 = {s.name: s for s in result.delay_series}["delay(5%)"]
    # Delay worsens from small k to large k (aggressive compression
    # costs latency under loss, §VII).
    assert delay5.point(64).mean > delay5.point(2).mean
