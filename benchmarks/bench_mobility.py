"""§II — mobility vs gateway placement (the paper's motivation).

Not a table/figure in the evaluation section, but the paper's central
deployment argument (Fig. 1): transparent split-TCP byte caching breaks
under client mobility; IP-level byte caching survives it.  This bench
runs the handoff experiment in all three gateway modes.
"""

from conftest import print_report

from repro.experiments.mobility import MobilityConfig, run_mobility
from repro.metrics import format_table


def run_all():
    results = {}
    for mode in ("none", "ip-dre", "tcp-proxy"):
        results[mode] = run_mobility(MobilityConfig(
            mode=mode, handoff_at=0.25, loss_rate_a=0.01, seed=11))
    return results


def test_mobility(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for mode, result in results.items():
        rows.append([mode,
                     "completed" if result.completed else "STALLED",
                     result.outcome.bytes_received,
                     result.bytes_path_a, result.bytes_path_b])
    print_report("Mobility (§II)", format_table(
        "handoff at t=0.25 s, 1% loss on path A",
        ["mode", "outcome", "bytes rcvd", "path A bytes", "path B bytes"],
        rows))

    # §II-B: IP-level DRE survives the handoff...
    assert results["ip-dre"].completed
    assert results["ip-dre"].outcome.content_ok is True
    assert results["none"].completed
    # ...while §II-A's split-TCP mode stalls.
    assert not results["tcp-proxy"].completed
    # The proxy did compress on path A before dying.
    assert results["tcp-proxy"].bytes_path_a < results["none"].bytes_path_a
