"""Ablation (§VII) — why Cache Flush beats the aggressive schemes.

Reproduces the packet-size analysis at ~9 % loss: the paper found the
k-distance algorithm at k=8 ships *larger* packets than Cache Flush
(920 B vs 835 B — it forgoes compression inside its short window) while
at k=50 packets shrink (634 B) but the packet count rises (430 vs ~390)
because aggressive compression inflates the perceived loss rate and
triggers TCP retransmissions.
"""

from conftest import print_report

from repro.experiments import scenarios


def test_ablation_packet_size(benchmark):
    result = benchmark.pedantic(scenarios.ablation_packet_size,
                                kwargs={"seeds": (11, 23)},
                                rounds=1, iterations=1)
    print_report("Ablation §VII (avg packet size @ 9% loss)",
                 result.report())

    sizes = {label: size for label, size, _ in result.rows}
    counts = {label: count for label, _, count in result.rows}
    # k=8 restricts encoding opportunity: larger packets than k=50.
    assert sizes["k_distance(k=8)"] > sizes["k_distance(k=50)"]
    # Aggressive compression (k=50) sends more packets than k=8 —
    # its higher perceived loss triggers more retransmissions.
    assert counts["k_distance(k=50)"] >= counts["k_distance(k=8)"] * 0.9
