"""Ablation — congestion control: Reno vs CUBIC under byte caching.

The authors' 2012 Linux testbed defaulted to CUBIC; our substrate
defaults to Reno.  This bench measures how much the choice moves the
paper's delay-ratio curve (Fig. 11) — if the shapes agree across both,
the reproduction's conclusions don't hinge on the CC flavour.
"""

from conftest import print_report

from repro.experiments import ExperimentConfig, run_transfer
from repro.metrics import format_table


def measure():
    rows = []
    for congestion in ("reno", "cubic"):
        for loss in (0.0, 0.02, 0.05):
            baseline = run_transfer(ExperimentConfig(
                policy=None, loss_rate=loss, seed=11,
                tcp_congestion=congestion))
            dre = run_transfer(ExperimentConfig(
                policy="cache_flush", loss_rate=loss, seed=11,
                tcp_congestion=congestion))
            rows.append([
                congestion, f"{loss:.0%}",
                f"{dre.forward_bytes_on_link / baseline.forward_bytes_on_link:.2f}",
                (f"{dre.download_time / baseline.download_time:.2f}"
                 if dre.download_time and baseline.download_time else "-"),
            ])
    return rows


def test_congestion_ablation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_report("Ablation — Reno vs CUBIC", format_table(
        "cache_flush vs no-DRE ratios under both congestion controls",
        ["cc", "loss", "bytes ratio", "delay ratio"], rows))

    by_key = {(row[0], row[1]): row for row in rows}
    for congestion in ("reno", "cubic"):
        # Shapes hold under both: savings at 0 %, delay > 1 under loss.
        assert float(by_key[(congestion, "0%")][2]) < 0.7
        assert float(by_key[(congestion, "2%")][3]) > 1.0
