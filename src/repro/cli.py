"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
run        one transfer through the Fig. 3 testbed, with/without DRE
sweep      loss-rate sweep for a set of policies, printed as a table
mobility   the §II handoff experiment in any gateway mode
artifact   regenerate a paper artifact (table1, figure6, ..., table2)
corpus     list or describe the synthetic corpus objects
policies   list the available encoding policies
trace      dependency-graph analysis of one run (Fig. 14-style)
timeline   one telemetry-instrumented run rendered as ASCII time
           series (cwnd, RTO, perceived loss, cache, queues) plus the
           flight-recorder dump on stall/watchdog/time-limit
verify     differential runner: poly-vs-rabin fingerprinters, serial
           vs parallel sweeps, resilience-on vs off must all agree
fuzz       randomised scenarios + scripted faults with the invariant
           oracles armed; shrinks any violation to a minimal
           replayable JSON case
chaos      composable fault campaigns (link flaps, loss bursts,
           crashes, blackouts, memory pressure) with steady-state SLO
           oracles and a resilience scorecard; failed campaigns replay
           byte-for-byte from their repro.chaos/v1 JSON
lint       static architecture lint: layering DAG, determinism,
           hot-path discipline and robustness hygiene, with a
           committed ratcheting baseline
flame      one span-traced run rendered as a self/total-time flame
           tree (ASCII + folded-stacks output)
spans      print one causal chain end-to-end from a spans/v1 export
           (encoder decision -> wire -> decoder outcome, following
           cross-trace links; finds the §IV-B livelock by default)
bench      benchmark utilities; `bench diff` is the regression
           sentinel over committed BENCH_*.json history
serve-sim  population serving simulation: Zipf catalog + Poisson
           sessions as concurrent flows through one shared sharded
           byte cache, reporting warm-up-excluded steady-state hit
           ratio / bytes saved / p50-p99 download times
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.policies import ENCODER_POLICIES
from .experiments import ExperimentConfig, run_transfer
from .experiments import scenarios
from .experiments.mobility import MobilityConfig, run_mobility
from .metrics import format_table
from .workload import corpus_names, corpus_object

ARTIFACTS = {
    "table1": lambda: scenarios.table1(),
    "figure6": lambda: scenarios.figure6(),
    "figure10": lambda: scenarios.figure10_11(),
    "figure11": lambda: scenarios.figure10_11(),
    "figure12": lambda: scenarios.figure12(),
    "figure13": lambda: scenarios.figure13(),
    "table2": lambda: scenarios.table2(),
    "headline": lambda: scenarios.headline(),
    "ablation": lambda: scenarios.ablation_packet_size(),
    "extensions": lambda: scenarios.extensions(),
    "impairments": lambda: scenarios.impairment_matrix(),
    "stall-scaling": lambda: scenarios.stall_scaling(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Byte caching in wireless networks (ICDCS 2012) — "
                    "reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one transfer")
    run_cmd.add_argument("--policy", default="cache_flush",
                         help="encoding policy, or 'none' to disable DRE")
    run_cmd.add_argument("--k", type=int, default=None,
                         help="k for the k_distance policy")
    run_cmd.add_argument("--loss", type=float, default=0.0,
                         help="packet loss rate in percent (e.g. 5)")
    run_cmd.add_argument("--corrupt", type=float, default=0.0,
                         help="corruption rate in percent")
    run_cmd.add_argument("--reorder", type=float, default=0.0,
                         help="re-ordering rate in percent")
    run_cmd.add_argument("--corpus", default="file1",
                         choices=corpus_names())
    run_cmd.add_argument("--size", type=int, default=0,
                         help="object size in bytes (0 = corpus default)")
    run_cmd.add_argument("--seed", type=int, default=11)
    run_cmd.add_argument("--baseline", action="store_true",
                         help="also run the no-DRE baseline and print ratios")

    sweep_cmd = sub.add_parser("sweep", help="loss sweep over policies")
    sweep_cmd.add_argument("--policies", default="cache_flush,tcp_seq",
                           help="comma-separated policy names")
    sweep_cmd.add_argument("--losses", default="0,1,2,5,10",
                           help="comma-separated loss rates in percent")
    sweep_cmd.add_argument("--corpus", default="file1",
                           choices=corpus_names())
    sweep_cmd.add_argument("--seed", type=int, default=11)
    sweep_cmd.add_argument("--seeds", default=None,
                           help="comma-separated replicate seeds "
                                "(overrides --seed)")
    sweep_cmd.add_argument("--workers", type=int, default=None,
                           help="process-pool size (default: serial)")
    sweep_cmd.add_argument("--cache-dir", default=None,
                           help="on-disk result cache; an unchanged "
                                "sweep re-run is free")
    sweep_cmd.add_argument("--out", default=None,
                           help="write a BENCH_sweep.json file here")
    sweep_cmd.add_argument("--telemetry-out", default=None,
                           help="record per-cell telemetry and write a "
                                "bench_telemetry/v1 export here "
                                "(.jsonl = one cell per line)")

    mob_cmd = sub.add_parser("mobility", help="§II handoff experiment")
    mob_cmd.add_argument("--mode", default="ip-dre",
                         choices=["none", "ip-dre", "tcp-proxy"])
    mob_cmd.add_argument("--handoff", type=float, default=0.25,
                         help="handoff time in seconds")
    mob_cmd.add_argument("--loss", type=float, default=1.0,
                         help="path-A loss rate in percent")
    mob_cmd.add_argument("--seed", type=int, default=11)

    art_cmd = sub.add_parser("artifact",
                             help="regenerate a paper table/figure")
    art_cmd.add_argument("name", choices=sorted(ARTIFACTS))

    corpus_cmd = sub.add_parser("corpus", help="inspect corpus objects")
    corpus_cmd.add_argument("name", nargs="?", default=None,
                            choices=[None] + corpus_names())

    trace_cmd = sub.add_parser(
        "trace", help="run a transfer and print its dependency graph "
                      "(Fig. 14-style analysis)")
    trace_cmd.add_argument("--policy", default="naive",
                           choices=sorted(ENCODER_POLICIES))
    trace_cmd.add_argument("--loss", type=float, default=1.0,
                           help="loss rate in percent")
    trace_cmd.add_argument("--corpus", default="file1",
                           choices=corpus_names())
    trace_cmd.add_argument("--size", type=int, default=60 * 1460)
    trace_cmd.add_argument("--seed", type=int, default=11)
    trace_cmd.add_argument("--rows", type=int, default=25,
                           help="how many packets of the trace to print")
    trace_cmd.add_argument("--out", default=None,
                           help="also archive the full event trace as "
                                "JSON Lines to this file")

    timeline_cmd = sub.add_parser(
        "timeline", help="run one telemetry-instrumented transfer and "
                         "render its time series + flight recorder")
    timeline_cmd.add_argument(
        "--policy", default="classic",
        choices=sorted(ENCODER_POLICIES) + ["classic", "none"],
        help="encoding policy ('classic' = the paper's §IV naive "
             "scheme, 'none' disables DRE)")
    timeline_cmd.add_argument("--loss", type=float, default=5.0,
                              help="loss rate in percent")
    timeline_cmd.add_argument("--corpus", default="file1",
                              choices=corpus_names())
    timeline_cmd.add_argument("--size", type=int, default=60 * 1460,
                              help="object size in bytes")
    timeline_cmd.add_argument("--seed", type=int, default=11)
    timeline_cmd.add_argument("--resilience", action="store_true",
                              help="arm the gateway resilience layer "
                                   "(adds epoch/resync series)")
    timeline_cmd.add_argument("--series", default=None,
                              help="comma-separated substrings selecting "
                                   "which series to render (default: "
                                   "cwnd, RTO, in-flight, perceived loss, "
                                   "cache entries, queue depth)")
    timeline_cmd.add_argument("--width", type=int, default=64,
                              help="chart width in columns")
    timeline_cmd.add_argument("--height", type=int, default=8,
                              help="chart height in rows")
    timeline_cmd.add_argument("--events", type=int, default=20,
                              help="flight-recorder rows to print")
    timeline_cmd.add_argument("--out", default=None,
                              help="also write the raw telemetry/v1 "
                                   "export as JSON to this file")

    verify_cmd = sub.add_parser(
        "verify", help="differential runner: paired executions that "
                       "must agree (fingerprinters, sweep parallelism, "
                       "resilience layer)")
    verify_cmd.add_argument("--scale", default="smoke",
                            choices=["smoke", "headline"],
                            help="workload size: 'smoke' for seconds, "
                                 "'headline' for the paper-scale object "
                                 "(CI)")

    fuzz_cmd = sub.add_parser(
        "fuzz", help="randomised scenario fuzzing with the invariant "
                     "oracles armed")
    fuzz_cmd.add_argument("--seed", type=int, default=7,
                          help="root seed; case i of seed s is identical "
                               "on every machine")
    fuzz_cmd.add_argument("--iterations", type=int, default=100)
    fuzz_cmd.add_argument("--out-dir", default=None,
                          help="write shrunk violation cases as JSON "
                               "files into this directory")
    fuzz_cmd.add_argument("--replay", default=None, metavar="CASE.json",
                          help="re-run a saved case file instead of "
                               "generating new ones")
    fuzz_cmd.add_argument("--inject-bug", default=None,
                          choices=["tcp_seq_gate", "cache_flush_gate",
                                   "k_distance_gate"],
                          help="deliberately disable one policy's safety "
                               "gate (the matching oracle must trip; "
                               "exercises find+shrink+replay)")

    chaos_cmd = sub.add_parser(
        "chaos", help="fault campaigns with steady-state SLO oracles "
                      "and a resilience scorecard")
    chaos_sub = chaos_cmd.add_subparsers(dest="chaos_command",
                                         required=True)
    chaos_sub.add_parser("list", help="list the canonical campaigns")
    chaos_run = chaos_sub.add_parser(
        "run", help="run a canonical campaign and print its scorecard")
    chaos_run.add_argument("name", help="campaign name (see: chaos list)")
    chaos_run.add_argument("--scale", default="smoke",
                           choices=["smoke", "full"],
                           help="workload size: 'smoke' for seconds, "
                                "'full' for the bigger object + extra "
                                "seed")
    chaos_run.add_argument("--policies", default=None, metavar="P1,P2",
                           help="comma-separated policy list (default: "
                                "the three robust §V policies)")
    chaos_run.add_argument("--no-resilience", action="store_true",
                           help="disarm the resilience layer (the "
                                "negative control: oracles should fail)")
    chaos_run.add_argument("--workers", type=int, default=None,
                           help="run campaign cells on a process pool")
    chaos_run.add_argument("--out", default=None, metavar="REPORT.json",
                           help="write the repro.chaos/v1 scorecard "
                                "to this file")
    chaos_replay = chaos_sub.add_parser(
        "replay", help="re-run a saved scorecard and check it "
                       "reproduces byte-for-byte")
    chaos_replay.add_argument("report", metavar="REPORT.json",
                              help="a repro.chaos/v1 file written by "
                                   "'chaos run --out'")
    chaos_replay.add_argument("--workers", type=int, default=None)

    lint_cmd = sub.add_parser(
        "lint", help="architecture lint: layering DAG, determinism "
                     "taint, process-boundary purity, exception flow, "
                     "hot-path discipline, robustness hygiene")
    lint_cmd.add_argument("mode", nargs="?", default=None,
                          choices=["graph"],
                          help="'graph' dumps the call graph and taint "
                               "traces (repro.lintgraph/v1) instead of "
                               "running the rules")
    lint_cmd.add_argument("--root", default=".",
                          help="repo root holding pyproject.toml "
                               "(default: cwd)")
    lint_cmd.add_argument("--format", default="text",
                          choices=["text", "json"],
                          dest="fmt", help="report format (json emits the "
                                           "repro.lint/v1 document)")
    lint_cmd.add_argument("--select", default=None, metavar="RULE,...",
                          help="run only these rule ids or families "
                               "(e.g. layering,determinism-wallclock)")
    lint_cmd.add_argument("--baseline", default=None, metavar="PATH",
                          help="baseline file (default: [tool.repro-lint] "
                               "baseline key)")
    lint_cmd.add_argument("--no-baseline", action="store_true",
                          help="ignore the baseline: report every finding "
                               "as active")
    lint_cmd.add_argument("--write-baseline", action="store_true",
                          help="rewrite the baseline from current "
                               "findings (ratchet: prunes stale entries)")
    lint_cmd.add_argument("--out", default=None,
                          help="also write the repro.lint/v1 JSON report "
                               "to this file")
    lint_cmd.add_argument("--show-suppressed", action="store_true",
                          help="include pragma-suppressed findings in "
                               "text output")

    def add_span_run_args(cmd) -> None:
        """Shared args for commands that run one span-traced transfer."""
        cmd.add_argument(
            "--policy", default="classic",
            choices=sorted(ENCODER_POLICIES) + ["classic", "none"],
            help="encoding policy ('classic' = the paper's §IV naive "
                 "scheme, 'none' disables DRE)")
        cmd.add_argument("--loss", type=float, default=1.0,
                         help="loss rate in percent")
        cmd.add_argument("--corpus", default="file1",
                         choices=corpus_names())
        cmd.add_argument("--size", type=int, default=60 * 1460,
                         help="object size in bytes")
        cmd.add_argument("--seed", type=int, default=11)
        cmd.add_argument("--resilience", action="store_true",
                         help="arm the gateway resilience layer")
        cmd.add_argument("--sample", type=int, default=1,
                         help="trace 1 in N flows (default: all)")
        cmd.add_argument("--from", dest="from_file", default=None,
                         metavar="SPANS.json",
                         help="read an existing spans/v1 export instead "
                              "of running a transfer")
        cmd.add_argument("--out", default=None, metavar="SPANS.json",
                         help="write the spans/v1 export to this file")

    flame_cmd = sub.add_parser(
        "flame", help="span-traced run rendered as a flame tree "
                      "(self/total time per pipeline stage)")
    add_span_run_args(flame_cmd)
    flame_cmd.add_argument("--weight", default="wall",
                           choices=["wall", "sim", "count"],
                           help="node weight: host wall time, sim time, "
                                "or span count")
    flame_cmd.add_argument("--depth", type=int, default=None,
                           help="maximum stack depth to render")
    flame_cmd.add_argument("--min-frac", type=float, default=0.0,
                           dest="min_frac",
                           help="hide nodes below this fraction of the "
                                "total weight")
    flame_cmd.add_argument("--folded", default=None, metavar="FILE",
                           help="also write folded-stacks lines "
                                "(flamegraph.pl / speedscope input)")

    spans_cmd = sub.add_parser(
        "spans", help="print one causal chain end-to-end "
                      "(default: the §IV-B livelock suspect)")
    spans_cmd.add_argument("trace", nargs="?", type=int, default=None,
                           help="trace id to walk (default: auto-detect "
                                "the circular-dependency chain)")
    add_span_run_args(spans_cmd)
    spans_cmd.add_argument("--list", action="store_true",
                           help="list traces instead of walking one")
    spans_cmd.add_argument("--hops", type=int, default=6,
                           help="cross-trace hops to follow")

    bench_cmd = sub.add_parser(
        "bench", help="benchmark utilities (regression sentinel)")
    bench_sub = bench_cmd.add_subparsers(dest="bench_command",
                                         required=True)
    bench_diff = bench_sub.add_parser(
        "diff", help="compare current BENCH_*.json records against "
                     "their committed history; non-zero exit on a "
                     "statistically significant regression")
    bench_diff.add_argument("--root", default=".",
                            help="repo root holding pyproject.toml "
                                 "(default: cwd)")
    bench_diff.add_argument("--dir", default=None, metavar="PATH",
                            help="directory holding the BENCH_*.json "
                                 "files (default: --root)")
    bench_diff.add_argument("--window", type=int, default=None,
                            help="history records to compare against "
                                 "(default: [tool.repro-bench] window)")
    bench_diff.add_argument("--out", default=None, metavar="REPORT.json",
                            help="write the bench_diff/v1 report")

    serve_cmd = sub.add_parser(
        "serve-sim", help="population serving simulation over a shared "
                          "sharded byte cache")
    serve_cmd.add_argument("--users", type=int, default=50,
                           help="subscriber population size")
    serve_cmd.add_argument("--contents", type=int, default=200,
                           help="catalog size (Zipf-ranked)")
    serve_cmd.add_argument("--alpha", type=float, default=0.8,
                           help="Zipf skew of content popularity")
    serve_cmd.add_argument("--mean-object", type=int, default=8192,
                           help="mean object size in bytes")
    serve_cmd.add_argument("--cache-mb", type=float, default=4.0,
                           help="shared cache budget per direction (MB)")
    serve_cmd.add_argument("--shards", type=int, default=8,
                           help="cache shard count (0 = unsharded)")
    serve_cmd.add_argument("--admission", type=float, default=1.0,
                           help="probabilistic admission fraction (0,1]")
    serve_cmd.add_argument("--policy", default="cache_flush",
                           help="encoding policy for the gateway pair")
    serve_cmd.add_argument("--loss", type=float, default=1.0,
                           help="bottleneck loss rate in percent")
    serve_cmd.add_argument("--arrival-rate", type=float, default=25.0,
                           help="user arrivals per second (Poisson)")
    serve_cmd.add_argument("--requests-per-user", type=float, default=2.0,
                           help="geometric mean session length")
    serve_cmd.add_argument("--max-requests", type=int, default=None,
                           help="cap the schedule (soak-style runs)")
    serve_cmd.add_argument("--seed", type=int, default=7)
    serve_cmd.add_argument("--verify", action="store_true",
                           help="arm per-flow content checks and the "
                                "sharded-cache invariant oracle")
    serve_cmd.add_argument("--json", action="store_true",
                           help="print the full serving/v1 report")
    serve_cmd.add_argument("--out", default=None, metavar="REPORT.json",
                           help="write the serving/v1 report here")

    sub.add_parser("policies", help="list encoding policies")
    return parser


def _percent(value: float) -> float:
    return value / 100.0


def cmd_run(args) -> int:
    policy = None if args.policy in ("none", "") else args.policy
    if policy is not None and policy not in ENCODER_POLICIES:
        print(f"unknown policy {policy!r}; try: "
              f"{', '.join(sorted(ENCODER_POLICIES))}", file=sys.stderr)
        return 2
    kwargs = {"k": args.k} if args.k is not None else {}
    config = ExperimentConfig(
        corpus=args.corpus, file_size=args.size, policy=policy,
        policy_kwargs=kwargs, loss_rate=_percent(args.loss),
        corrupt_rate=_percent(args.corrupt),
        reorder_rate=_percent(args.reorder), seed=args.seed)
    result = run_transfer(config)
    rows = [
        ["completed", result.completed],
        ["bytes received", f"{result.outcome.bytes_received:,}"],
        ["download time",
         "-" if result.download_time is None
         else f"{result.download_time:.3f}s"],
        ["bytes on link (fwd)", f"{result.forward_bytes_on_link:,}"],
        ["perceived loss", f"{result.perceived_loss_rate:.1%}"],
        ["server retransmissions", result.server_retransmissions],
    ]
    if args.baseline:
        baseline = run_transfer(config.with_updates(policy=None,
                                                    policy_kwargs={}))
        rows.append(["bytes ratio vs no-DRE",
                     f"{result.forward_bytes_on_link / baseline.forward_bytes_on_link:.3f}"])
        if result.download_time and baseline.download_time:
            rows.append(["delay ratio vs no-DRE",
                         f"{result.download_time / baseline.download_time:.3f}"])
    print(format_table(
        f"{args.corpus} @ {args.loss:.3g}% loss, policy={args.policy}",
        ["metric", "value"], rows))
    return 0


def cmd_sweep(args) -> int:
    from .experiments.sweep import (SweepSpec, run_sweep, write_bench_json,
                                    write_telemetry_export)

    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    losses = [float(x) / 100 for x in args.losses.split(",") if x.strip()]
    seeds = ([int(x) for x in args.seeds.split(",") if x.strip()]
             if args.seeds else [args.seed])
    pairs = [(policy, {"k": 8} if policy == "k_distance" else {})
             for policy in policies]
    spec = SweepSpec(
        base=ExperimentConfig(corpus=args.corpus,
                              telemetry=bool(args.telemetry_out)),
        grid={"policy,policy_kwargs": pairs, "loss_rate": losses},
        seeds=tuple(seeds), paired_baseline=True)
    swept = run_sweep(spec, workers=args.workers, cache_dir=args.cache_dir)

    def mean(values):
        return sum(values) / len(values) if values else None

    cells = iter(swept)
    rows = []
    for policy, _kwargs in pairs:
        for loss in losses:
            group = [next(cells) for _ in seeds]
            points = [cell.ratio_point(loss) for cell in group]
            delays = [p.delay_ratio for p in points
                      if p.delay_ratio is not None]
            delay = mean(delays)
            rows.append([
                policy, f"{loss:.0%}",
                "yes" if all(c.result.completed for c in group) else "STALL",
                f"{mean([p.bytes_ratio for p in points]):.2f}",
                "-" if delay is None else f"{delay:.2f}",
                f"{mean([c.result.perceived_loss_rate for c in group]):.1%}"])
    print(format_table(
        f"loss sweep on {args.corpus} (ratios vs no-DRE baseline, "
        f"{len(seeds)} seed{'s' if len(seeds) > 1 else ''})",
        ["policy", "loss", "done", "bytes ratio", "delay ratio",
         "perceived"], rows))
    print(f"cells: {len(swept)}  simulated: {swept.executed}  "
          f"from cache: {swept.cached}  wall-clock: {swept.wall_clock:.1f}s")
    if args.out:
        write_bench_json(swept, args.out, name=f"sweep-{args.corpus}")
        print(f"wrote {args.out}")
    if args.telemetry_out:
        payload = write_telemetry_export(swept, args.telemetry_out,
                                         name=f"sweep-{args.corpus}")
        print(f"wrote {args.telemetry_out} "
              f"({payload['summary']['with_telemetry']} cells)")
    return 0


def cmd_mobility(args) -> int:
    result = run_mobility(MobilityConfig(
        mode=args.mode, handoff_at=args.handoff,
        loss_rate_a=_percent(args.loss), seed=args.seed))
    print(format_table(
        f"mobility handoff at t={args.handoff}s, mode={args.mode}",
        ["metric", "value"],
        [["outcome", "completed" if result.completed else "STALLED"],
         ["bytes received",
          f"{result.outcome.bytes_received:,} / "
          f"{result.outcome.expected_size:,}"],
         ["bytes on path A", f"{result.bytes_path_a:,}"],
         ["bytes on path B", f"{result.bytes_path_b:,}"]]))
    return 0


def cmd_artifact(args) -> int:
    result = ARTIFACTS[args.name]()
    if args.name == "figure10":
        print(result.report_bytes())
    elif args.name == "figure11":
        print(result.report_delay())
    else:
        print(result.report())
    return 0


def cmd_corpus(args) -> int:
    if args.name is None:
        print(format_table("corpus objects", ["name"],
                           [[name] for name in corpus_names()]))
        return 0
    data = corpus_object(args.name)
    ratio = scenarios.offline_compression_ratio(data)
    print(format_table(
        f"corpus object {args.name!r}",
        ["metric", "value"],
        [["size", f"{len(data):,} bytes"],
         ["offline compression ratio", f"{ratio:.3f}"],
         ["byte savings", f"{1 - ratio:.1%}"]]))
    return 0


def cmd_trace(args) -> int:
    from .app.transfer import FileClient, FileServer
    from .experiments.runner import (FILE_NAME, SERVER_ADDR, build_testbed)
    from .metrics.depgraph import format_dependency_trace, graph_from_gateways
    from .workload import corpus_object as load_object

    config = ExperimentConfig(
        corpus=args.corpus, file_size=args.size, policy=args.policy,
        policy_kwargs={}, loss_rate=_percent(args.loss), seed=args.seed,
        time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0,
        trace=bool(args.out))
    testbed = build_testbed(config)
    data = load_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           on_done=lambda _o: testbed.sim.stop())
    testbed.sim.run(until=config.time_limit)

    encoder = testbed.gateways.encoder
    decoder = testbed.gateways.decoder
    graph, lost = graph_from_gateways(encoder, decoder.delivered_ids,
                                      segment_keys=encoder.segment_log)
    dead = graph.undecodable_closure(lost) | lost
    print(format_dependency_trace(graph, dead, max_rows=args.rows))
    cycles = graph.segment_cycles()
    print()
    print(format_table(
        "dependency analysis", ["metric", "value"],
        [["transfer completed", outcome.completed],
         ["encoded packets", len(graph.sent)],
         ["average dependency degree", f"{graph.average_degree():.2f}"],
         ["lost/undelivered packets", len(lost)],
         ["undecodable closure", len(dead) - len(lost)],
         ["loss amplification", f"{graph.loss_amplification(lost):.2f}x"],
         ["segment-level cycles (§IV-B)", len(cycles)],
         ["self-dependency livelock", graph.has_self_dependency()]]))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(testbed.tracer.to_jsonl())
        print(f"\nwrote {len(testbed.tracer.records)} trace records "
              f"to {args.out}")
    return 0


#: Default substring filters for ``repro timeline`` — the trajectories
#: that explain a stall: window collapse, RTO backoff, perceived loss
#: growth, cache occupancy, and bottleneck queueing.
_TIMELINE_DEFAULT_SERIES = ("tcp.cwnd", "tcp.rto", "tcp.inflight",
                            "dre.perceived_loss", "cache.entries",
                            "link.queue_depth")


def cmd_timeline(args) -> int:
    from .metrics.report import format_flight_recorder, format_timeseries

    # "classic" is the paper's name for the first-generation byte
    # caching scheme — the repo implements it as the "naive" policy.
    policy = {"classic": "naive", "none": None}.get(args.policy, args.policy)
    config = ExperimentConfig(
        corpus=args.corpus, file_size=args.size, policy=policy,
        policy_kwargs={}, loss_rate=_percent(args.loss), seed=args.seed,
        resilience=args.resilience, telemetry=True,
        # Bounded stall settings (as in `repro trace`): a naive-policy
        # livelock exhausts 8 retries at <= 2 s RTO in well under the
        # 120 s limit instead of grinding through the full defaults.
        time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0)
    result = run_transfer(config)
    telemetry = result.telemetry
    sampler = telemetry["sampler"]

    print(format_table(
        f"timeline: {args.corpus} @ {args.loss:.3g}% loss, "
        f"policy={args.policy}",
        ["metric", "value"],
        [["run ended", telemetry["reason"]],
         ["completed", result.completed],
         ["sim time", f"{result.sim_time:.3f}s"],
         ["perceived loss", f"{result.perceived_loss_rate:.1%}"],
         ["samples", len(sampler["times"])],
         ["sample interval", f"{sampler['interval']:.3g}s"
          + (f" (decimated x{sampler['decimations']})"
             if sampler["decimations"] else "")],
         ["flight-recorder events", telemetry["flight_recorder_events_seen"]]]))

    filters = ([part.strip() for part in args.series.split(",")
                if part.strip()] if args.series
               else list(_TIMELINE_DEFAULT_SERIES))
    shown = 0
    for key, values in sampler["series"].items():
        if not any(part in key for part in filters):
            continue
        print()
        print(format_timeseries(key, sampler["times"], values,
                                width=args.width, height=args.height))
        shown += 1
    if not shown:
        print("\nno series matched "
              f"{filters}; available: {', '.join(sampler['series'])}")

    events = telemetry["flight_recorder"]
    if events:
        print()
        print(format_flight_recorder(
            events[-args.events:],
            title=f"Flight recorder (last {min(args.events, len(events))} "
                  f"of {telemetry['flight_recorder_events_seen']} events, "
                  f"dumped on {telemetry['reason']})"))
    elif telemetry["reason"] == "completed":
        print("\ntransfer completed cleanly; flight recorder not dumped "
              "(it only dumps on stall, watchdog trip, or time limit)")

    if args.out:
        import json as _json
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(telemetry, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote telemetry/v1 export to {args.out}")
    return 0


def cmd_verify(args) -> int:
    from .verify.differential import run_differential

    results = run_differential(args.scale, log=print)
    mismatches = [r for r in results if not r.matched]
    print()
    if mismatches:
        print(f"FAILED: {len(mismatches)}/{len(results)} comparisons "
              f"mismatched")
        return 1
    print(f"all {len(results)} differential comparisons agree "
          f"(scale={args.scale})")
    return 0


def cmd_fuzz(args) -> int:
    import os

    from .verify.fuzz import (case_from_json, case_to_json, run_campaign,
                              run_case)

    if args.replay:
        with open(args.replay, "r", encoding="utf-8") as handle:
            import json as _json
            payload = _json.load(handle)
        case = case_from_json(_json.dumps(payload))
        expected = payload.get("violation")
        outcome = run_case(case)
        got = outcome.violation
        if got is not None:
            print(f"violation [{got['oracle']}]: {got['message']}")
        else:
            print(f"no violation (completed={outcome.completed}, "
                  f"stalled={outcome.stalled}, "
                  f"sim_time={outcome.sim_time:.2f}s)")
        matches = ((got is None) == (expected is None)
                   and (expected is None
                        or got["oracle"] == expected["oracle"]))
        print("replay MATCHES the recorded outcome" if matches
              else "replay DIVERGES from the recorded outcome")
        return 0 if matches else 1

    print(f"fuzzing: seed={args.seed}, {args.iterations} iterations"
          + (f", injected bug: {args.inject_bug}" if args.inject_bug
             else ""))
    result = run_campaign(args.seed, args.iterations,
                          inject_bug=args.inject_bug, log=print)
    if result.violations == 0:
        print(f"{result.iterations} cases, no invariant violations")
        # Without a deliberate bug, clean is the expected outcome; with
        # one, the oracles failed to catch it.
        return 1 if args.inject_bug else 0

    print(f"{result.violations} violation(s); first at case "
          f"{result.first_violation_index}")
    if result.shrunk_case is not None and args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        path = os.path.join(
            args.out_dir,
            f"case-seed{args.seed}-{result.first_violation_index}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(case_to_json(result.shrunk_case,
                                      result.shrunk_violation))
            handle.write("\n")
        print(f"wrote shrunk case to {path} "
              f"(replay with: repro fuzz --replay {path})")
    return 0 if args.inject_bug else 1


def cmd_chaos(args) -> int:
    from .chaos import (CAMPAIGNS, CHAOS_POLICIES, canonical_campaign,
                        format_scorecard, replay_report, run_campaign,
                        validate_chaos_report)

    if args.chaos_command == "list":
        rows = [[name, CAMPAIGNS[name]("smoke").description]
                for name in sorted(CAMPAIGNS)]
        print(format_table("canonical chaos campaigns",
                           ["name", "description"], rows))
        return 0

    if args.chaos_command == "replay":
        with open(args.report, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        validate_chaos_report(doc)
        report, matches = replay_report(doc, workers=args.workers)
        print(format_scorecard(report))
        print("replay MATCHES the recorded scorecard" if matches
              else "replay DIVERGES from the recorded scorecard")
        return 0 if matches else 1

    campaign = canonical_campaign(args.name, scale=args.scale)
    policies = (tuple(p.strip() for p in args.policies.split(",")
                      if p.strip())
                if args.policies else CHAOS_POLICIES)
    report = run_campaign(campaign, policies=policies,
                          resilience=not args.no_resilience,
                          workers=args.workers)
    payload = report.to_dict()
    validate_chaos_report(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote scorecard to {args.out} "
              f"(replay with: repro chaos replay {args.out})")
    print(format_scorecard(report))
    return 0 if report.passed else 1


def cmd_lint(args) -> int:
    from pathlib import Path

    from .analysis import (format_text, rewrite_baseline, run_lint,
                           select_rules, validate_lint_report)

    root = Path(args.root).resolve()
    if args.mode == "graph":
        return _lint_graph(root, args)
    select = ([token.strip() for token in args.select.split(",")
               if token.strip()] if args.select else None)
    try:
        select_rules(select)  # fail fast on unknown selectors
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline) if args.baseline else None
    report = run_lint(root, select=select, baseline_path=baseline_path,
                      use_baseline=not args.no_baseline)

    if args.write_baseline:
        count = rewrite_baseline(root, report, baseline_path=baseline_path)
        target = baseline_path or "the configured baseline"
        print(f"baseline rewritten: {count} finding(s) recorded in {target}")
        return 0

    payload = report.to_dict()
    validate_lint_report(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.fmt == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(format_text(report,
                          verbose_suppressed=args.show_suppressed))
    return report.exit_code


def _lint_graph(root, args) -> int:
    """``repro lint graph``: export the repro.lintgraph/v1 document."""
    from .analysis import (build_lintgraph, format_graph_text,
                           validate_lintgraph)

    payload = build_lintgraph(root)
    validate_lintgraph(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.fmt == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(format_graph_text(payload))
    return 0


def _spans_doc(args) -> dict:
    """A spans/v1 export: from ``--from FILE`` or by running a transfer."""
    if args.from_file:
        with open(args.from_file, "r", encoding="utf-8") as handle:
            return json.load(handle)
    policy = {"classic": "naive", "none": None}.get(args.policy, args.policy)
    config = ExperimentConfig(
        corpus=args.corpus, file_size=args.size, policy=policy,
        policy_kwargs={}, loss_rate=_percent(args.loss), seed=args.seed,
        resilience=args.resilience,
        spans=True, spans_kwargs={"trace_sample": args.sample},
        # Bounded stall settings (as in `repro timeline`): a naive
        # livelock exhausts 8 retries at <= 2 s RTO well inside the
        # 120 s limit instead of grinding through the full defaults.
        time_limit=120.0, tcp_max_retries=8, tcp_max_rto=2.0)
    result = run_transfer(config)
    doc = result.spans
    assert doc is not None  # spans=True guarantees an export
    if not args.from_file:
        print(f"ran {args.corpus} @ {args.loss:.3g}% loss, "
              f"policy={args.policy}: completed={result.completed} "
              f"sim_time={result.sim_time:.3f}s "
              f"spans={doc['summary']['spans']} "
              f"traces={doc['summary']['traces']}")
    return doc


def cmd_flame(args) -> int:
    from .metrics.flame import build_flame, format_flame, to_folded
    from .metrics.spans import validate_spans

    doc = _spans_doc(args)
    validate_spans(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote spans/v1 export to {args.out}")
    root = build_flame(doc, weight=args.weight)
    print()
    print("\n".join(format_flame(root, weight=args.weight,
                                 max_depth=args.depth,
                                 min_fraction=args.min_frac)))
    if args.folded:
        lines = to_folded(root, weight=args.weight)
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"\nwrote {len(lines)} folded-stack lines to {args.folded}")
    return 0


def cmd_spans(args) -> int:
    from .metrics.spans import (find_livelock_trace, format_chain,
                                spans_by_trace, validate_spans)

    doc = _spans_doc(args)
    validate_spans(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote spans/v1 export to {args.out}")
    by_trace = spans_by_trace(doc)
    if not by_trace:
        print("export contains no spans (was tracing sampled away? "
              "try --sample 1)")
        return 1

    if args.list:
        rows = []
        for tid in sorted(by_trace):
            spans = by_trace[tid]
            root = min(spans, key=lambda s: s["span"])
            tags = root["tags"]
            rows.append([tid, root["name"], len(spans),
                         tags.get("packet", "-"), tags.get("seq", "-")])
        print(format_table(f"{len(by_trace)} traces",
                           ["trace", "root", "spans", "packet", "seq"],
                           rows))
        return 0

    trace = args.trace
    if trace is None:
        trace = find_livelock_trace(doc)
        if trace is not None:
            print(f"livelock suspect: trace t{trace} (a decode failed on "
                  "a fingerprint whose carrier was this same segment)")
        else:
            trace = min(by_trace)
            print("no circular-dependency signature found; showing "
                  f"trace t{trace} (pick one with --list)")
    print()
    print("\n".join(format_chain(doc, trace, max_hops=args.hops)))
    return 0


def cmd_bench(args) -> int:
    from pathlib import Path

    from .metrics.regression import (bench_diff_report, format_bench_diff,
                                     run_bench_diff)

    diffs, exit_code = run_bench_diff(
        Path(args.root).resolve(),
        bench_dir=Path(args.dir) if args.dir else None,
        window=args.window)
    print("\n".join(format_bench_diff(diffs)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(bench_diff_report(diffs), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote bench_diff/v1 report to {args.out}")
    regressions = sum(1 for d in diffs if d.status == "regression")
    if exit_code:
        print(f"REGRESSION: {regressions} bench(es) significantly "
              "slower than their history")
    else:
        print("no significant regressions")
    return exit_code


def cmd_serve_sim(args) -> int:
    from .serving import ServingSpec, run_serving

    if args.policy not in ENCODER_POLICIES:
        print(f"unknown policy {args.policy!r}; try: "
              f"{', '.join(sorted(ENCODER_POLICIES))}", file=sys.stderr)
        return 2
    spec = ServingSpec(
        users=args.users, n_contents=args.contents, alpha=args.alpha,
        mean_object_bytes=args.mean_object,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        cache_shards=args.shards, cache_admission=args.admission,
        policy=args.policy, loss_rate=_percent(args.loss),
        arrival_rate=args.arrival_rate,
        requests_per_user=args.requests_per_user,
        max_requests=args.max_requests,
        seed=args.seed, verify=args.verify)
    report = run_serving(spec)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(report, indent=1))
        return 0
    requests = report["requests"]
    steady = report["steady"]
    cache = report.get("cache", {})
    pool = report["pool"]

    def _secs(value):
        return "-" if value is None else f"{value:.3f}s"

    rows = [
        ["requests (total/completed)",
         f"{requests['total']} / {requests['completed']}"],
        ["timeouts / stalled / unfinished",
         f"{requests['timeouts']} / {requests['stalled']} / "
         f"{requests['unfinished']}"],
        ["warm-up requests excluded", requests["warmup"]],
        ["steady hit ratio", f"{steady['hit_ratio']:.1%}"],
        ["steady bytes saved", f"{steady['bytes_saved_ratio']:.1%}"],
        ["steady p50 download", _secs(steady["p50_download_s"])],
        ["steady p99 download", _secs(steady["p99_download_s"])],
        ["cache bytes used / budget",
         f"{cache.get('bytes_used', 0):,} / {cache.get('byte_budget', 0):,}"],
        ["cache evictions", cache.get("evictions", 0)],
        ["pool high-water / released",
         f"{pool['high_water']} / {pool['released']}"],
        ["simulated time", f"{report['sim_time']:.1f}s"],
    ]
    if "shards" in cache:
        occupied = [s for s in cache["shards"] if s["payloads"]]
        rows.append(["shards occupied",
                     f"{len(occupied)} / {len(cache['shards'])}"])
    if "oracle_checks" in report:
        rows.append(["oracle checks (all passed)", report["oracle_checks"]])
    print(format_table(
        f"serve-sim: {args.users} users x {args.contents} contents, "
        f"alpha={args.alpha}, cache={args.cache_mb:g}MB/"
        f"{args.shards} shards",
        ["metric", "value"], rows))
    return 0


def cmd_policies(_args) -> int:
    from .core.policies import make_policy_pair

    rows = []
    for name in sorted(ENCODER_POLICIES):
        encoder_policy, decoder_policy = make_policy_pair(name)
        rows.append([name, type(encoder_policy).__name__,
                     type(decoder_policy).__name__])
    print(format_table("encoding policies", ["name", "encoder", "decoder"],
                       rows))
    return 0


COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "mobility": cmd_mobility,
    "artifact": cmd_artifact,
    "corpus": cmd_corpus,
    "trace": cmd_trace,
    "timeline": cmd_timeline,
    "verify": cmd_verify,
    "fuzz": cmd_fuzz,
    "chaos": cmd_chaos,
    "lint": cmd_lint,
    "flame": cmd_flame,
    "spans": cmd_spans,
    "bench": cmd_bench,
    "serve-sim": cmd_serve_sim,
    "policies": cmd_policies,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
