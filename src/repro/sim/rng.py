"""Named deterministic random streams.

Every stochastic component (link loss, corruption byte positions,
workload content, ...) draws from its own named child stream derived
from a single experiment seed.  This keeps components independent:
adding a random draw inside the link does not perturb the workload
generator, so results stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """Hands out named, independent, deterministic random streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the named ``random.Random`` stream."""
        if name not in self._py:
            self._py[name] = random.Random(derive_seed(self.seed, name))
        return self._py[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the named numpy generator stream."""
        if name not in self._np:
            self._np[name] = np.random.default_rng(derive_seed(self.seed, name))
        return self._np[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at a derived seed."""
        return RngRegistry(derive_seed(self.seed, name))
