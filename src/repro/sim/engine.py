"""Discrete-event simulation engine.

The whole reproduction runs on a single-threaded event loop with a
simulated clock.  Events are callbacks scheduled at absolute simulated
times; ties are broken by insertion order so runs are fully
deterministic for a given seed.

The engine is deliberately minimal: the TCP stack, links and gateways
are ordinary objects that schedule callbacks — there are no coroutines
or real threads involved, which keeps runs reproducible and fast.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


#: Upper bound on recycled Event shells kept by a Simulator — enough
#: for any realistic in-flight window, small enough that a burst does
#: not pin memory forever.
_EVENT_POOL_CAP = 1024


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.at` / :meth:`Simulator.after` so the
    caller can cancel the callback (e.g. a retransmission timer being
    disarmed by an ACK).  The run loop orders events by heap entries of
    ``(time, seq, event)`` tuples, so ordering is resolved by C-level
    tuple comparison and this class is never compared on the hot path.

    Events created by :meth:`Simulator.post` / :meth:`post_after` are
    *pooled*: no handle escapes, so the run loop recycles the shell
    into the simulator's free list after dispatch instead of leaving it
    for the allocator.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "done", "_sim",
                 "pooled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: "Optional[Simulator]" = None, pooled: bool = False):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.done = False
        self._sim = sim
        self.pooled = pooled

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled or self.done:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with a simulated clock."""

    def __init__(self, profiler=None) -> None:
        # Heap of (time, seq, Event): comparisons stay on primitive
        # tuples (C code) instead of calling Event.__lt__ per sift.
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Live (scheduled, neither cancelled nor executed) event count;
        #: maintained incrementally so :meth:`pending` is O(1).
        self._live = 0
        #: Optional :class:`repro.metrics.profiling.StageProfiler`
        #: accumulating an "event_dispatch" stage.
        self.profiler = profiler
        # Free list of Event shells for post()/post_after(); see Event.
        self._pool: list = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        seq = next(self._counter)
        event = Event(time, seq, fn, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, fn, *args)

    def post(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time``, fire-and-forget.

        Like :meth:`at` but returns no handle: the event cannot be
        cancelled, and its shell is recycled through the simulator's
        free list after dispatch.  Links and other components that
        never cancel their callbacks use this to keep the per-packet
        event allocation out of the hot loop.
        """
        if time < self._now:
            raise SimulationError("cannot schedule event in the past")
        seq = next(self._counter)
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.done = False
        else:
            event = Event(time, seq, fn, args, self, True)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1

    def post_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`post` at ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("negative delay")
        self.post(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have been processed.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        profiler = self.profiler
        try:
            while heap and not self._stopped:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                event = heappop(heap)[2]
                if event.cancelled:
                    continue
                event.done = True
                self._live -= 1
                self._now = event.time
                if profiler is not None:
                    started = perf_counter()
                    event.fn(*event.args)
                    profiler.add("event_dispatch", perf_counter() - started)
                else:
                    event.fn(*event.args)
                if event.pooled and len(self._pool) < _EVENT_POOL_CAP:
                    event.fn = event.args = None  # type: ignore[assignment]
                    self._pool.append(event)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and not self._stopped:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still queued.

        O(1): a live-event counter is maintained by ``at``/``cancel``
        and the run loop, so the resilience watchdog (and tests) can
        poll this without scanning the heap.
        """
        return self._live


class Timer:
    """Restartable one-shot timer bound to a simulator.

    Used by the TCP stack for retransmission timeouts: ``start`` arms the
    timer, ``stop`` disarms it, and restarting implicitly cancels any
    previously armed expiry.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.stop()
        self._event = self._sim.after(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
