"""Network nodes and static routing.

Three kinds of node exist in the testbed topologies:

* :class:`Host` — an endpoint owning transport stacks (TCP/UDP) bound
  to a single IP address.
* :class:`Middlebox` — an on-path element (the byte-caching gateways)
  that inspects/rewrites packets and forwards them.
* plain :class:`Node` — a forwarding-only hop, useful in tests.

Routing is static: each node maps destination addresses to outgoing
links, with an optional default route.  This mirrors the paper's fixed
testbed (Fig. 3) where a single path connects client and server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from .engine import Simulator
from .trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # type-only: the sim layer stays import-free of repro.net
    from ..net.packet import IPPacket


class Node:
    """A forwarding node with a static route table."""

    def __init__(self, sim: Simulator, name: str, tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.name = name
        self.tracer = tracer
        self.routes: Dict[str, object] = {}
        self.default_route: Optional[object] = None
        self.packets_forwarded = 0
        self.packets_dropped = 0

    def add_route(self, dst: str, link: object) -> None:
        """Send packets destined for ``dst`` out of ``link``."""
        self.routes[dst] = link

    def set_default_route(self, link: object) -> None:
        self.default_route = link

    def route_for(self, dst: str) -> Optional[object]:
        return self.routes.get(dst, self.default_route)

    def receive(self, pkt: IPPacket) -> None:
        """Entry point invoked by an attached link."""
        if pkt.header_corrupt:
            # A corrupted IP header fails its checksum at the next hop.
            self.packets_dropped += 1
            self.tracer.emit(self.name, "drop_header_corrupt", packet_id=pkt.packet_id)
            return
        self.handle(pkt)

    def handle(self, pkt: IPPacket) -> None:
        """Default behaviour: forward towards the destination."""
        self.forward(pkt)

    def forward(self, pkt: IPPacket) -> None:
        pkt.ttl -= 1
        if pkt.ttl <= 0:
            self.packets_dropped += 1
            self.tracer.emit(self.name, "drop_ttl", packet_id=pkt.packet_id)
            return
        link = self.route_for(pkt.dst)
        if link is None:
            self.packets_dropped += 1
            self.tracer.emit(self.name, "drop_no_route", packet_id=pkt.packet_id,
                             dst=pkt.dst)
            return
        self.packets_forwarded += 1
        link.send(pkt)


class Host(Node):
    """An endpoint: owns an address and per-protocol receive handlers."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 tracer: Tracer = NULL_TRACER):
        super().__init__(sim, name, tracer)
        self.address = address
        self._protocol_handlers: Dict[int, Callable[[IPPacket], None]] = {}

    def register_protocol(self, proto: int,
                          handler: Callable[[IPPacket], None]) -> None:
        """Attach the upper-layer handler for an IP protocol number."""
        if proto in self._protocol_handlers:
            raise ValueError(f"protocol {proto} already registered on {self.name}")
        self._protocol_handlers[proto] = handler

    def send(self, pkt: IPPacket) -> None:
        """Transmit a locally originated packet."""
        pkt.created_at = self.sim.now
        link = self.route_for(pkt.dst)
        if link is None:
            raise RuntimeError(f"{self.name}: no route to {pkt.dst}")
        link.send(pkt)

    def handle(self, pkt: IPPacket) -> None:
        if pkt.dst != self.address:
            self.forward(pkt)
            return
        handler = self._protocol_handlers.get(pkt.proto)
        if handler is None:
            self.packets_dropped += 1
            self.tracer.emit(self.name, "drop_no_handler", proto=pkt.proto)
            return
        handler(pkt)


class Middlebox(Node):
    """An on-path packet processor.

    Subclasses (the byte-caching gateways) override :meth:`process`.
    ``process`` returns the packet to forward onwards, or ``None`` to
    consume/drop it.
    """

    def handle(self, pkt: IPPacket) -> None:
        out = self.process(pkt)
        if out is not None:
            self.forward(out)

    def process(self, pkt: IPPacket) -> Optional[IPPacket]:
        return pkt
