"""Structured event tracing.

A lightweight pcap-analogue: components append :class:`TraceRecord`
rows to a shared :class:`Tracer`.  Traces power the dependency-graph
analysis in §VII (Fig. 14) and make failed runs debuggable without a
real packet capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class TraceRecord:
    """One traced event."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.source:<14} {self.event:<22} {kv}"


class Tracer:
    """Collects trace records; filtering happens at query time.

    Tracing is off by default (``enabled=False``) so hot paths pay only
    an attribute check per event.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator clock used to timestamp records."""
        self._clock = clock

    def emit(self, source: str, event: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or at capacity)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(self._clock(), source, event, detail))

    def query(self, source: Optional[str] = None,
              event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given source/event filters."""
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def count(self, source: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.query(source, event))

    def clear(self) -> None:
        self.records.clear()


NULL_TRACER = Tracer(enabled=False)
