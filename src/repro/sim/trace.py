"""Structured event tracing.

A lightweight pcap-analogue: components append :class:`TraceRecord`
rows to a shared :class:`Tracer`.  Traces power the dependency-graph
analysis in §VII (Fig. 14) and make failed runs debuggable without a
real packet capture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class TraceRecord:
    """One traced event."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.source:<14} {self.event:<22} {kv}"


class Tracer:
    """Collects trace records; filtering happens at query time.

    Tracing is off by default (``enabled=False``) so hot paths pay only
    an attribute check per event.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._clock: Callable[[], float] = lambda: 0.0
        #: Optional secondary sink fed on every emit *even while
        #: ``enabled`` is False* — this is how the telemetry flight
        #: recorder rides the existing call sites without the memory
        #: cost of full tracing.  Signature: (time, source, event, detail).
        self.sink: Optional[Callable[[float, str, str, Dict[str, Any]], None]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator clock used to timestamp records."""
        self._clock = clock

    def emit(self, source: str, event: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or at capacity)."""
        if self.sink is not None:
            self.sink(self._clock(), source, event, detail)
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(self._clock(), source, event, detail))

    def query(self, source: Optional[str] = None,
              event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given source/event filters."""
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def count(self, source: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.query(source, event))

    def clear(self) -> None:
        self.records.clear()

    def to_jsonl(self) -> str:
        """All records as JSON Lines, one object per record.

        Stable field order (time, source, event, detail) so archived
        traces from different runs diff cleanly line-by-line.
        """
        lines = []
        for record in self.records:
            lines.append(json.dumps(
                {"time": record.time, "source": record.source,
                 "event": record.event,
                 "detail": {k: _jsonable(v)
                            for k, v in record.detail.items()}},
                separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for trace detail values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    return repr(value)


NULL_TRACER = Tracer(enabled=False)
