"""Deterministic fault injection.

Random loss rates (``Link(loss_rate=...)``) reproduce the paper's
sweeps, but the §IV correctness arguments are about *single, specific*
events — "a single occurrence of any such event (e.g., a simple packet
loss)".  This module scripts exact faults:

* :class:`FaultInjector` wraps a live :class:`~repro.sim.link.Link` and
  applies drop/corrupt/delay actions chosen by predicates;
* predicate builders select packets by offer index, by TCP stream
  offset (ISS-independent), by data-packet ordinal, or by control
  message kind (so control-plane loss — a NACK or resync request
  vanishing — is scriptable too);
* gateway-level fault actions (:func:`schedule_gateway_restart`,
  :func:`schedule_asymmetric_eviction`) reproduce cache-level
  divergence: a decoder restarting with a cold cache, or one side
  evicting entries the other still references.

Used by the integration tests, the stall-anatomy example, and available
to library users for their own what-if experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .engine import Event, Simulator

if TYPE_CHECKING:  # type-only: the sim layer stays import-free of repro.net
    from ..net.packet import IPPacket

    Predicate = Callable[["IPPacket", int], bool]
else:
    Predicate = Callable


def _control_kind(pkt: "IPPacket") -> Optional[str]:
    """The ``kind`` tag of a gateway control message, else ``None``.

    Control payloads are recognised duck-typed — they are the only
    transport payloads carrying a ``kind`` attribute — so the sim layer
    never has to import :mod:`repro.net.packet` at runtime.
    """
    return getattr(pkt.payload, "kind", None)


def drop_indices(*indices: int) -> Predicate:
    """Match packets at the given link offer indices (0-based)."""
    wanted = set(indices)
    return lambda pkt, index: index in wanted


def match_stream_offsets(*offsets: int, once: bool = True) -> Predicate:
    """Match TCP data segments at the given stream offsets.

    Offsets are relative to the first data byte seen on each flow, so
    they are independent of the connection's ISS.  With ``once`` only
    the first copy of each offset matches (retransmissions pass).
    """
    wanted = set(offsets)
    seen: set = set()
    base: Dict[tuple, int] = {}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        flow = (pkt.src, segment.src_port, pkt.dst, segment.dst_port)
        if flow not in base or segment.seq < base[flow]:
            base[flow] = segment.seq
        offset = segment.seq - base[flow]
        if offset in wanted and (not once or (flow, offset) not in seen):
            seen.add((flow, offset))
            return True
        return False

    return predicate


def match_nth_data(*ordinals: int) -> Predicate:
    """Match the n-th, m-th, ... TCP data segments offered (1-based)."""
    wanted = set(ordinals)
    counter = {"data": 0}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        counter["data"] += 1
        return counter["data"] in wanted

    return predicate


def match_control(*kinds: str) -> Predicate:
    """Match gateway control messages (proto 253), optionally by kind.

    With no arguments every control message matches; with arguments
    only messages whose ``kind`` tag is listed (e.g. ``"nack"``,
    ``"cache_resync"``).
    """
    wanted = set(kinds)

    def predicate(pkt: "IPPacket", index: int) -> bool:
        kind = _control_kind(pkt)
        if kind is None:
            return False
        return not wanted or kind in wanted

    return predicate


def match_nth_control(kind: str, *ordinals: int) -> Predicate:
    """Match the n-th, m-th, ... control messages of ``kind`` (1-based)."""
    wanted = set(ordinals)
    counter = {"seen": 0}

    def predicate(pkt: "IPPacket", index: int) -> bool:
        if _control_kind(pkt) != kind:
            return False
        counter["seen"] += 1
        return counter["seen"] in wanted

    return predicate


@dataclass
class FaultLog:
    """What the injector actually did."""

    dropped: List[int] = field(default_factory=list)
    corrupted: List[int] = field(default_factory=list)
    delayed: List[int] = field(default_factory=list)

    @property
    def events(self) -> int:
        return len(self.dropped) + len(self.corrupted) + len(self.delayed)


class FaultInjector:
    """Scripted impairments in front of a link.

    Wraps ``link.send``: each offered packet is tested against the
    registered predicates in order; the first matching action is
    applied (``drop`` removes the packet, ``corrupt`` XORs the first 16
    payload bytes with 0xFF so the end-to-end checksum fails, and
    ``delay`` holds the packet back before re-offering it to the link).
    """

    def __init__(self, link):
        self.link = link
        self.log = FaultLog()
        self._offer_index = 0
        self._rules: List[Tuple[str, Predicate, Optional[float]]] = []
        self._original_send = link.send
        link.send = self._send

    def drop_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("drop", predicate, None))
        return self

    def corrupt_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("corrupt", predicate, None))
        return self

    def delay_when(self, predicate: Predicate, delay: float) -> "FaultInjector":
        """Hold matching packets for ``delay`` seconds, then re-offer.

        The packet re-enters the link behind anything sent in the
        meantime — the deterministic version of the link's random
        re-ordering impairment.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._rules.append(("delay", predicate, delay))
        return self

    def detach(self) -> None:
        """Restore the link's original send."""
        try:
            # Remove the instance-level patch so lookups fall back to
            # the class method (preserves identity for callers holding
            # the unbound original).
            del self.link.send
        except AttributeError:
            self.link.send = self._original_send

    # ------------------------------------------------------------------

    def _send(self, pkt: IPPacket) -> None:
        index = self._offer_index
        self._offer_index += 1
        for action, predicate, arg in self._rules:
            if not predicate(pkt, index):
                continue
            if action == "drop":
                self.log.dropped.append(index)
                return
            if action == "delay":
                self.log.delayed.append(index)
                self.link.sim.after(arg, self._original_send, pkt)
                return
            if action == "corrupt":
                self.log.corrupted.append(index)
                payload = getattr(pkt.payload, "data", b"")
                if payload:
                    damaged = bytearray(payload)
                    span = min(16, len(damaged))
                    for position in range(span):
                        damaged[position] ^= 0xFF
                    pkt.payload.data = bytes(damaged)
                break
        self._original_send(pkt)


# -- gateway-level fault actions ------------------------------------------


@dataclass
class GatewayFaultLog:
    """What the scheduled gateway faults actually did."""

    crashes: List[float] = field(default_factory=list)       # crash times
    restarts: List[float] = field(default_factory=list)      # recovery times
    evictions: List[Tuple[float, int]] = field(default_factory=list)


def schedule_gateway_restart(sim: Simulator, gateway, at: float,
                             downtime: float = 0.0,
                             log: Optional[GatewayFaultLog] = None) -> Event:
    """Crash ``gateway`` at ``at`` and restart it ``downtime`` later.

    While down the gateway drops every offered packet (data *and*
    control); it comes back with a wiped cache and its epoch reset —
    the cold-start divergence the resilience layer exists to repair.
    """
    if downtime < 0:
        raise ValueError(f"negative downtime: {downtime}")

    def crash() -> None:
        gateway.fail()
        if log is not None:
            log.crashes.append(sim.now)
        sim.after(downtime, restore)

    def restore() -> None:
        gateway.restart()
        if log is not None:
            log.restarts.append(sim.now)

    return sim.at(at, crash)


def schedule_asymmetric_eviction(sim: Simulator, gateway, at: float,
                                 fraction: float = 0.5,
                                 log: Optional[GatewayFaultLog] = None) -> Event:
    """Evict the oldest ``fraction`` of ``gateway``'s cache at ``at``.

    One-sided eviction leaves the peer referencing entries this side no
    longer holds — undecodable on a decoder, stale-source encodings on
    an encoder — without any packet ever being lost.
    """

    def evict() -> None:
        evicted = gateway.cache.evict_fraction(fraction)
        if log is not None:
            log.evictions.append((sim.now, evicted))

    return sim.at(at, evict)
