"""Deterministic fault injection.

Random loss rates (``Link(loss_rate=...)``) reproduce the paper's
sweeps, but the §IV correctness arguments are about *single, specific*
events — "a single occurrence of any such event (e.g., a simple packet
loss)".  This module scripts exact faults:

* :class:`FaultInjector` wraps a live :class:`~repro.sim.link.Link` and
  applies drop/corrupt/delay actions chosen by predicates;
* predicate builders select packets by offer index, by TCP stream
  offset (ISS-independent), or by data-packet ordinal.

Used by the integration tests, the stall-anatomy example, and available
to library users for their own what-if experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net.packet import IPPacket

Predicate = Callable[[IPPacket, int], bool]


def drop_indices(*indices: int) -> Predicate:
    """Match packets at the given link offer indices (0-based)."""
    wanted = set(indices)
    return lambda pkt, index: index in wanted


def match_stream_offsets(*offsets: int, once: bool = True) -> Predicate:
    """Match TCP data segments at the given stream offsets.

    Offsets are relative to the first data byte seen on each flow, so
    they are independent of the connection's ISS.  With ``once`` only
    the first copy of each offset matches (retransmissions pass).
    """
    wanted = set(offsets)
    seen: set = set()
    base: Dict[tuple, int] = {}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        flow = (pkt.src, segment.src_port, pkt.dst, segment.dst_port)
        if flow not in base or segment.seq < base[flow]:
            base[flow] = segment.seq
        offset = segment.seq - base[flow]
        if offset in wanted and (not once or (flow, offset) not in seen):
            seen.add((flow, offset))
            return True
        return False

    return predicate


def match_nth_data(*ordinals: int) -> Predicate:
    """Match the n-th, m-th, ... TCP data segments offered (1-based)."""
    wanted = set(ordinals)
    counter = {"data": 0}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        counter["data"] += 1
        return counter["data"] in wanted

    return predicate


@dataclass
class FaultLog:
    """What the injector actually did."""

    dropped: List[int] = field(default_factory=list)
    corrupted: List[int] = field(default_factory=list)

    @property
    def events(self) -> int:
        return len(self.dropped) + len(self.corrupted)


class FaultInjector:
    """Scripted impairments in front of a link.

    Wraps ``link.send``: each offered packet is tested against the
    registered predicates in order; the first matching action is
    applied (``drop`` removes the packet, ``corrupt`` zeroes a byte
    range of its payload so the end-to-end checksum fails).
    """

    def __init__(self, link):
        self.link = link
        self.log = FaultLog()
        self._offer_index = 0
        self._rules: List[Tuple[str, Predicate]] = []
        self._original_send = link.send
        link.send = self._send

    def drop_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("drop", predicate))
        return self

    def corrupt_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("corrupt", predicate))
        return self

    def detach(self) -> None:
        """Restore the link's original send."""
        try:
            # Remove the instance-level patch so lookups fall back to
            # the class method (preserves identity for callers holding
            # the unbound original).
            del self.link.send
        except AttributeError:
            self.link.send = self._original_send

    # ------------------------------------------------------------------

    def _send(self, pkt: IPPacket) -> None:
        index = self._offer_index
        self._offer_index += 1
        for action, predicate in self._rules:
            if not predicate(pkt, index):
                continue
            if action == "drop":
                self.log.dropped.append(index)
                return
            if action == "corrupt":
                self.log.corrupted.append(index)
                payload = getattr(pkt.payload, "data", b"")
                if payload:
                    damaged = bytearray(payload)
                    span = min(16, len(damaged))
                    for position in range(span):
                        damaged[position] ^= 0xFF
                    pkt.payload.data = bytes(damaged)
                break
        self._original_send(pkt)
