"""Deterministic fault injection.

Random loss rates (``Link(loss_rate=...)``) reproduce the paper's
sweeps, but the §IV correctness arguments are about *single, specific*
events — "a single occurrence of any such event (e.g., a simple packet
loss)".  This module scripts exact faults:

* :class:`FaultInjector` wraps a live :class:`~repro.sim.link.Link` and
  applies drop/corrupt/delay actions chosen by predicates;
* predicate builders select packets by offer index, by TCP stream
  offset (ISS-independent), by data-packet ordinal, or by control
  message kind (so control-plane loss — a NACK or resync request
  vanishing — is scriptable too);
* gateway-level fault actions (:func:`schedule_gateway_restart`,
  :func:`schedule_asymmetric_eviction`, :func:`schedule_memory_pressure`,
  :func:`schedule_clock_skew`) reproduce cache-level divergence: a
  decoder restarting with a cold cache, one side evicting entries the
  other still references, an eviction storm under a squeezed byte
  budget, or a drifting heartbeat clock;
* link-window actions (:func:`schedule_link_flap`,
  :func:`schedule_partition`, :func:`schedule_bursty_loss`,
  :func:`control_blackout`) script the sustained adverse regimes the
  chaos campaigns compose — handover flaps, Gilbert-Elliott loss
  bursts, a blacked-out control plane.

Used by the integration tests, the stall-anatomy example, the chaos
campaign engine (:mod:`repro.chaos`), and available to library users
for their own what-if experiments.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .engine import Event, Simulator
from .link import GilbertElliottLoss, Link

if TYPE_CHECKING:  # type-only: the sim layer stays import-free of repro.net
    from ..net.packet import IPPacket

    Predicate = Callable[["IPPacket", int], bool]
else:
    Predicate = Callable


def _control_kind(pkt: "IPPacket") -> Optional[str]:
    """The ``kind`` tag of a gateway control message, else ``None``.

    Control payloads are recognised duck-typed — they are the only
    transport payloads carrying a ``kind`` attribute — so the sim layer
    never has to import :mod:`repro.net.packet` at runtime.
    """
    return getattr(pkt.payload, "kind", None)


def drop_indices(*indices: int) -> Predicate:
    """Match packets at the given link offer indices (0-based)."""
    wanted = set(indices)
    return lambda pkt, index: index in wanted


def match_stream_offsets(*offsets: int, once: bool = True) -> Predicate:
    """Match TCP data segments at the given stream offsets.

    Offsets are relative to the first data byte seen on each flow, so
    they are independent of the connection's ISS.  With ``once`` only
    the first copy of each offset matches (retransmissions pass).
    """
    wanted = set(offsets)
    seen: set = set()
    base: Dict[tuple, int] = {}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        flow = (pkt.src, segment.src_port, pkt.dst, segment.dst_port)
        if flow not in base or segment.seq < base[flow]:
            base[flow] = segment.seq
        offset = segment.seq - base[flow]
        if offset in wanted and (not once or (flow, offset) not in seen):
            seen.add((flow, offset))
            return True
        return False

    return predicate


def match_nth_data(*ordinals: int) -> Predicate:
    """Match the n-th, m-th, ... TCP data segments offered (1-based)."""
    wanted = set(ordinals)
    counter = {"data": 0}

    def predicate(pkt: IPPacket, index: int) -> bool:
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        counter["data"] += 1
        return counter["data"] in wanted

    return predicate


def match_control(*kinds: str) -> Predicate:
    """Match gateway control messages (proto 253), optionally by kind.

    With no arguments every control message matches; with arguments
    only messages whose ``kind`` tag is listed (e.g. ``"nack"``,
    ``"cache_resync"``).
    """
    wanted = set(kinds)

    def predicate(pkt: "IPPacket", index: int) -> bool:
        kind = _control_kind(pkt)
        if kind is None:
            return False
        return not wanted or kind in wanted

    return predicate


def match_nth_control(kind: str, *ordinals: int) -> Predicate:
    """Match the n-th, m-th, ... control messages of ``kind`` (1-based)."""
    wanted = set(ordinals)
    counter = {"seen": 0}

    def predicate(pkt: "IPPacket", index: int) -> bool:
        if _control_kind(pkt) != kind:
            return False
        counter["seen"] += 1
        return counter["seen"] in wanted

    return predicate


def match_time_window(clock: Callable[[], float], start: float,
                      end: float) -> Predicate:
    """Match every packet offered while ``start <= clock() < end``.

    ``clock`` is usually ``lambda: sim.now``; combined with a content
    predicate via :func:`all_of` this scripts phase-windowed faults
    (e.g. a control-channel blackout between two campaign phases).
    """
    if end < start:
        raise ValueError(f"window ends before it starts: [{start}, {end})")
    return lambda pkt, index: start <= clock() < end


def all_of(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates (evaluated left to right, short-circuit).

    Stateful predicates (``match_nth_*``) only advance their counters
    when evaluated, so put them *after* any cheap window/kind guards.
    """
    if not predicates:
        raise ValueError("all_of needs at least one predicate")

    def predicate(pkt: "IPPacket", index: int) -> bool:
        for inner in predicates:
            if not inner(pkt, index):
                return False
        return True

    return predicate


@dataclass
class FaultLog:
    """What the injector actually did."""

    dropped: List[int] = field(default_factory=list)
    corrupted: List[int] = field(default_factory=list)
    delayed: List[int] = field(default_factory=list)
    reordered: List[int] = field(default_factory=list)
    duplicated: List[int] = field(default_factory=list)

    @property
    def events(self) -> int:
        return (len(self.dropped) + len(self.corrupted) + len(self.delayed)
                + len(self.reordered) + len(self.duplicated))


class FaultInjector:
    """Scripted impairments in front of a link.

    Wraps ``link.send``: each offered packet is tested against the
    registered predicates in order; the first matching action is
    applied (``drop`` removes the packet, ``corrupt`` XORs the first 16
    payload bytes with 0xFF so the end-to-end checksum fails, and
    ``delay`` holds the packet back before re-offering it to the link).
    """

    def __init__(self, link):
        self.link = link
        self.log = FaultLog()
        self._offer_index = 0
        self._rules: List[Tuple[str, Predicate, Optional[float]]] = []
        self._detached = False
        # What `link.__dict__["send"]` held before we patched: None when
        # the lookup fell through to the class method, or the previous
        # injector's bound `_send` when injectors are stacked.  detach()
        # restores exactly this.
        self._prev_send_patch = link.__dict__.get("send")
        self._original_send = link.send
        # Bind once: `self._send` evaluates to a fresh bound-method
        # object on every attribute access, so detach()'s identity check
        # needs the exact object that was installed.
        self._send_patch = self._send
        link.send = self._send_patch

    def drop_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("drop", predicate, None))
        return self

    def corrupt_when(self, predicate: Predicate) -> "FaultInjector":
        self._rules.append(("corrupt", predicate, None))
        return self

    def delay_when(self, predicate: Predicate, delay: float) -> "FaultInjector":
        """Hold matching packets for ``delay`` seconds, then re-offer.

        The packet re-enters the link behind anything sent in the
        meantime — the deterministic version of the link's random
        re-ordering impairment.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._rules.append(("delay", predicate, delay))
        return self

    def reorder_when(self, predicate: Predicate,
                     extra_delay: float = 0.05) -> "FaultInjector":
        """Re-order matching packets behind later traffic.

        Mechanically a hold-and-re-offer like :meth:`delay_when`, but
        logged separately (``log.reordered``) because campaigns reason
        about re-ordering and latency as distinct impairments.
        """
        if extra_delay <= 0:
            raise ValueError(f"non-positive reorder delay: {extra_delay}")
        self._rules.append(("reorder", predicate, extra_delay))
        return self

    def duplicate_when(self, predicate: Predicate,
                       delay: float = 0.0) -> "FaultInjector":
        """Deliver matching packets twice (original plus a deep copy).

        The copy is offered ``delay`` seconds later (0 = immediately
        behind the original).  A deep copy, not an alias: decoders
        mutate payload bytes in place, so the two wire copies must not
        share buffers.
        """
        if delay < 0:
            raise ValueError(f"negative duplicate delay: {delay}")
        self._rules.append(("duplicate", predicate, delay))
        return self

    def detach(self) -> None:
        """Restore the link's original send (idempotent).

        Safe under stacking and late scheduled events: if another
        injector has since wrapped ``link.send``, the patch chain is
        left intact and this injector simply becomes a pass-through —
        detaching twice, or detaching the bottom of a stack, never
        resurrects a stale patch.
        """
        if self._detached:
            return
        self._detached = True
        if self.link.__dict__.get("send") is not self._send_patch:
            # Someone patched over us; removing anything now would tear
            # out *their* wrapper.  Pass-through mode is enough.
            return
        if self._prev_send_patch is None:
            # Remove the instance-level patch so lookups fall back to
            # the class method (preserves identity for callers holding
            # the unbound original).
            del self.link.send
        else:
            self.link.send = self._prev_send_patch

    # ------------------------------------------------------------------

    def _send(self, pkt: IPPacket) -> None:
        if self._detached:
            self._original_send(pkt)
            return
        index = self._offer_index
        self._offer_index += 1
        spans = getattr(self.link, "spans", None)
        for action, predicate, arg in self._rules:
            if not predicate(pkt, index):
                continue
            if spans is not None:
                # Traced packets record which injected fault hit them.
                spans.packet_event("fault_" + action, self.link.name,
                                   pkt.packet_id, fault=action)
            if action == "drop":
                self.log.dropped.append(index)
                return
            if action == "delay":
                self.log.delayed.append(index)
                self.link.sim.after(arg, self._original_send, pkt)
                return
            if action == "reorder":
                self.log.reordered.append(index)
                self.link.sim.after(arg, self._original_send, pkt)
                return
            if action == "duplicate":
                self.log.duplicated.append(index)
                duplicate = copy.deepcopy(pkt)
                # Scheduled even at delay 0: the event fires after this
                # call returns, so the copy lands behind the original.
                self.link.sim.after(arg, self._original_send, duplicate)
                break
            if action == "corrupt":
                self.log.corrupted.append(index)
                payload = getattr(pkt.payload, "data", b"")
                if payload:
                    damaged = bytearray(payload)
                    span = min(16, len(damaged))
                    for position in range(span):
                        damaged[position] ^= 0xFF
                    pkt.payload.data = bytes(damaged)
                break
        self._original_send(pkt)


# -- gateway-level fault actions ------------------------------------------


@dataclass
class GatewayFaultLog:
    """What the scheduled gateway faults actually did."""

    crashes: List[float] = field(default_factory=list)       # crash times
    restarts: List[float] = field(default_factory=list)      # recovery times
    evictions: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, evictions forced) per memory-pressure squeeze.
    pressure: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, skew factor) per clock-skew change (1.0 = restored).
    skews: List[Tuple[float, float]] = field(default_factory=list)


def schedule_gateway_restart(sim: Simulator, gateway, at: float,
                             downtime: float = 0.0,
                             log: Optional[GatewayFaultLog] = None) -> Event:
    """Crash ``gateway`` at ``at`` and restart it ``downtime`` later.

    While down the gateway drops every offered packet (data *and*
    control); it comes back with a wiped cache and its epoch reset —
    the cold-start divergence the resilience layer exists to repair.

    Crash/restore are idempotent: each crash stamps the gateway with a
    fresh token and the matching restore fires only while that token is
    current *and* the gateway is still down.  An overlapping second
    crash therefore supersedes the first restore (the gateway stays
    down for the full second window), and a restore landing after the
    gateway already came back — or after the fault schedule was torn
    down — never re-runs ``restart()`` against live state.
    """
    if downtime < 0:
        raise ValueError(f"negative downtime: {downtime}")

    def crash() -> None:
        token = getattr(gateway, "_crash_token", 0) + 1
        gateway._crash_token = token
        gateway.fail()
        spans = getattr(gateway, "spans", None)
        if spans is not None:
            spans.fault_begin("gateway_down")
        if log is not None:
            log.crashes.append(sim.now)
        sim.after(downtime, restore, token)

    def restore(token: int) -> None:
        # Every crash schedules exactly one restore, so ending the
        # fault window here (even for a superseded restore) keeps the
        # begin/end counts balanced under overlapping crash windows.
        spans = getattr(gateway, "spans", None)
        if spans is not None:
            spans.fault_end("gateway_down")
        if getattr(gateway, "_crash_token", 0) != token or not gateway.down:
            return
        gateway.restart()
        if log is not None:
            log.restarts.append(sim.now)

    return sim.at(at, crash)


def schedule_asymmetric_eviction(sim: Simulator, gateway, at: float,
                                 fraction: float = 0.5,
                                 log: Optional[GatewayFaultLog] = None) -> Event:
    """Evict the oldest ``fraction`` of ``gateway``'s cache at ``at``.

    One-sided eviction leaves the peer referencing entries this side no
    longer holds — undecodable on a decoder, stale-source encodings on
    an encoder — without any packet ever being lost.
    """

    def evict() -> None:
        evicted = gateway.cache.evict_fraction(fraction)
        if log is not None:
            log.evictions.append((sim.now, evicted))

    return sim.at(at, evict)


def schedule_memory_pressure(sim: Simulator, gateway, at: float,
                             fraction: float = 0.25,
                             duration: Optional[float] = None,
                             log: Optional[GatewayFaultLog] = None
                             ) -> List[Event]:
    """Squeeze ``gateway``'s cache byte budget at ``at``.

    The budget is re-capped to ``fraction`` of the bytes *in use* at
    fire time, forcing an immediate eviction storm (entries go; only
    the budget comes back).  With ``duration`` the original budget is
    restored that much later — the cache may refill, but what the storm
    evicted stays evicted, which is exactly the asymmetric divergence
    the watchdog must catch.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if duration is not None and duration <= 0:
        raise ValueError(f"non-positive duration: {duration}")
    events: List[Event] = []

    def squeeze() -> None:
        store = gateway.cache.store
        original = store.byte_budget
        budget = max(1, int(store.bytes_used * fraction))
        evicted = gateway.cache.set_byte_budget(budget)
        if log is not None:
            log.pressure.append((sim.now, evicted))
        if duration is not None:
            events.append(sim.after(duration, restore, original))

    def restore(original: int) -> None:
        gateway.cache.set_byte_budget(original)

    events.append(sim.at(at, squeeze))
    return events


def schedule_clock_skew(sim: Simulator, gateway, at: float, factor: float,
                        duration: Optional[float] = None,
                        log: Optional[GatewayFaultLog] = None
                        ) -> List[Event]:
    """Skew the encoder's resilience heartbeat clock by ``factor``.

    ``factor > 1`` is a slow clock: heartbeats go out late, so the
    peer's acks thin out and the encoder's own timeout check can
    false-trip into degraded mode — the classic drifting-middlebox
    failure.  Requires the gateway to run
    :class:`~repro.gateway.resilience.EncoderResilience`; restored to
    1.0 after ``duration`` when given.
    """
    if factor <= 0:
        raise ValueError(f"skew factor must be positive, got {factor}")
    if duration is not None and duration <= 0:
        raise ValueError(f"non-positive duration: {duration}")
    events: List[Event] = []

    def apply(value: float) -> None:
        resilience = gateway.resilience
        if resilience is None or not hasattr(resilience, "clock_skew"):
            raise RuntimeError(
                f"gateway {gateway.name!r} has no heartbeat clock to skew "
                f"(encoder-side resilience layer not armed)")
        resilience.clock_skew = value
        if log is not None:
            log.skews.append((sim.now, value))

    events.append(sim.at(at, apply, factor))
    if duration is not None:
        events.append(sim.at(at + duration, apply, 1.0))
    return events


# -- link-level fault windows ----------------------------------------------


def schedule_link_flap(sim: Simulator, link: Link, at: float,
                       down_for: float, flaps: int = 1,
                       period: Optional[float] = None) -> List[Event]:
    """Take ``link`` administratively down for ``down_for`` seconds,
    ``flaps`` times, ``period`` seconds apart (a handover storm).

    While down every packet reaching the transmitter is lost — data and
    control alike — which is how a vanished radio segment behaves, as
    opposed to the targeted drops of a :class:`FaultInjector`.
    """
    if down_for <= 0:
        raise ValueError(f"non-positive down_for: {down_for}")
    if flaps < 1:
        raise ValueError(f"flaps must be >= 1, got {flaps}")
    if flaps > 1 and (period is None or period <= down_for):
        raise ValueError("flaps > 1 needs period > down_for")

    def down() -> None:
        link.down = True
        spans = getattr(link, "spans", None)
        if spans is not None:
            spans.fault_begin("link_flap")

    def up() -> None:
        link.down = False
        spans = getattr(link, "spans", None)
        if spans is not None:
            spans.fault_end("link_flap")

    events: List[Event] = []
    for index in range(flaps):
        start = at + index * (period or 0.0)
        events.append(sim.at(start, down))
        events.append(sim.at(start + down_for, up))
    return events


def schedule_partition(sim: Simulator, forward: Link, reverse: Link,
                       at: float, duration: float) -> List[Event]:
    """Partition both directions of a segment for ``duration`` seconds."""
    return (schedule_link_flap(sim, forward, at, duration)
            + schedule_link_flap(sim, reverse, at, duration))


def schedule_bursty_loss(sim: Simulator, link: Link, at: float, until: float,
                         rng: random.Random,
                         **gilbert_kwargs) -> GilbertElliottLoss:
    """Attach a Gilbert-Elliott loss process to ``link`` for a window.

    The model replaces the link's uniform ``loss_rate`` between ``at``
    and ``until`` (see :class:`~repro.sim.link.GilbertElliottLoss`);
    ``rng`` should be a named :class:`~repro.sim.rng.RngRegistry`
    stream so the burst pattern replays bit-identically.  Returns the
    model so callers can inspect ``transitions`` / ``losses``.
    """
    if until <= at:
        raise ValueError(f"window ends before it starts: [{at}, {until})")
    model = GilbertElliottLoss(rng, **gilbert_kwargs)

    def attach() -> None:
        link.loss_model = model
        spans = getattr(link, "spans", None)
        if spans is not None:
            spans.fault_begin("bursty_loss")

    def detach() -> None:
        if link.loss_model is model:
            link.loss_model = None
        spans = getattr(link, "spans", None)
        if spans is not None:
            spans.fault_end("bursty_loss")

    sim.at(at, attach)
    sim.at(until, detach)
    return model


def control_blackout(injectors: List[FaultInjector], start: float,
                     end: float, *kinds: str) -> None:
    """Drop every gateway control message in a time window.

    Arms a windowed drop rule on each injector (one per direction:
    heartbeats ride forward, resync requests ride back).  With
    ``kinds`` only those control kinds are blacked out.  Data packets
    keep flowing — the failure mode where the control plane dies while
    the data plane limps on, which is what exhausts the decoder's
    resync retries.
    """
    for injector in injectors:
        sim = injector.link.sim
        injector.drop_when(all_of(
            match_time_window(lambda s=sim: s.now, start, end),
            match_control(*kinds)))
