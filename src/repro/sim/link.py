"""Unidirectional point-to-point link with wireless impairments.

Models the paper's test segment (Fig. 3): a traffic-shaped 1 MB/s link
whose packet loss rate is swept from 0 to 20 %.  In addition to random
loss the link supports payload corruption and re-ordering, the other
two trigger conditions for the circular-dependency bug (§IV).

Serialisation is modelled exactly: a packet of ``wire_size`` bytes
occupies the link for ``wire_size / bandwidth`` seconds, packets queue
FIFO behind one another (bounded by ``queue_limit``), and then take
``prop_delay`` seconds to propagate.  Loss/corruption/re-ordering are
applied per packet with independent probabilities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .engine import Simulator

if TYPE_CHECKING:  # type-only: the sim layer stays import-free of repro.net
    from ..net.packet import IPPacket


@dataclass
class LinkStats:
    """Counters accumulated by a link over a run."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    packets_corrupted: int = 0
    packets_reordered: int = 0
    packets_queue_dropped: int = 0
    bytes_offered: int = 0
    bytes_delivered: int = 0

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered packets lost (channel + queue drops).

        A link that never carried a packet has no measurable loss
        fraction; nan is the "not measurable" marker the report layer
        renders as an em-dash (never raises, never prints ``None``).
        """
        if self.packets_offered == 0:
            return math.nan
        return (self.packets_lost + self.packets_queue_dropped) / self.packets_offered


class GilbertElliottLoss:
    """Two-state Markov (Gilbert-Elliott) bursty-loss process.

    The classic wireless-channel model: a *good* state with a low loss
    probability and a *bad* (fade/handover) state with a high one, with
    per-packet transition probabilities between them.  Attached to a
    link via :attr:`Link.loss_model` it **replaces** the link's uniform
    ``loss_rate`` while attached — the two are alternative loss
    processes, not additive ones.

    All randomness comes from the ``rng`` handed in (a named
    :class:`~repro.sim.rng.RngRegistry` stream), so a campaign replays
    bit-identically.
    """

    __slots__ = ("p_good_bad", "p_bad_good", "loss_good", "loss_bad",
                 "rng", "bad", "transitions", "losses")

    def __init__(self, rng: random.Random, *, p_good_bad: float = 0.05,
                 p_bad_good: float = 0.25, loss_good: float = 0.0,
                 loss_bad: float = 0.6, start_bad: bool = False) -> None:
        for name, value in (("p_good_bad", p_good_bad),
                            ("p_bad_good", p_bad_good),
                            ("loss_good", loss_good),
                            ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.rng = rng
        self.bad = start_bad
        self.transitions = 0
        self.losses = 0

    def lost(self) -> bool:
        """Advance the chain one packet; True when that packet is lost."""
        rng = self.rng
        if self.bad:
            if rng.random() < self.p_bad_good:
                self.bad = False
                self.transitions += 1
        elif rng.random() < self.p_good_bad:
            self.bad = True
            self.transitions += 1
        rate = self.loss_bad if self.bad else self.loss_good
        if rate > 0.0 and rng.random() < rate:
            self.losses += 1
            return True
        return False


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    sim:
        The simulation engine.
    bandwidth:
        Link rate in bytes per second (the paper shapes to 1 MB/s).
    prop_delay:
        One-way propagation delay in seconds.
    loss_rate / corrupt_rate / reorder_rate:
        Independent per-packet probabilities of drop, payload
        corruption, and re-ordering.
    reorder_extra_delay:
        Extra delay (seconds) added to a re-ordered packet so it lands
        behind packets transmitted after it.
    queue_limit:
        Maximum number of packets waiting for the transmitter; tail
        drop beyond it.  ``None`` means unbounded.
    rng:
        Deterministic random stream for the impairments.
    telemetry:
        Optional telemetry facade (duck-typed, see
        ``repro.metrics.telemetry``).  When given, the link registers
        pull gauges for its queue depth and loss counters — sampled on
        the telemetry tick, so the send path itself carries no extra
        per-packet work.
    spans:
        Optional causal span recorder (duck-typed, see
        ``repro.metrics.spans``).  When given, traced packets get a
        ``link_transit`` span from transmitter to delivery, closed
        with an outcome tag (delivered / lost / queue_drop) — the hop
        that carries a trace id across the gateway boundary.  Costs a
        single ``is not None`` check per packet when absent.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        *,
        loss_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_extra_delay: float = 0.05,
        queue_limit: Optional[int] = 1000,
        rng: Optional[random.Random] = None,
        name: str = "link",
        telemetry=None,
        spans=None,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if prop_delay < 0:
            raise ValueError("prop_delay must be non-negative")
        for rate_name, rate in (("loss_rate", loss_rate),
                                ("corrupt_rate", corrupt_rate),
                                ("reorder_rate", reorder_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.prop_delay = float(prop_delay)
        self.loss_rate = float(loss_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.reorder_rate = float(reorder_rate)
        self.reorder_extra_delay = float(reorder_extra_delay)
        self.queue_limit = queue_limit
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.receiver: Optional[Callable[[IPPacket], None]] = None
        self.stats = LinkStats()
        #: Administratively down (link flap / partition window): every
        #: packet reaching the transmitter is lost.  Toggled by
        #: :func:`repro.sim.faults.schedule_link_flap`.
        self.down = False
        #: Optional stateful loss process (:class:`GilbertElliottLoss`).
        #: While attached it replaces the uniform ``loss_rate``.
        self.loss_model: Optional[GilbertElliottLoss] = None
        self._busy_until = 0.0
        self._queued = 0
        self.spans = spans
        if telemetry is not None:
            telemetry.register_link(self)

    def connect(self, receiver: Callable[[IPPacket], None]) -> None:
        """Attach the callback invoked for each delivered packet."""
        self.receiver = receiver

    def send(self, pkt: IPPacket) -> None:
        """Offer ``pkt`` to the link for transmission."""
        if self.receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        self.stats.packets_offered += 1
        self.stats.bytes_offered += pkt.wire_size
        spans = self.spans

        if self.queue_limit is not None and self._queued >= self.queue_limit:
            self.stats.packets_queue_dropped += 1
            if spans is not None:
                spans.packet_event("queue_drop", self.name, pkt.packet_id)
            return

        if spans is not None:
            spans.link_begin(self.name, pkt.packet_id, bytes=pkt.wire_size)
        now = self.sim.now
        start = max(now, self._busy_until)
        tx_time = pkt.wire_size / self.bandwidth
        self._busy_until = start + tx_time
        self._queued += 1
        # Fire-and-forget: links never cancel a transmission, so the
        # pooled path avoids one Event allocation per packet.
        self.sim.post(self._busy_until, self._transmitted, pkt)

    # -- internal ---------------------------------------------------------

    def _transmitted(self, pkt: IPPacket) -> None:
        """Packet finished serialising; apply impairments and propagate."""
        self._queued -= 1
        spans = self.spans

        if self.down:
            self.stats.packets_lost += 1
            if spans is not None:
                spans.link_end(pkt.packet_id, "lost", reason="link_down")
            return

        loss_model = self.loss_model
        if loss_model is not None:
            if loss_model.lost():
                self.stats.packets_lost += 1
                if spans is not None:
                    spans.link_end(pkt.packet_id, "lost",
                                   reason="bursty_loss")
                return
        elif self.rng.random() < self.loss_rate:
            self.stats.packets_lost += 1
            if spans is not None:
                spans.link_end(pkt.packet_id, "lost", reason="loss")
            return

        if self.corrupt_rate and self.rng.random() < self.corrupt_rate:
            self.stats.packets_corrupted += 1
            pkt = self._corrupt(pkt)
            if spans is not None:
                spans.link_annotate(pkt.packet_id, corrupted=True)

        delay = self.prop_delay
        if self.reorder_rate and self.rng.random() < self.reorder_rate:
            self.stats.packets_reordered += 1
            delay += self.rng.uniform(0.0, self.reorder_extra_delay)
            if spans is not None:
                spans.link_annotate(pkt.packet_id, reordered=True)

        self.sim.post_after(delay, self._deliver, pkt)

    def _deliver(self, pkt: IPPacket) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += pkt.wire_size
        spans = self.spans
        if spans is not None:
            spans.link_end(pkt.packet_id, "delivered")
        assert self.receiver is not None
        self.receiver(pkt)

    def _corrupt(self, pkt: IPPacket) -> IPPacket:
        """Flip some payload bytes in place.

        With 20 % probability the damage hits the headers instead
        (modelled as ``header_corrupt``, dropped by the next IP hop the
        way a bad IP checksum would be).
        """
        if self.rng.random() < 0.2 or not getattr(pkt.payload, "data", b""):
            pkt.header_corrupt = True
            return pkt
        data = bytearray(pkt.payload.data)
        n_flips = max(1, self.rng.randint(1, 4))
        for _ in range(n_flips):
            pos = self.rng.randrange(len(data))
            data[pos] ^= self.rng.randint(1, 255)
        pkt.payload.data = bytes(data)
        return pkt


@dataclass
class DuplexLink:
    """A symmetric pair of :class:`Link` objects (forward / reverse)."""

    forward: Link
    reverse: Link

    @classmethod
    def create(
        cls,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        *,
        rng_forward: Optional[random.Random] = None,
        rng_reverse: Optional[random.Random] = None,
        name: str = "link",
        **impairments,
    ) -> "DuplexLink":
        fwd = Link(sim, bandwidth, prop_delay, rng=rng_forward,
                   name=f"{name}.fwd", **impairments)
        rev = Link(sim, bandwidth, prop_delay, rng=rng_reverse,
                   name=f"{name}.rev", **impairments)
        return cls(forward=fwd, reverse=rev)
