"""Discrete-event simulation substrate: engine, RNG streams, links, nodes."""

from .engine import Event, SimulationError, Simulator, Timer
from .faults import (FaultInjector, drop_indices, match_nth_data,
                     match_stream_offsets)
from .link import DuplexLink, Link, LinkStats
from .node import Host, Middlebox, Node
from .rng import RngRegistry, derive_seed
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Event",
    "FaultInjector",
    "drop_indices",
    "match_nth_data",
    "match_stream_offsets",
    "SimulationError",
    "Simulator",
    "Timer",
    "DuplexLink",
    "Link",
    "LinkStats",
    "Host",
    "Middlebox",
    "Node",
    "RngRegistry",
    "derive_seed",
    "NULL_TRACER",
    "TraceRecord",
    "Tracer",
]
