"""Verification subsystem: online oracles, differential runner, fuzzer.

Three layers of machine-checked correctness (see DESIGN.md §10):

* :mod:`repro.verify.oracles` — invariant oracles armed per run via
  ``ExperimentConfig(verify=True)``; violations raise
  :class:`InvariantViolation` with the flight-recorder dump attached.
* :mod:`repro.verify.differential` — paired runs that must agree
  (fingerprinter implementations, serial vs parallel sweeps,
  resilience on/off under zero faults).
* :mod:`repro.verify.fuzz` — a seeded scenario fuzzer (random configs +
  scripted faults, oracles armed) with shrinking to a minimal
  replayable JSON case (``repro fuzz`` / ``repro fuzz --replay``).

Only the oracles are imported eagerly: the differential runner and the
fuzzer import the experiment runner, which itself imports this package,
so they load lazily (``import repro.verify.fuzz``) to keep the import
graph acyclic.
"""

from .oracles import (InvariantViolation, VerificationHarness, harness_if)

__all__ = ["InvariantViolation", "VerificationHarness", "harness_if"]
