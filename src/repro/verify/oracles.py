"""Online invariant oracles for byte-caching runs.

The paper's correctness argument is a set of *safety properties*: the
naive Spring & Wetherall encoder violates decodability under loss
(§IV), and each §V algorithm restores one specific property —
strictly-earlier references (TCP-seq), reference-group bounds
(k-distance), flush-on-retransmission (Cache Flush).  This module
machine-checks those properties *while a run executes*, the way the
network-coded TCP stacks in PAPERS.md validate their coded pipeline
against an uncoded oracle.

Arming is one flag — ``ExperimentConfig(verify=True)`` — and the
disabled cost is one attribute load + ``is None`` check per packet and
per emitted region (the same contract as the profiler and telemetry
hooks; ``benchmarks/bench_hotpath.py`` holds the budget).

Four oracle families:

* **byte integrity** — the delivered application stream must be a
  byte-exact prefix of the source object (checked incrementally as TCP
  delivers, so the violation fires at the first wrong byte, not at the
  end of the run);
* **cache coherence** — at quiescent points (nothing in flight on the
  bottleneck, neither gateway down or mid-resync, epochs agreed) every
  fingerprint present in *both* caches must resolve to byte-identical
  window bytes.  Since a fingerprint is computed over its window, a
  mismatch means a poisoned store (or a 64-bit collision) — decoder-side
  *gaps* are legal, they are exactly the modelled perceived loss;
* **per-policy safety** — tcp_seq / k_distance / cache_flush emission
  rules, re-checked independently on every emitted region;
* **circular dependency** — the policy-independent §IV property: no
  emitted region may source a same-flow segment at an equal-or-later
  sequence number.  All three paper policies imply it; the naive policy
  violates it on the first lossy retransmission, which is how
  ``verify=True`` pinpoints the livelock.

A violation raises :class:`InvariantViolation` carrying the oracle
name, a structured context and the flight-recorder dump, so a failed
run is diagnosable from the exception alone.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

Verdict = Optional[Tuple[str, Dict[str, Any]]]


class InvariantViolation(Exception):
    """A machine-checked safety property failed during a run.

    Carries everything needed to diagnose the failure without re-running:
    the oracle that tripped, a structured ``context`` dict, and the
    flight-recorder dump (the last N trace events before the violation).
    """

    def __init__(self, oracle: str, message: str,
                 context: Optional[Dict[str, Any]] = None,
                 flight_recorder: Optional[List[Dict[str, Any]]] = None):
        self.oracle = oracle
        self.message = message
        self.context = dict(context or {})
        self.flight_recorder = list(flight_recorder or [])
        super().__init__(f"[{oracle}] {message}")

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly form (fuzz case files embed this)."""
        return {
            "oracle": self.oracle,
            "message": self.message,
            "context": self.context,
            "flight_recorder_events": len(self.flight_recorder),
        }


# ---------------------------------------------------------------------------
# per-region oracles
# ---------------------------------------------------------------------------

class EncoderOracle:
    """Base class: observes the encoder's packet/region stream.

    ``on_region`` returns ``None`` when the region is fine, or a
    ``(message, context)`` verdict; the harness raises.  Oracles keep
    their own state (they do *not* trust the policy's bookkeeping —
    that is the thing under test) and only read immutable geometry
    parameters, e.g. ``k`` and ``mss``, from the policy.
    """

    name = "oracle"

    def on_packet(self, meta) -> None:
        """Observe one outgoing data packet before region finding."""

    def on_region(self, meta, entry, region) -> Verdict:
        """Judge one emitted region (entry = its cache source)."""
        return None


class CircularDependencyOracle(EncoderOracle):
    """§IV: no region may source a same-flow equal-or-later segment.

    A retransmission encoded against the cached copy of itself (or of a
    later segment the receiver may never assemble) is the circular
    dependency that livelocks the naive policy; every §V algorithm
    implies this property, so it is armed for all of them.
    """

    name = "circular_dependency"

    def on_region(self, meta, entry, region) -> Verdict:
        if meta.tcp_seq is None or entry.tcp_seq is None:
            return None
        if entry.flow != meta.flow:
            return None
        if entry.tcp_seq >= meta.tcp_seq:
            kind = ("itself" if entry.tcp_seq == meta.tcp_seq
                    else "a later segment")
            return (
                f"circular dependency: segment seq={meta.tcp_seq} encoded "
                f"against a cached copy of {kind} (source seq="
                f"{entry.tcp_seq}) — the §IV livelock: if the original "
                f"was lost, no copy can ever be decoded",
                {"packet_id": meta.packet_id, "seq_new": meta.tcp_seq,
                 "seq_stored": entry.tcp_seq, "flow": list(meta.flow or ()),
                 "region_length": region.length,
                 "offset_new": region.offset_new})
        return None


class TcpSeqOracle(EncoderOracle):
    """§V-B: every emitted region satisfies ``seq_stored < seq_new``."""

    name = "tcp_seq"

    def __init__(self, policy) -> None:
        self.strict_cross_flow = bool(getattr(policy, "strict_cross_flow",
                                              False))

    def on_region(self, meta, entry, region) -> Verdict:
        context = {"packet_id": meta.packet_id, "seq_new": meta.tcp_seq,
                   "seq_stored": entry.tcp_seq,
                   "region_length": region.length}
        if meta.tcp_seq is None:
            return ("tcp_seq emitted a region on a packet with no "
                    "sequence number (the Fig. 7 guard is unevaluable)",
                    context)
        if entry.flow != meta.flow:
            if self.strict_cross_flow:
                return ("tcp_seq(strict_cross_flow) emitted a cross-flow "
                        "region", context)
            return None
        if entry.tcp_seq is None or entry.tcp_seq >= meta.tcp_seq:
            return (f"tcp_seq safety broken: region sources seq_stored="
                    f"{entry.tcp_seq}, not strictly earlier than seq_new="
                    f"{meta.tcp_seq} (Fig. 7 line B.7)", context)
        return None


class KDistanceOracle(EncoderOracle):
    """§V-C: region sources lie inside the current reference group.

    Tracks the per-flow stream base itself; reads only the group
    geometry (``k``, ``mss``) from the policy — live, because the
    adaptive variant retunes ``k`` in ``before_packet``, which runs
    before any region of that packet is found.
    """

    name = "k_distance"

    def __init__(self, policy) -> None:
        self._policy = policy
        self._base: Dict[Any, int] = {}

    def on_packet(self, meta) -> None:
        if meta.tcp_seq is None:
            return
        base = self._base.get(meta.flow)
        if base is None or meta.tcp_seq < base:
            self._base[meta.flow] = meta.tcp_seq

    def on_region(self, meta, entry, region) -> Verdict:
        policy = self._policy
        context = {"packet_id": meta.packet_id, "seq_new": meta.tcp_seq,
                   "seq_stored": entry.tcp_seq, "k": policy.k,
                   "region_length": region.length}
        if meta.tcp_seq is not None:
            if entry.flow != meta.flow or entry.tcp_seq is None:
                return ("k_distance emitted a region sourcing a segment "
                        "outside the flow's stream order", context)
            base = self._base.get(meta.flow, meta.tcp_seq)
            group_bytes = policy.k * policy.mss
            group_start = (base + (meta.tcp_seq - base)
                           // group_bytes * group_bytes)
            context["group_start"] = group_start
            if not group_start <= entry.tcp_seq < meta.tcp_seq:
                return (f"k_distance group bound broken: source seq="
                        f"{entry.tcp_seq} outside [{group_start}, "
                        f"{meta.tcp_seq}) for k={policy.k}", context)
            return None
        # Counter mode (no sequence numbers): sources must be no older
        # than the latest reference packet.
        last_reference = policy._last_reference_counter
        context["last_reference_counter"] = last_reference
        if entry.packet_counter < last_reference:
            return (f"k_distance counter bound broken: source counter="
                    f"{entry.packet_counter} predates the latest "
                    f"reference ({last_reference})", context)
        return None


class CacheFlushOracle(EncoderOracle):
    """§V-A: after a non-increasing sequence number, no region may
    source an entry cached before that point until the cache re-seeds.

    A correct flush empties the cache, so every entry referenced
    afterwards carries a packet counter at or past the retransmission
    that triggered it — checked against the oracle's own retransmission
    detector, not the policy's.
    """

    name = "cache_flush"

    def __init__(self, policy=None) -> None:
        self._last_seq: Dict[Any, int] = {}
        self._flush_floor = -1   # min packet_counter a source may carry

    def on_packet(self, meta) -> None:
        if meta.tcp_seq is None or meta.flow is None:
            return
        last = self._last_seq.get(meta.flow)
        if last is not None and meta.tcp_seq <= last:
            self._flush_floor = meta.counter
        self._last_seq[meta.flow] = meta.tcp_seq

    def on_region(self, meta, entry, region) -> Verdict:
        if entry.packet_counter < self._flush_floor:
            return (
                f"cache_flush safety broken: packet counter={meta.counter} "
                f"encoded against a pre-flush entry (source counter="
                f"{entry.packet_counter} < flush floor {self._flush_floor} "
                f"set by a retransmission)",
                {"packet_id": meta.packet_id, "seq_new": meta.tcp_seq,
                 "source_counter": entry.packet_counter,
                 "flush_floor": self._flush_floor,
                 "region_length": region.length})
        return None


#: Oracle constructors by the names policies declare in
#: ``EncoderPolicy.verify_oracles`` (every factory takes the policy).
ORACLE_FACTORIES = {
    "circular_dependency": lambda policy: CircularDependencyOracle(),
    "tcp_seq": TcpSeqOracle,
    "k_distance": KDistanceOracle,
    "cache_flush": CacheFlushOracle,
}


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

class VerificationHarness:
    """Wires the oracles into one run and raises on the first violation.

    Attached by the runner when ``ExperimentConfig(verify=True)``:

    * it becomes the encoder's and decoder's ``verifier`` (hot-path
      hooks: ``on_packet`` / ``on_region`` / drop notifications);
    * it observes the delivered client stream (byte-integrity oracle);
    * it ticks on sim time and, at quiescent points, cross-checks the
      two caches (coherence oracle);
    * violations raise :class:`InvariantViolation` carrying the flight
      recorder (shared with telemetry when both are armed).
    """

    def __init__(self, sim=None, recorder=None,
                 coherence_interval: float = 0.5):
        if coherence_interval <= 0:
            raise ValueError("coherence_interval must be positive")
        self.sim = sim
        self.recorder = recorder
        # Duck-typed causal span recorder (repro.metrics.spans); the
        # runner arms it alongside the harness so a violation's context
        # names the active trace/span — a replayable causal chain, not
        # just a counter snapshot.
        self.spans = None
        self.coherence_interval = float(coherence_interval)
        self.oracles: List[EncoderOracle] = []
        self.violations = 0
        self.coherence_checks = 0
        self.regions_checked = 0
        self.undecodable_seen = 0
        self.stale_seen = 0
        self._encoder_gw = None
        self._decoder_gw = None
        self._enc_core = None
        self._dec_core = None
        self._links: Tuple = ()
        self._expected: Optional[bytes] = None
        self._delivered = 0

    # -- wiring -----------------------------------------------------------

    def attach_pair(self, encoder_gateway, decoder_gateway) -> None:
        """Attach to a live gateway pair (the runner path)."""
        self._encoder_gw = encoder_gateway
        self._decoder_gw = decoder_gateway
        self.attach_cores(encoder_gateway.encoder, decoder_gateway.decoder)

    def attach_cores(self, encoder, decoder=None) -> None:
        """Attach to bare encoder/decoder cores (the unit-test path)."""
        self._enc_core = encoder
        self._dec_core = decoder
        encoder.verifier = self
        if decoder is not None:
            decoder.verifier = self
        names = getattr(encoder.policy, "verify_oracles",
                        ("circular_dependency",))
        self.oracles = [ORACLE_FACTORIES[name](encoder.policy)
                        for name in names]

    def watch_links(self, *links) -> None:
        """Links whose in-flight accounting gates the coherence checks."""
        self._links = tuple(links)

    def arm_integrity(self, expected: bytes) -> None:
        """Arm the end-to-end byte-integrity oracle for one object."""
        self._expected = expected
        self._delivered = 0

    def start(self) -> None:
        """Begin the periodic quiescent-point coherence ticks."""
        if self.sim is not None:
            self.sim.after(self.coherence_interval, self._tick)

    # -- hot-path hooks (encoder/decoder call sites guard `is None`) ------

    def on_packet(self, meta) -> None:
        for oracle in self.oracles:
            oracle.on_packet(meta)

    def on_region(self, meta, entry, region) -> None:
        self.regions_checked += 1
        for oracle in self.oracles:
            verdict = oracle.on_region(meta, entry, region)
            if verdict is not None:
                self.fail(oracle.name, verdict[0], **verdict[1])

    def on_undecodable(self, meta, missing) -> None:
        """Decoder dropped a packet with unresolvable references."""
        self.undecodable_seen += 1
        self._note("undecodable", packet_id=meta.packet_id,
                   missing=len(missing))

    def on_stale(self, meta, suspects) -> None:
        """Decoder dropped a reconstruction that failed the checksum."""
        self.stale_seen += 1
        self._note("stale_decode", packet_id=meta.packet_id,
                   suspects=len(suspects))

    def on_deliver(self, chunk: bytes) -> None:
        """Byte-integrity oracle: one in-order chunk reached the client."""
        if self._expected is None:
            return
        offset = self._delivered
        expected = self._expected[offset:offset + len(chunk)]
        if chunk != expected:
            first_diff = offset + next(
                (i for i, (a, b) in enumerate(zip(chunk, expected))
                 if a != b), min(len(chunk), len(expected)))
            self.fail("byte_integrity",
                      f"delivered stream diverges from the source object "
                      f"at byte {first_diff} (chunk at offset {offset}, "
                      f"length {len(chunk)})",
                      offset=offset, first_diff=first_diff,
                      chunk_length=len(chunk))
        self._delivered = offset + len(chunk)

    # -- coherence oracle --------------------------------------------------

    def quiescent(self) -> bool:
        """True when cache-to-cache comparison is meaningful: nothing in
        flight on the watched links, neither gateway down or resyncing,
        and the cache epochs agree."""
        for link in self._links:
            stats = link.stats
            in_flight = (stats.packets_offered - stats.packets_delivered
                         - stats.packets_lost - stats.packets_queue_dropped)
            if in_flight != 0 or link._queued != 0:
                return False
        for gateway in (self._encoder_gw, self._decoder_gw):
            if gateway is None:
                continue
            if gateway.down:
                return False
            resilience = gateway.resilience
            if resilience is not None and getattr(resilience, "resyncing",
                                                  False):
                return False
        if self._enc_core is None or self._dec_core is None:
            return False
        return self._enc_core.cache.epoch == self._dec_core.cache.epoch

    def check_coherence(self, force: bool = False) -> bool:
        """Cross-check the caches; returns True if a check was performed.

        Every fingerprint present in *both* tables must resolve to
        byte-identical window bytes.  Decoder-side absences are legal
        (lost carrier packets are the modelled perceived loss); a byte
        mismatch means a poisoned store.  The scan is side-effect-free:
        it reads the stores directly so it cannot perturb LRU order or
        trigger the caches' lazy invalidation.
        """
        if not force and not self.quiescent():
            return False
        if self._enc_core is None or self._dec_core is None:
            return False
        enc_cache = self._enc_core.cache
        dec_cache = self._dec_core.cache
        window = self._enc_core.scheme.window
        dec_lookup = dec_cache.table.get  # side-effect-free on both table kinds
        self.coherence_checks += 1
        for entry in list(enc_cache.table.entries()):
            if not entry.usable or entry.store_id in enc_cache._unusable_store_ids:
                continue
            enc_payload = enc_cache.store._data.get(entry.store_id)
            if enc_payload is None:
                continue
            dec_entry = dec_lookup(entry.fingerprint)
            if dec_entry is None or not dec_entry.usable:
                continue
            if dec_entry.store_id in dec_cache._unusable_store_ids:
                continue
            dec_payload = dec_cache.store._data.get(dec_entry.store_id)
            if dec_payload is None:
                continue
            enc_window = enc_payload[entry.offset:entry.offset + window]
            dec_window = dec_payload[dec_entry.offset:
                                     dec_entry.offset + window]
            if enc_window != dec_window:
                self.fail(
                    "cache_coherence",
                    f"fingerprint {entry.fingerprint:#x} resolves to "
                    f"different bytes on the two sides (epoch "
                    f"{enc_cache.epoch}): the decoder cache is poisoned "
                    f"— any region sourcing it would reconstruct wrong "
                    f"bytes",
                    fingerprint=entry.fingerprint,
                    epoch=enc_cache.epoch,
                    encoder_offset=entry.offset,
                    decoder_offset=dec_entry.offset,
                    encoder_window=enc_window.hex(),
                    decoder_window=dec_window.hex())
        return True

    def finalize(self, outcome=None) -> None:
        """End-of-run checks (the runner calls this after ``sim.run``).

        A stall is a *performance* outcome, not an integrity violation —
        the §IV livelock is caught earlier, at the region that creates
        the circular dependency.  Here we assert only that whatever was
        delivered was correct, and take one last coherence look if the
        run ended quiescent.
        """
        if (outcome is not None and outcome.content_ok is False):
            self.fail("byte_integrity",
                      "delivered object differs from the source object",
                      bytes_received=outcome.bytes_received,
                      expected_size=outcome.expected_size)
        self.check_coherence()

    # -- violation plumbing -----------------------------------------------

    def fail(self, oracle: str, message: str, **context: Any) -> None:
        """Record and raise one violation (never returns)."""
        self.violations += 1
        context.setdefault("sim_time",
                           self.sim.now if self.sim is not None else None)
        context.setdefault("undecodable_seen", self.undecodable_seen)
        context.setdefault("stale_seen", self.stale_seen)
        if self.spans is not None:
            trace_id, span_id = self.spans.current_ids()
            context.setdefault("trace_id", trace_id)
            context.setdefault("span_id", span_id)
        self._note("violation", oracle=oracle, message=message)
        dump = self.recorder.dump(64) if self.recorder is not None else []
        raise InvariantViolation(oracle, message, context=context,
                                 flight_recorder=dump)

    def _note(self, event: str, **detail: Any) -> None:
        if self.recorder is not None:
            now = self.sim.now if self.sim is not None else 0.0
            self.recorder.note(now, "verify", event, **detail)

    # -- internal ----------------------------------------------------------

    def _tick(self) -> None:
        self.check_coherence()
        self.sim.after(self.coherence_interval, self._tick)


def harness_if(enabled: bool, sim, recorder=None,
               **kwargs: Any) -> Optional[VerificationHarness]:
    """A harness when enabled, else ``None`` (the fast path).

    Mirrors ``profiler_if`` / ``telemetry_if``: every hook site guards
    with one ``is not None`` check, so ``verify=False`` costs nothing.
    """
    if not enabled:
        return None
    return VerificationHarness(sim, recorder=recorder, **kwargs)
