"""Differential runner: paired executions that must agree.

Three comparisons, each a pair of runs differing in exactly one
implementation choice that must be behaviour-preserving:

* **fingerprinters** — the vectorised polynomial fingerprinter against
  the GF(2) Rabin reference.  The two schemes select different anchor
  *values* by construction (see :mod:`repro.core.polyhash`), so the raw
  wire bytes legitimately differ; what must be bit-identical is the
  *reconstructed application stream* leaving the decoder — byte caching
  is transparent or it is broken.  Both runs use zero loss so every
  packet round-trips through encode→wire→decode.
* **sweep parallelism** — the same sweep executed serially and on a
  process pool must produce equal ``TransferResult.to_dict()`` lists
  cell-for-cell (the engine's bit-identical-aggregation contract).
* **resilience layer** — arming epochs/heartbeats/resync under *zero
  faults* must not change the delivered stream (the epoch stamp rides
  in the shim; heartbeats share the bottleneck but cannot perturb
  correctness).

Each comparison returns a :class:`DifferentialResult`; ``repro verify``
runs all three and exits non-zero on any mismatch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..app.transfer import FileClient, FileServer, TransferOutcome
from ..experiments.config import ExperimentConfig
from ..experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from ..workload.corpus import corpus_object


@dataclass
class DifferentialResult:
    """Outcome of one paired comparison."""

    name: str
    matched: bool
    detail: str
    left_digest: str = ""
    right_digest: str = ""

    def __str__(self) -> str:
        status = "ok" if self.matched else "MISMATCH"
        return f"{self.name}: {status} — {self.detail}"


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:16]


def run_captured(config: ExperimentConfig) -> Tuple[TransferOutcome, bytes]:
    """One transfer, capturing the delivered application stream."""
    testbed = build_testbed(config)
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    chunks: List[bytes] = []
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           on_data=chunks.append,
                           on_done=lambda _o: testbed.sim.stop())
    testbed.sim.run(until=config.time_limit)
    return outcome, b"".join(chunks)


def compare_fingerprinters(file_size: int = 40 * 1460,
                           policy: str = "cache_flush",
                           seed: int = 11) -> DifferentialResult:
    """poly vs rabin: the delivered stream must be byte-identical."""
    base = ExperimentConfig(policy=policy, file_size=file_size,
                            loss_rate=0.0, seed=seed)
    source = corpus_object(base.corpus, base.file_size, base.corpus_seed)
    streams = {}
    for kind in ("poly", "rabin"):
        outcome, stream = run_captured(base.with_updates(
            fingerprint_kind=kind))
        if not outcome.completed:
            return DifferentialResult(
                "fingerprinters", False,
                f"{kind} run did not complete "
                f"({outcome.bytes_received}/{outcome.expected_size} bytes)")
        streams[kind] = stream
    matched = (streams["poly"] == streams["rabin"] == source)
    detail = (f"poly and rabin delivered identical {len(source):,}-byte "
              f"streams (= source object)" if matched else
              "delivered streams diverge between fingerprinters")
    return DifferentialResult("fingerprinters", matched, detail,
                              _digest(streams["poly"]),
                              _digest(streams["rabin"]))


def compare_sweep_parallelism(losses: Tuple[float, ...] = (0.0, 0.02),
                              policies: Tuple[str, ...] = ("cache_flush",
                                                           "tcp_seq"),
                              file_size: int = 30 * 1460,
                              seed: int = 11,
                              workers: int = 2) -> DifferentialResult:
    """Serial vs process-pool sweep: cell results must be equal dicts."""
    from ..experiments.sweep import SweepSpec, run_sweep

    def spec() -> SweepSpec:
        return SweepSpec(
            base=ExperimentConfig(file_size=file_size),
            grid={"policy": list(policies), "loss_rate": list(losses)},
            seeds=(seed,), paired_baseline=True)

    serial = run_sweep(spec(), workers=None)
    parallel = run_sweep(spec(), workers=workers)
    serial_cells = [cell.result.to_dict() for cell in serial]
    parallel_cells = [cell.result.to_dict() for cell in parallel]
    matched = serial_cells == parallel_cells
    mismatches = sum(1 for left, right in zip(serial_cells, parallel_cells)
                     if left != right)
    detail = (f"{len(serial_cells)} cells bit-identical across "
              f"serial and {workers}-worker runs" if matched else
              f"{mismatches}/{len(serial_cells)} cells differ between "
              f"serial and parallel execution")
    return DifferentialResult(
        "sweep-parallelism", matched, detail,
        _digest(repr(serial_cells).encode()),
        _digest(repr(parallel_cells).encode()))


def compare_resilience(file_size: int = 40 * 1460,
                       policy: str = "cache_flush",
                       seed: int = 11) -> DifferentialResult:
    """Resilience on vs off, zero faults: same delivered stream."""
    base = ExperimentConfig(policy=policy, file_size=file_size,
                            loss_rate=0.0, seed=seed)
    source = corpus_object(base.corpus, base.file_size, base.corpus_seed)
    streams = {}
    for armed in (False, True):
        outcome, stream = run_captured(base.with_updates(resilience=armed))
        label = "resilience" if armed else "baseline"
        if not outcome.completed:
            return DifferentialResult(
                "resilience", False,
                f"{label} run did not complete "
                f"({outcome.bytes_received}/{outcome.expected_size} bytes)")
        streams[armed] = stream
    matched = (streams[False] == streams[True] == source)
    detail = (f"armed and unarmed runs delivered identical "
              f"{len(source):,}-byte streams under zero faults" if matched
              else "resilience layer changed the delivered stream")
    return DifferentialResult("resilience", matched, detail,
                              _digest(streams[False]),
                              _digest(streams[True]))


def run_differential(scale: str = "smoke",
                     log: Optional[Callable[[str], None]] = None
                     ) -> List[DifferentialResult]:
    """All three comparisons; ``scale`` picks the workload size.

    ``smoke`` uses small objects (seconds, used by the test suite);
    ``headline`` uses the paper-scale object of the headline scenario
    for the fingerprinter/resilience pairs and a wider sweep grid
    (the CI ``verify-smoke`` job).
    """
    if scale not in ("smoke", "headline"):
        raise ValueError(f"unknown scale {scale!r}")
    if scale == "headline":
        # file1's corpus default is the paper's ~574 KB object.  The
        # Rabin reference fingerprinter is pure Python, so this is the
        # expensive configuration — CI-sized, not test-sized.
        pairs = dict(file_size=0)
        sweep = dict(losses=(0.0, 0.02, 0.05), file_size=60 * 1460)
    else:
        pairs = dict(file_size=40 * 1460)
        sweep = dict(losses=(0.0, 0.02), file_size=30 * 1460)

    results = []
    for runner in (
            lambda: compare_fingerprinters(**pairs),
            lambda: compare_sweep_parallelism(**sweep),
            lambda: compare_resilience(**pairs)):
        result = runner()
        if log is not None:
            log(str(result))
        results.append(result)
    return results
