"""Differential runner: paired executions that must agree.

Six comparisons, each a pair of runs differing in exactly one
implementation choice that must be behaviour-preserving:

* **fingerprinters** — the vectorised polynomial fingerprinter against
  the GF(2) Rabin reference.  The two schemes select different anchor
  *values* by construction (see :mod:`repro.core.polyhash`), so the raw
  wire bytes legitimately differ; what must be bit-identical is the
  *reconstructed application stream* leaving the decoder — byte caching
  is transparent or it is broken.  Both runs use zero loss so every
  packet round-trips through encode→wire→decode.
* **sweep parallelism** — the same sweep executed serially and on a
  process pool must produce equal ``TransferResult.to_dict()`` lists
  cell-for-cell (the engine's bit-identical-aggregation contract).
* **resilience layer** — arming epochs/heartbeats/resync under *zero
  faults* must not change the delivered stream (the epoch stamp rides
  in the shim; heartbeats share the bottleneck but cannot perturb
  correctness).
* **batched encoder** — :meth:`ByteCachingEncoder.encode_batch` (the
  fused whole-window path) against a per-packet ``encode`` loop: the
  wire bytes must match packet for packet.
* **table implementations** — the ring fingerprint table against the
  reference dict table, same packet sequence: byte-identical wire
  output.
* **multiflow parallelism** — independent flows run serially and
  sharded over a process pool must merge to the same per-flow link
  byte counts (see :func:`repro.experiments.multiflow.run_parallel_flows`).

Each comparison returns a :class:`DifferentialResult`; ``repro verify``
runs all of them and exits non-zero on any mismatch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..app.transfer import FileClient, FileServer, TransferOutcome
from ..experiments.config import ExperimentConfig
from ..experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from ..workload.corpus import corpus_object


@dataclass
class DifferentialResult:
    """Outcome of one paired comparison."""

    name: str
    matched: bool
    detail: str
    left_digest: str = ""
    right_digest: str = ""

    def __str__(self) -> str:
        status = "ok" if self.matched else "MISMATCH"
        return f"{self.name}: {status} — {self.detail}"


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:16]


def run_captured(config: ExperimentConfig) -> Tuple[TransferOutcome, bytes]:
    """One transfer, capturing the delivered application stream."""
    testbed = build_testbed(config)
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    chunks: List[bytes] = []
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           on_data=chunks.append,
                           on_done=lambda _o: testbed.sim.stop())
    testbed.sim.run(until=config.time_limit)
    return outcome, b"".join(chunks)


def compare_fingerprinters(file_size: int = 40 * 1460,
                           policy: str = "cache_flush",
                           seed: int = 11) -> DifferentialResult:
    """poly vs rabin: the delivered stream must be byte-identical."""
    base = ExperimentConfig(policy=policy, file_size=file_size,
                            loss_rate=0.0, seed=seed)
    source = corpus_object(base.corpus, base.file_size, base.corpus_seed)
    streams = {}
    for kind in ("poly", "rabin"):
        outcome, stream = run_captured(base.with_updates(
            fingerprint_kind=kind))
        if not outcome.completed:
            return DifferentialResult(
                "fingerprinters", False,
                f"{kind} run did not complete "
                f"({outcome.bytes_received}/{outcome.expected_size} bytes)")
        streams[kind] = stream
    matched = (streams["poly"] == streams["rabin"] == source)
    detail = (f"poly and rabin delivered identical {len(source):,}-byte "
              f"streams (= source object)" if matched else
              "delivered streams diverge between fingerprinters")
    return DifferentialResult("fingerprinters", matched, detail,
                              _digest(streams["poly"]),
                              _digest(streams["rabin"]))


def compare_sweep_parallelism(losses: Tuple[float, ...] = (0.0, 0.02),
                              policies: Tuple[str, ...] = ("cache_flush",
                                                           "tcp_seq"),
                              file_size: int = 30 * 1460,
                              seed: int = 11,
                              workers: int = 2) -> DifferentialResult:
    """Serial vs process-pool sweep: cell results must be equal dicts."""
    from ..experiments.sweep import SweepSpec, run_sweep

    def spec() -> SweepSpec:
        return SweepSpec(
            base=ExperimentConfig(file_size=file_size),
            grid={"policy": list(policies), "loss_rate": list(losses)},
            seeds=(seed,), paired_baseline=True)

    serial = run_sweep(spec(), workers=None)
    parallel = run_sweep(spec(), workers=workers)
    serial_cells = [cell.result.to_dict() for cell in serial]
    parallel_cells = [cell.result.to_dict() for cell in parallel]
    matched = serial_cells == parallel_cells
    mismatches = sum(1 for left, right in zip(serial_cells, parallel_cells)
                     if left != right)
    detail = (f"{len(serial_cells)} cells bit-identical across "
              f"serial and {workers}-worker runs" if matched else
              f"{mismatches}/{len(serial_cells)} cells differ between "
              f"serial and parallel execution")
    return DifferentialResult(
        "sweep-parallelism", matched, detail,
        _digest(repr(serial_cells).encode()),
        _digest(repr(parallel_cells).encode()))


def compare_resilience(file_size: int = 40 * 1460,
                       policy: str = "cache_flush",
                       seed: int = 11) -> DifferentialResult:
    """Resilience on vs off, zero faults: same delivered stream."""
    base = ExperimentConfig(policy=policy, file_size=file_size,
                            loss_rate=0.0, seed=seed)
    source = corpus_object(base.corpus, base.file_size, base.corpus_seed)
    streams = {}
    for armed in (False, True):
        outcome, stream = run_captured(base.with_updates(resilience=armed))
        label = "resilience" if armed else "baseline"
        if not outcome.completed:
            return DifferentialResult(
                "resilience", False,
                f"{label} run did not complete "
                f"({outcome.bytes_received}/{outcome.expected_size} bytes)")
        streams[armed] = stream
    matched = (streams[False] == streams[True] == source)
    detail = (f"armed and unarmed runs delivered identical "
              f"{len(source):,}-byte streams under zero faults" if matched
              else "resilience layer changed the delivered stream")
    return DifferentialResult("resilience", matched, detail,
                              _digest(streams[False]),
                              _digest(streams[True]))


def _offline_packets(n_packets: int, mss: int = 1460) -> List[bytes]:
    """Three-phase workload (fresh / cold / warm) for offline passes.

    Mirrors the hot-path bench's regimes: incompressible traffic, a
    first corpus transfer, and a fully redundant repeat.
    """
    import random

    rnd = random.Random(0xBC)
    fresh = [rnd.randbytes(mss) for _ in range(max(1, n_packets // 2))]
    data = corpus_object("file1", seed=3)
    cold = [data[index: index + mss]
            for index in range(0, len(data), mss)][:n_packets]
    return fresh + cold + cold


def _offline_encode(packets: List[bytes], *, batched: bool,
                    table_kind: str = "ring") -> List[bytes]:
    """Wire bytes of one offline encoder pass over ``packets``."""
    from ..core.cache import ByteCache
    from ..core.encoder import ByteCachingEncoder
    from ..core.fingerprint import FingerprintScheme
    from ..core.policies import PacketMeta, make_policy_pair

    scheme = FingerprintScheme(window=16, zero_bits=4)
    policy, _ = make_policy_pair("naive")
    encoder = ByteCachingEncoder(
        scheme, ByteCache(16 * 1024 * 1024, table_kind=table_kind), policy)
    metas = [PacketMeta(packet_id=counter, flow=("diff", 0),
                        tcp_seq=counter * 1460, counter=counter)
             for counter in range(len(packets))]
    if batched:
        return [result.data
                for result in encoder.encode_batch(packets, metas)]
    return [encoder.encode(payload, meta).data
            for payload, meta in zip(packets, metas)]


def compare_batched_encoder(n_packets: int = 96) -> DifferentialResult:
    """encode_batch (fused window path) vs a per-packet encode loop."""
    packets = _offline_packets(n_packets)
    per_packet = _offline_encode(packets, batched=False)
    batched = _offline_encode(packets, batched=True)
    matched = per_packet == batched
    mismatches = sum(1 for left, right in zip(per_packet, batched)
                     if left != right)
    detail = (f"{len(packets)} packets byte-identical between encode() "
              f"and encode_batch()" if matched else
              f"{mismatches}/{len(packets)} packets differ between "
              f"per-packet and batched encoding")
    return DifferentialResult(
        "batched-encoder", matched, detail,
        _digest(b"".join(per_packet)), _digest(b"".join(batched)))


def compare_table_impls(n_packets: int = 96) -> DifferentialResult:
    """Ring fingerprint table vs the reference dict table."""
    packets = _offline_packets(n_packets)
    ring = _offline_encode(packets, batched=True, table_kind="ring")
    reference = _offline_encode(packets, batched=True, table_kind="dict")
    matched = ring == reference
    mismatches = sum(1 for left, right in zip(ring, reference)
                     if left != right)
    detail = (f"{len(packets)} packets byte-identical between ring and "
              f"dict tables" if matched else
              f"{mismatches}/{len(packets)} packets differ between "
              f"table implementations")
    return DifferentialResult(
        "table-impls", matched, detail,
        _digest(b"".join(ring)), _digest(b"".join(reference)))


def compare_multiflow_parallelism(n_flows: int = 3,
                                  file_size: int = 30 * 1460,
                                  workers: int = 2) -> DifferentialResult:
    """Serial vs process-pool multiflow: identical per-flow results."""
    from ..experiments.multiflow import run_parallel_flows

    configs = [ExperimentConfig(file_size=file_size,
                                corpus_seed=3 + index, seed=11 + index)
               for index in range(n_flows)]
    serial = run_parallel_flows(configs)
    parallel = run_parallel_flows(configs, workers=workers)
    serial_bytes = [flow.per_fetch_link_bytes for flow in serial.flows]
    parallel_bytes = [flow.per_fetch_link_bytes for flow in parallel.flows]
    matched = (serial_bytes == parallel_bytes
               and serial.total_bytes_on_link == parallel.total_bytes_on_link
               and serial.all_completed and parallel.all_completed)
    detail = (f"{n_flows} flows merge bit-identically across serial and "
              f"{workers}-worker execution" if matched else
              f"flow results diverge between serial and parallel "
              f"execution ({serial_bytes} vs {parallel_bytes})")
    return DifferentialResult(
        "multiflow-parallelism", matched, detail,
        _digest(repr(serial_bytes).encode()),
        _digest(repr(parallel_bytes).encode()))


def run_differential(scale: str = "smoke",
                     log: Optional[Callable[[str], None]] = None
                     ) -> List[DifferentialResult]:
    """All six comparisons; ``scale`` picks the workload size.

    ``smoke`` uses small objects (seconds, used by the test suite);
    ``headline`` uses the paper-scale object of the headline scenario
    for the fingerprinter/resilience pairs and a wider sweep grid
    (the CI ``verify-smoke`` job).
    """
    if scale not in ("smoke", "headline"):
        raise ValueError(f"unknown scale {scale!r}")
    if scale == "headline":
        # file1's corpus default is the paper's ~574 KB object.  The
        # Rabin reference fingerprinter is pure Python, so this is the
        # expensive configuration — CI-sized, not test-sized.
        pairs = dict(file_size=0)
        sweep = dict(losses=(0.0, 0.02, 0.05), file_size=60 * 1460)
        offline = dict(n_packets=384)
        multiflow = dict(n_flows=4, file_size=60 * 1460)
    else:
        pairs = dict(file_size=40 * 1460)
        sweep = dict(losses=(0.0, 0.02), file_size=30 * 1460)
        offline = dict(n_packets=96)
        multiflow = dict(n_flows=3, file_size=30 * 1460)

    results = []
    for runner in (
            lambda: compare_fingerprinters(**pairs),
            lambda: compare_sweep_parallelism(**sweep),
            lambda: compare_resilience(**pairs),
            lambda: compare_batched_encoder(**offline),
            lambda: compare_table_impls(**offline),
            lambda: compare_multiflow_parallelism(**multiflow)):
        result = runner()
        if log is not None:
            log(str(result))
        results.append(result)
    return results
