"""Scenario fuzzer: random configs + scripted faults, oracles armed.

``repro fuzz`` generates random experiment configurations (policy,
workload, impairment rates) and random :mod:`repro.sim.faults` scripts
(targeted drops, corruptions, delays, control-plane loss, gateway
restarts, asymmetric evictions), runs each with the verification
oracles armed, and reports any :class:`InvariantViolation`.

When a violation is found, :func:`shrink` minimises the case — dropping
fault events one at a time, halving the object, zeroing impairment
rates — while the violation still reproduces, and the result is written
as a self-contained JSON file replayable with ``repro fuzz --replay``.

All randomness flows through named :class:`~repro.sim.rng.RngRegistry`
streams derived from the root seed: case *i* of seed *s* is the same
scenario on every machine, and no module-level ``random`` state is ever
touched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from ..app.transfer import FileClient, FileServer
from ..experiments.config import ExperimentConfig
from ..experiments.runner import FILE_NAME, SERVER_ADDR, build_testbed
from ..sim.faults import (FaultInjector, GatewayFaultLog, match_nth_control,
                          match_nth_data, schedule_asymmetric_eviction,
                          schedule_gateway_restart)
from ..sim.rng import RngRegistry
from ..workload.corpus import corpus_object
from .oracles import InvariantViolation

FUZZ_SCHEMA = "repro.fuzzcase/v1"

#: Policies the fuzzer draws from — the paper's three robust schemes,
#: i.e. the ones whose emission-time safety the oracles can check.
FUZZ_POLICIES = ("cache_flush", "tcp_seq", "k_distance")

#: Deliberate bug injections for exercising the fuzzer itself: each
#: disables one policy's safety gate, so the matching oracle must trip.
BUG_INJECTIONS = ("tcp_seq_gate", "cache_flush_gate", "k_distance_gate")

_BUG_POLICY = {"tcp_seq_gate": "tcp_seq",
               "cache_flush_gate": "cache_flush",
               "k_distance_gate": "k_distance"}

MSS = 1460


@dataclass
class FuzzCase:
    """One self-contained fuzz scenario (JSON round-trippable)."""

    seed: int
    policy: str = "cache_flush"
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    corpus: str = "file1"
    file_size: int = 30 * MSS
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    resilience: bool = False
    #: Scripted fault events, each a dict with a ``kind`` tag; see
    #: :func:`_apply_faults` for the vocabulary.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Name from :data:`BUG_INJECTIONS`, or None for a clean run.
    inject_bug: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "policy": self.policy,
                "policy_kwargs": dict(self.policy_kwargs),
                "corpus": self.corpus, "file_size": self.file_size,
                "loss_rate": self.loss_rate,
                "corrupt_rate": self.corrupt_rate,
                "reorder_rate": self.reorder_rate,
                "resilience": self.resilience,
                "fault_events": [dict(e) for e in self.fault_events],
                "inject_bug": self.inject_bug}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FuzzCase":
        return cls(**payload)

    def to_config(self) -> ExperimentConfig:
        """Experiment config with oracles armed and bounded stalls.

        The TCP tunables keep a genuine stall short (a handful of
        capped retries) so a fuzz iteration never takes the paper-scale
        600 s to report, while still giving the bounded undecodable
        chains of k-distance room to ride out.
        """
        return ExperimentConfig(
            policy=self.policy, policy_kwargs=dict(self.policy_kwargs),
            corpus=self.corpus, file_size=self.file_size,
            loss_rate=self.loss_rate, corrupt_rate=self.corrupt_rate,
            reorder_rate=self.reorder_rate, resilience=self.resilience,
            seed=self.seed, verify=True,
            time_limit=60.0, tcp_max_retries=6,
            tcp_min_rto=0.05, tcp_max_rto=1.0)


@dataclass
class FuzzOutcome:
    """What one fuzz run observed."""

    completed: bool
    stalled: bool
    sim_time: float
    faults_applied: int
    violation: Optional[Dict[str, Any]] = None   # InvariantViolation.summary()


# -- case generation --------------------------------------------------------


def generate_case(root_seed: int, index: int,
                  inject_bug: Optional[str] = None) -> FuzzCase:
    """Deterministically generate case ``index`` of ``root_seed``."""
    rng = RngRegistry(root_seed).stream(f"case.{index}")
    if inject_bug is not None:
        policy = _BUG_POLICY[inject_bug]
    else:
        policy = rng.choice(FUZZ_POLICIES)
    policy_kwargs: Dict[str, Any] = {}
    if policy == "k_distance":
        policy_kwargs["k"] = rng.choice([2, 4, 8, 16])

    file_size = rng.randrange(5, 60) * MSS
    resilience = rng.random() < 0.3
    case = FuzzCase(
        seed=rng.randrange(1 << 31),
        policy=policy, policy_kwargs=policy_kwargs,
        corpus=rng.choice(["file1", "file2"]),
        file_size=file_size,
        loss_rate=rng.choice([0.0, 0.01, 0.02, 0.05, 0.1]),
        corrupt_rate=rng.choice([0.0, 0.0, 0.01]),
        reorder_rate=rng.choice([0.0, 0.0, 0.02]),
        resilience=resilience,
        inject_bug=inject_bug)

    segments = max(1, file_size // MSS)
    events: List[Dict[str, Any]] = []
    for _ in range(rng.randrange(0, 6)):
        kind = rng.choice(["drop_data", "drop_data", "corrupt_data",
                           "delay_data", "drop_control", "restart", "evict"])
        if kind == "drop_data":
            events.append({"kind": "drop_data",
                           "nth": rng.randrange(1, 3 * segments)})
        elif kind == "corrupt_data":
            events.append({"kind": "corrupt_data",
                           "nth": rng.randrange(1, 3 * segments)})
        elif kind == "delay_data":
            events.append({"kind": "delay_data",
                           "nth": rng.randrange(1, 3 * segments),
                           "delay": rng.choice([0.01, 0.05, 0.2])})
        elif kind == "drop_control" and resilience:
            events.append({"kind": "drop_control",
                           "ctrl": rng.choice(["heartbeat", "heartbeat_ack",
                                               "cache_resync",
                                               "cache_resync_ack"]),
                           "nth": rng.randrange(1, 4)})
        elif kind == "restart" and resilience:
            # Only with resilience armed: a cold restart without the
            # recovery layer is a designed-in stall, not a bug.
            events.append({"kind": "restart",
                           "side": rng.choice(["encoder", "decoder"]),
                           "at": round(rng.uniform(0.05, 2.0), 3),
                           "downtime": rng.choice([0.0, 0.05, 0.2])})
        elif kind == "evict":
            events.append({"kind": "evict",
                           "side": rng.choice(["encoder", "decoder"]),
                           "at": round(rng.uniform(0.05, 2.0), 3),
                           "fraction": rng.choice([0.25, 0.5, 1.0])})
    case.fault_events = events
    return case


# -- execution --------------------------------------------------------------


def _apply_faults(testbed, events: List[Dict[str, Any]]) -> int:
    """Script ``events`` onto the built testbed; returns events armed."""
    forward = FaultInjector(testbed.bottleneck_forward)
    reverse = FaultInjector(testbed.bottleneck_reverse)
    gateway_log = GatewayFaultLog()
    sides = {"encoder": testbed.gateways.encoder,
             "decoder": testbed.gateways.decoder}
    armed = 0
    for event in events:
        kind = event["kind"]
        if kind == "drop_data":
            forward.drop_when(match_nth_data(event["nth"]))
        elif kind == "corrupt_data":
            forward.corrupt_when(match_nth_data(event["nth"]))
        elif kind == "delay_data":
            forward.delay_when(match_nth_data(event["nth"]), event["delay"])
        elif kind == "drop_control":
            # Control messages ride both directions (heartbeats forward,
            # resync requests back); arm the matcher on each link with
            # its own ordinal counter.
            forward.drop_when(match_nth_control(event["ctrl"], event["nth"]))
            reverse.drop_when(match_nth_control(event["ctrl"], event["nth"]))
        elif kind == "restart":
            schedule_gateway_restart(testbed.sim, sides[event["side"]],
                                     at=event["at"],
                                     downtime=event.get("downtime", 0.0),
                                     log=gateway_log)
        elif kind == "evict":
            schedule_asymmetric_eviction(testbed.sim, sides[event["side"]],
                                         at=event["at"],
                                         fraction=event.get("fraction", 0.5),
                                         log=gateway_log)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        armed += 1
    return armed


def _inject_bug(testbed, name: str) -> None:
    """Disable one policy's safety gate (instance-level monkey-patch)."""
    policy = testbed.gateways.encoder.encoder.policy
    if name == "tcp_seq_gate":
        # Drop the Fig. 7 line-B.7 guard: any cache hit is eligible,
        # including the segment's own cached copy.
        policy.entry_eligible = lambda entry, meta: True
    elif name == "cache_flush_gate":
        # Never flush on retransmission.
        policy.before_packet = lambda meta, cache: None
    elif name == "k_distance_gate":
        # Keep the same-flow restriction but lose the group window.
        policy.entry_eligible = (
            lambda entry, meta: entry.flow == meta.flow
            and entry.tcp_seq is not None and meta.tcp_seq is not None)
    else:
        raise ValueError(f"unknown bug injection {name!r}")


def run_case(case: FuzzCase) -> FuzzOutcome:
    """Execute one case with oracles armed; violations are captured."""
    config = case.to_config()
    testbed = build_testbed(config)
    faults_applied = _apply_faults(testbed, case.fault_events)
    if case.inject_bug is not None:
        _inject_bug(testbed, case.inject_bug)

    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    testbed.verifier.arm_integrity(data)
    outcome = client.fetch(SERVER_ADDR, FILE_NAME, expected_size=len(data),
                           expected_content=data,
                           on_data=testbed.verifier.on_deliver,
                           on_done=lambda _o: testbed.sim.stop())
    try:
        testbed.sim.run(until=config.time_limit)
        testbed.verifier.finalize(outcome)
    except InvariantViolation as violation:
        return FuzzOutcome(completed=False, stalled=outcome.stalled,
                           sim_time=testbed.sim.now,
                           faults_applied=faults_applied,
                           violation=violation.summary())
    return FuzzOutcome(completed=outcome.completed, stalled=outcome.stalled,
                       sim_time=testbed.sim.now,
                       faults_applied=faults_applied)


# -- shrinking --------------------------------------------------------------


def shrink(case: FuzzCase,
           reproduces: Optional[Callable[[FuzzCase], bool]] = None,
           max_runs: int = 200) -> FuzzCase:
    """Minimise ``case`` while the violation still reproduces.

    Greedy passes, repeated to fixpoint (bounded by ``max_runs`` total
    executions): drop fault events one at a time, halve the object,
    zero out impairment rates, disarm resilience.  Each candidate that
    still reproduces becomes the new current case.
    """
    if reproduces is None:
        reproduces = lambda c: run_case(c).violation is not None

    runs = [0]

    def still_fails(candidate: FuzzCase) -> bool:
        if runs[0] >= max_runs:
            return False
        runs[0] += 1
        return reproduces(candidate)

    current = case
    progress = True
    while progress and runs[0] < max_runs:
        progress = False
        # 1. Drop fault events, one at a time.
        index = 0
        while index < len(current.fault_events):
            events = (current.fault_events[:index]
                      + current.fault_events[index + 1:])
            candidate = replace(current, fault_events=events)
            if still_fails(candidate):
                current = candidate
                progress = True
            else:
                index += 1
        # 2. Halve the object (floor: 5 segments).
        while current.file_size >= 10 * MSS:
            candidate = replace(current,
                                file_size=(current.file_size // (2 * MSS))
                                * MSS)
            if not still_fails(candidate):
                break
            current = candidate
            progress = True
        # 3. Zero impairment rates and resilience, one knob at a time.
        for knob, off in (("loss_rate", 0.0), ("corrupt_rate", 0.0),
                          ("reorder_rate", 0.0), ("resilience", False)):
            if getattr(current, knob) == off:
                continue
            candidate = replace(current, **{knob: off})
            if still_fails(candidate):
                current = candidate
                progress = True
    return current


# -- persistence / replay ---------------------------------------------------


def case_to_json(case: FuzzCase,
                 violation: Optional[Dict[str, Any]] = None) -> str:
    return json.dumps({"schema": FUZZ_SCHEMA, "case": case.to_dict(),
                       "violation": violation}, indent=2, sort_keys=True)


def case_from_json(text: str) -> FuzzCase:
    payload = json.loads(text)
    if payload.get("schema") != FUZZ_SCHEMA:
        raise ValueError(f"not a {FUZZ_SCHEMA} file "
                         f"(schema={payload.get('schema')!r})")
    return FuzzCase.from_dict(payload["case"])


def replay(text: str) -> FuzzOutcome:
    """Re-run a saved case file; the caller compares against the
    recorded expectation (violation present or not)."""
    return run_case(case_from_json(text))


# -- campaign driver --------------------------------------------------------


@dataclass
class CampaignResult:
    """Summary of one ``repro fuzz`` campaign."""

    iterations: int
    violations: int
    first_violation_index: Optional[int] = None
    shrunk_case: Optional[FuzzCase] = None
    shrunk_violation: Optional[Dict[str, Any]] = None


def run_campaign(root_seed: int, iterations: int,
                 inject_bug: Optional[str] = None,
                 stop_on_violation: bool = True,
                 do_shrink: bool = True,
                 log: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Generate and run ``iterations`` cases from ``root_seed``.

    On the first violation (expected only under ``inject_bug``) the
    failing case is shrunk and returned for persistence.
    """
    violations = 0
    first_index = None
    shrunk = None
    shrunk_violation = None
    for index in range(iterations):
        case = generate_case(root_seed, index, inject_bug=inject_bug)
        outcome = run_case(case)
        if outcome.violation is None:
            if log is not None and (index + 1) % 50 == 0:
                log(f"  {index + 1}/{iterations} cases, no violations")
            continue
        violations += 1
        if first_index is None:
            first_index = index
        if log is not None:
            log(f"  case {index}: VIOLATION "
                f"[{outcome.violation['oracle']}] "
                f"{outcome.violation['message'][:100]}")
        if do_shrink and shrunk is None:
            shrunk = shrink(case)
            shrunk_violation = run_case(shrunk).violation
            if log is not None:
                log(f"  shrunk to {len(shrunk.fault_events)} fault "
                    f"event(s), {shrunk.file_size // MSS} segments")
        if stop_on_violation:
            break
    return CampaignResult(iterations=iterations, violations=violations,
                          first_violation_index=first_index,
                          shrunk_case=shrunk,
                          shrunk_violation=shrunk_violation)
