"""End-to-end payload checksums (transport-side re-export).

The checksum itself is part of the codec's correctness contract — the
decoder's §III-B acceptance test depends on it — so the implementation
lives in :mod:`repro.core.checksum`.  The network layer re-exports it
here for the TCP/UDP stacks and gateways that compute and carry the
value on the wire.
"""

from __future__ import annotations

from ..core.checksum import payload_checksum, verify_payload

__all__ = ["payload_checksum", "verify_payload"]
