"""Minimal UDP layer.

Used by the UDP streaming example: §V-C notes that k-distance encoding
"is applicable to not only TCP but also UDP traffic", so the repo ships
a datagram path to demonstrate it.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from ..sim.engine import Simulator
from ..sim.node import Host
from .checksum import payload_checksum, verify_payload
from .packet import IPPacket, PROTO_UDP, UDPDatagram


class UDPStack:
    """Per-host UDP sockets."""

    def __init__(self, sim: Simulator, host: Host):
        self.sim = sim
        self.host = host
        self._sockets: Dict[int, "UDPSocket"] = {}
        self._ephemeral = itertools.count(40000)
        host.register_protocol(PROTO_UDP, self._on_packet)

    def socket(self, port: Optional[int] = None) -> "UDPSocket":
        if port is None:
            port = next(self._ephemeral)
        if port in self._sockets:
            raise ValueError(f"UDP port {port} already bound")
        sock = UDPSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _on_packet(self, pkt: IPPacket) -> None:
        datagram = pkt.udp
        if datagram is None:
            return
        sock = self._sockets.get(datagram.dst_port)
        if sock is None:
            return
        sock._deliver(pkt.src, datagram)

    def _send(self, sock: "UDPSocket", dst: str, dst_port: int,
              data: bytes) -> None:
        datagram = UDPDatagram(src_port=sock.port, dst_port=dst_port,
                               data=data, checksum=payload_checksum(data))
        self.host.send(IPPacket(src=self.host.address, dst=dst,
                                proto=PROTO_UDP, payload=datagram))


class UDPSocket:
    """A bound UDP port with a receive callback."""

    def __init__(self, stack: UDPStack, port: int):
        self.stack = stack
        self.port = port
        self.on_receive: Optional[Callable[[str, int, bytes], None]] = None
        self.datagrams_received = 0
        self.checksum_drops = 0

    def sendto(self, data: bytes, dst: str, dst_port: int) -> None:
        self.stack._send(self, dst, dst_port, data)

    def _deliver(self, src: str, datagram: UDPDatagram) -> None:
        if not verify_payload(datagram.data, datagram.checksum):
            self.checksum_drops += 1
            return
        self.datagrams_received += 1
        if self.on_receive is not None:
            self.on_receive(src, datagram.src_port, datagram.data)
