"""Packet model.

Packets are Python objects rather than raw byte buffers: the simulation
only needs byte-accurate *payloads* (the region byte caching operates
on) and byte-accurate *size accounting* for everything else.  Header
fields that the gateways and endpoints inspect (addresses, protocol,
TCP sequence numbers) are attributes; their on-the-wire size is charged
via :attr:`IPPacket.wire_size`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

IP_HEADER_SIZE = 20
TCP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_DRE_CONTROL = 253  # gateway-to-gateway control channel (informed marking / NACK)

_packet_ids = itertools.count(1)


@dataclass
class TCPSegment:
    """A TCP segment.

    ``data`` always holds the bytes currently on the wire: the original
    application bytes before the encoder gateway, the DRE-encoded bytes
    between the gateways, and the reconstructed bytes after the decoder.
    ``checksum`` is the end-to-end checksum computed by the sender over
    the *original* payload; the receiving endpoint verifies it after any
    DRE reconstruction, which is how mis-reconstructed payloads get
    dropped (mirroring the role of the real TCP checksum).
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    data: bytes = b""
    checksum: int = 0
    options_size: int = 0
    dre_encoded: bool = False
    sack_blocks: tuple = ()

    # flag bits
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @property
    def syn(self) -> bool:
        return bool(self.flags & self.SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & self.FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & self.RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & self.ACK)

    @property
    def header_size(self) -> int:
        return TCP_HEADER_SIZE + self.options_size

    @property
    def size(self) -> int:
        return self.header_size + len(self.data)

    def flag_names(self) -> str:
        names = []
        for bit, name in ((self.SYN, "SYN"), (self.ACK, "ACK"), (self.FIN, "FIN"),
                          (self.RST, "RST"), (self.PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TCP {self.src_port}->{self.dst_port} {self.flag_names()} "
                f"seq={self.seq} ack={self.ack} len={len(self.data)}>")


@dataclass
class UDPDatagram:
    """A UDP datagram (used by the UDP streaming example / k-distance)."""

    src_port: int
    dst_port: int
    data: bytes = b""
    checksum: int = 0
    dre_encoded: bool = False

    @property
    def header_size(self) -> int:
        return UDP_HEADER_SIZE

    @property
    def size(self) -> int:
        return UDP_HEADER_SIZE + len(self.data)


@dataclass
class ControlMessage:
    """Gateway-to-gateway control payload (proto 253).

    Used by the informed-marking and NACK-recovery extension policies.
    ``kind`` is a short string tag; ``payload`` is policy-defined.
    """

    kind: str
    payload: object

    @property
    def header_size(self) -> int:
        return 4

    @property
    def size(self) -> int:
        # Approximate a compact binary encoding: 4-byte header plus
        # 8 bytes per fingerprint / id, plus any raw payload bytes the
        # message carries (NACK repairs ship whole packet payloads).
        items = self.payload if isinstance(self.payload, (list, tuple)) else [self.payload]
        total = self.header_size
        for item in items:
            total += 8
            if isinstance(item, (tuple, list)):
                for part in item:
                    if isinstance(part, (bytes, bytearray)):
                        total += len(part)
        return total


@dataclass
class IPPacket:
    """An IP packet wrapping one of the transport payloads above."""

    src: str
    dst: str
    proto: int
    payload: object
    ttl: int = 64
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    header_corrupt: bool = False
    created_at: float = 0.0

    @property
    def wire_size(self) -> int:
        """Bytes this packet occupies on a link (IP header + payload)."""
        return IP_HEADER_SIZE + self.payload.size

    @property
    def tcp(self) -> Optional[TCPSegment]:
        if self.proto == PROTO_TCP:
            return self.payload  # type: ignore[return-value]
        return None

    @property
    def udp(self) -> Optional[UDPDatagram]:
        if self.proto == PROTO_UDP:
            return self.payload  # type: ignore[return-value]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<IP #{self.packet_id} {self.src}->{self.dst} proto={self.proto} "
                f"{self.wire_size}B>")
