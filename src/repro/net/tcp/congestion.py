"""TCP congestion control: Reno (RFC 5681) and CUBIC (RFC 8312).

Slow start, congestion avoidance, fast retransmit and fast recovery.
The paper's central performance effect — correlated losses caused by
byte-caching dependencies shrinking the window and forcing exponential
backoff (§I, §VI) — is produced by exactly this state machine.  Reno is
the default; CUBIC (the Linux default in the paper's 2012 testbed era)
is available via ``TCPConfig(congestion="cubic")`` for the
congestion-control ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class RenoStats:
    slow_start_acks: int = 0
    ca_acks: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0


class RenoCongestionControl:
    """Byte-based Reno congestion control."""

    def __init__(self, mss: int, initial_cwnd_segments: int = 2,
                 initial_ssthresh: int = 1 << 30):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd = initial_cwnd_segments * mss
        self.ssthresh = initial_ssthresh
        self.in_fast_recovery = False
        self._recovery_point = 0
        self.stats = RenoStats()

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def window(self) -> int:
        """Current congestion window in bytes."""
        return self.cwnd

    def on_new_ack(self, acked_bytes: int, snd_una: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``acked_bytes``."""
        if self.in_fast_recovery:
            if snd_una >= self._recovery_point:
                # Full ACK: deflate and leave fast recovery.
                self.cwnd = self.ssthresh
                self.in_fast_recovery = False
            else:
                # Partial ACK (NewReno-flavoured): stay in recovery;
                # the connection retransmits the next hole.
                self.cwnd = max(self.mss, self.cwnd - acked_bytes + self.mss)
            return
        if self.in_slow_start:
            self.stats.slow_start_acks += 1
            self.cwnd += min(acked_bytes, self.mss)
        else:
            self.stats.ca_acks += 1
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_fast_retransmit(self, flight_size: int, snd_nxt: int) -> None:
        """Three duplicate ACKs: halve and enter fast recovery."""
        self.stats.fast_retransmits += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True
        self._recovery_point = snd_nxt

    def on_dup_ack_in_recovery(self) -> None:
        """Window inflation for each further duplicate ACK."""
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.stats.timeouts += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False


class CubicCongestionControl(RenoCongestionControl):
    """CUBIC congestion avoidance (RFC 8312, simplified).

    After a loss event the window is reduced to ``beta``·cwnd (0.7, vs
    Reno's 0.5) and congestion avoidance follows the cubic function

        W(t) = C·(t − K)³ + W_max,   K = ∛(W_max·(1−β)/C)

    anchored at the pre-loss window ``W_max``: concave recovery back to
    W_max, plateau, then convex probing.  The TCP-friendly region (grow
    at least as fast as Reno would) is honoured.  Windows are tracked in
    bytes; the cubic terms use segments, per the RFC.
    """

    C = 0.4          # scaling constant (segments/second³)
    BETA = 0.7       # multiplicative decrease factor

    def __init__(self, mss: int, initial_cwnd_segments: int = 2,
                 initial_ssthresh: int = 1 << 30,
                 clock: Optional[Callable[[], float]] = None):
        super().__init__(mss, initial_cwnd_segments, initial_ssthresh)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._w_max = 0.0          # segments
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._reno_window = 0.0    # TCP-friendly estimate, segments
        self._acked_bytes = 0

    # -- helpers -----------------------------------------------------------

    def _segments(self, bytes_value: float) -> float:
        return bytes_value / self.mss

    def _enter_epoch(self) -> None:
        now = self._clock()
        self._epoch_start = now
        cwnd_segments = self._segments(self.cwnd)
        if cwnd_segments < self._w_max:
            self._k = ((self._w_max - cwnd_segments) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self._w_max = cwnd_segments
        self._reno_window = cwnd_segments
        self._acked_bytes = 0

    def _cubic_window(self, t: float) -> float:
        return self.C * (t - self._k) ** 3 + self._w_max

    # -- overrides ----------------------------------------------------------

    def on_new_ack(self, acked_bytes: int, snd_una: int) -> None:
        if self.in_fast_recovery or self.in_slow_start:
            super().on_new_ack(acked_bytes, snd_una)
            return
        self.stats.ca_acks += 1
        if self._epoch_start is None:
            self._enter_epoch()
        now = self._clock()
        t = max(0.0, now - self._epoch_start)
        target = self._cubic_window(t + 0.1)   # look ~one RTT ahead
        # TCP-friendly region: emulate Reno's AIMD growth.
        self._acked_bytes += acked_bytes
        self._reno_window += (3.0 * (1 - self.BETA) / (1 + self.BETA)
                              * acked_bytes / max(1.0, self.cwnd))
        target = max(target, self._reno_window)

        cwnd_segments = self._segments(self.cwnd)
        if target > cwnd_segments:
            # Pace growth toward the target over roughly a window of ACKs.
            increment = ((target - cwnd_segments) / max(1.0, cwnd_segments)
                         * self.mss)
            self.cwnd += max(1, int(increment))
        else:
            self.cwnd += max(1, int(self.mss * self.mss
                                    / (100.0 * self.cwnd)))  # min probing

    def on_fast_retransmit(self, flight_size: int, snd_nxt: int) -> None:
        self.stats.fast_retransmits += 1
        cwnd_segments = self._segments(self.cwnd)
        self._w_max = cwnd_segments
        self.ssthresh = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True
        self._recovery_point = snd_nxt
        self._epoch_start = None

    def on_timeout(self, flight_size: int) -> None:
        self.stats.timeouts += 1
        self._w_max = self._segments(self.cwnd)
        self.ssthresh = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self._epoch_start = None


def make_congestion_control(kind: str, mss: int,
                            initial_cwnd_segments: int = 2,
                            clock: Optional[Callable[[], float]] = None
                            ) -> RenoCongestionControl:
    """Factory used by the connection: ``"reno"`` or ``"cubic"``."""
    if kind == "reno":
        return RenoCongestionControl(mss, initial_cwnd_segments)
    if kind == "cubic":
        return CubicCongestionControl(mss, initial_cwnd_segments,
                                      clock=clock)
    raise ValueError(f"unknown congestion control: {kind!r}")
