"""Retransmission-timeout estimation (Jacobson/Karels, RFC 6298).

SRTT and RTTVAR are updated from RTT samples of segments that were
*not* retransmitted (Karn's rule — enforced by the connection, which
simply never samples a retransmitted segment).  The paper's stall
phenomenon rides on this machinery: every failed retransmission doubles
the RTO ("the TCP time outs grow exponentially", §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RtoEstimator:
    """RFC 6298 RTO estimation with exponential backoff."""

    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 1.0
    alpha: float = 1.0 / 8.0
    beta: float = 1.0 / 4.0
    k: float = 4.0

    def __post_init__(self) -> None:
        self.srtt: float | None = None
        self.rttvar: float = 0.0
        self._rto: float = self.initial_rto
        self._backoff: int = 0
        self.samples: int = 0

    @property
    def rto(self) -> float:
        """Current RTO including any backoff, clamped to [min, max]."""
        backed_off = self._rto * (1 << self._backoff)
        return min(self.max_rto, max(self.min_rto, backed_off))

    @property
    def backoff_exponent(self) -> int:
        return self._backoff

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds) from a fresh segment."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self._rto = self.srtt + self.k * self.rttvar
        # A valid sample means the network is delivering: reset backoff
        # (Karn's algorithm, step 3).
        self._backoff = 0

    def back_off(self) -> None:
        """Double the RTO after a retransmission timeout (capped)."""
        if self.rto < self.max_rto:
            self._backoff += 1

    def reset_backoff(self) -> None:
        self._backoff = 0
