"""Simulation-grade TCP: Reno congestion control, RTO with backoff,
cumulative ACKs, fast retransmit/recovery, and bounded-retry aborts
(the observable "connection stall" of §IV).
"""

from ..packet import TCPSegment
from .congestion import (CubicCongestionControl, RenoCongestionControl,
                         RenoStats, make_congestion_control)
from .connection import TCPConfig, TCPConnection, TCPState, TCPStats
from .stack import TCPStack
from .timer import RtoEstimator

__all__ = [
    "TCPSegment",
    "CubicCongestionControl",
    "RenoCongestionControl",
    "make_congestion_control",
    "RenoStats",
    "TCPConfig",
    "TCPConnection",
    "TCPState",
    "TCPStats",
    "TCPStack",
    "RtoEstimator",
]
