"""TCP stack: listeners, connection table, segment demultiplexing."""

from __future__ import annotations

import itertools
import zlib
from typing import Callable, Dict, Optional, Tuple

from ...sim.engine import Simulator
from ...sim.node import Host
from ..packet import IPPacket, PROTO_TCP, TCPSegment
from .connection import TCPConfig, TCPConnection

ConnKey = Tuple[int, str, int]  # (local_port, remote_addr, remote_port)


class TCPStack:
    """Per-host TCP: owns connections and listeners, talks to IP."""

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[TCPConfig] = None,
                 telemetry=None, spans=None):
        self.sim = sim
        self.host = host
        self.config = config if config is not None else TCPConfig()
        # Duck-typed telemetry facade (repro.metrics.telemetry); when
        # set, every connection registers cwnd/ssthresh/RTO/in-flight
        # pull gauges.  Reads happen on the sampler tick, never in the
        # segment path, so the only stack-side cost is this None check
        # at connection setup.
        self.telemetry = telemetry
        # Duck-typed causal span recorder (repro.metrics.spans),
        # propagated to every connection the stack creates.
        self.spans = spans
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self._ephemeral = itertools.count(49152)
        host.register_protocol(PROTO_TCP, self._on_packet)

    # ------------------------------------------------------------------

    def listen(self, port: int, on_accept: Callable[[TCPConnection], None]) -> None:
        """Accept incoming connections on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        self._listeners[port] = on_accept

    def connect(self, remote_addr: str, remote_port: int,
                local_port: Optional[int] = None,
                config: Optional[TCPConfig] = None) -> TCPConnection:
        """Active-open a connection (sends the SYN immediately)."""
        if local_port is None:
            local_port = next(self._ephemeral)
        conn = self._make_connection(local_port, remote_addr, remote_port, config)
        conn.connect()
        return conn

    def close_all(self) -> None:
        for conn in list(self._connections.values()):
            if conn.is_open:
                conn.abort("stack_shutdown")

    # ------------------------------------------------------------------

    def _make_connection(self, local_port: int, remote_addr: str,
                         remote_port: int,
                         config: Optional[TCPConfig] = None) -> TCPConnection:
        key: ConnKey = (local_port, remote_addr, remote_port)
        if key in self._connections:
            raise ValueError(f"connection {key} already exists")

        def transmit(segment: TCPSegment, _remote=remote_addr) -> None:
            self.host.send(IPPacket(src=self.host.address, dst=_remote,
                                    proto=PROTO_TCP, payload=segment))

        # Deterministic per-connection ISS derived from the four-tuple.
        # Distinct connections must NOT share sequence spaces: the §II
        # mobility failure (split-connection ACKs arriving at the wrong
        # endpoint) only manifests when, as in real TCP, the initial
        # sequence numbers are unrelated.
        iss = zlib.crc32(
            f"{self.host.address}:{local_port}:{remote_addr}:{remote_port}"
            .encode("ascii")) & 0x0FFFFFFF
        conn = TCPConnection(self.sim, transmit,
                             local_addr=self.host.address,
                             local_port=local_port,
                             remote_addr=remote_addr,
                             remote_port=remote_port,
                             config=config if config is not None else self.config,
                             iss=iss)
        self._connections[key] = conn
        if self.spans is not None:
            conn.spans = self.spans
        if self.telemetry is not None:
            self.telemetry.register_connection(
                conn, f"{self.host.name}:{local_port}")
        return conn

    def _on_packet(self, pkt: IPPacket) -> None:
        segment = pkt.tcp
        if segment is None:
            return
        key: ConnKey = (segment.dst_port, pkt.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.segment_arrived(segment)
            return
        if segment.syn and not segment.has_ack:
            on_accept = self._listeners.get(segment.dst_port)
            if on_accept is not None:
                conn = self._make_connection(segment.dst_port, pkt.src,
                                             segment.src_port)
                conn.accept_syn(segment)
                on_accept(conn)
                return
        # No matching connection or listener: silently drop (a real
        # stack would send RST; nothing in the evaluation needs it).

    def release(self, conn: TCPConnection) -> bool:
        """Drop a fully-closed connection from the connection table.

        Single-transfer experiments never need this — their handful of
        connections die with the simulator.  A serving run churns
        thousands of short flows through one stack, and an unpruned
        table is exactly the per-flow state leak the flow pool's
        high-water-mark invariant guards against.  Only closed
        connections are released (a released key silently drops any
        late retransmission from the peer, which is why the pool
        lingers past the max RTO before calling this).
        """
        if conn.is_open:
            return False
        key: ConnKey = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._connections.get(key) is not conn:
            return False
        del self._connections[key]
        if self.telemetry is not None:
            # Duck-typed facade; older/fake facades may lack the hook.
            unregister = getattr(self.telemetry, "unregister_connection", None)
            if unregister is not None:
                unregister(conn)
        return True

    def connection_count(self) -> int:
        return len(self._connections)

    def connections(self):
        return list(self._connections.values())
