"""TCP connection state machine (simulation grade).

Implements the pieces of TCP that the paper's phenomena depend on:

* three-way handshake and FIN teardown;
* cumulative ACKs with out-of-order reassembly, duplicate-ACK
  generation and SACK blocks at the receiver (RFC 2018);
* Reno congestion control with SACK-based loss recovery (slow start /
  congestion avoidance / fast retransmit / fast recovery with an
  RFC 6675-style scoreboard and pipe algorithm) — :mod:`.congestion`
  and :mod:`.sack`;
* limited transmit (RFC 3042) to keep the ACK clock alive at small
  windows;
* Jacobson/Karels RTO with Karn's rule and exponential backoff —
  :mod:`.timer` — with the backoff cleared whenever an ACK advances
  ``snd_una`` (Linux behaviour; without it a retransmission-heavy phase
  pins the RTO at its maximum);
* bounded retransmission attempts: a segment retransmitted more than
  ``max_retries`` consecutive times aborts the connection, which is the
  observable "TCP connection stall" of §IV.

End-to-end integrity: every data segment carries a checksum over its
original payload; the receiving endpoint verifies it after any
byte-caching reconstruction and drops mismatching segments, playing the
role of the real TCP checksum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ...sim.engine import Simulator, Timer
from ..checksum import payload_checksum, verify_payload
from ..packet import TCPSegment
from .congestion import make_congestion_control
from .sack import RangeSet, select_sack_blocks
from .timer import RtoEstimator


@dataclass
class TCPConfig:
    """Tunables for a simulated TCP endpoint."""

    mss: int = 1460
    rwnd: int = 262144
    min_rto: float = 0.2
    max_rto: float = 8.0
    initial_rto: float = 1.0
    max_retries: int = 12
    syn_retries: int = 6
    initial_cwnd_segments: int = 2
    dup_ack_threshold: int = 3
    sack_enabled: bool = True
    congestion: str = "reno"        # "reno" | "cubic"
    delayed_ack: bool = False       # RFC 1122 delayed ACKs (40 ms / 2 seg)
    delayed_ack_timeout: float = 0.04
    verify_checksums: bool = True


@dataclass
class TCPStats:
    """Per-connection counters."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0            # payload bytes, first transmissions
    bytes_delivered: int = 0       # in-order bytes handed to the app
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    dup_acks_received: int = 0
    dup_acks_sent: int = 0
    checksum_drops: int = 0
    out_of_order_segments: int = 0
    sack_retransmissions: int = 0


class TCPState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_SENT = "fin_sent"
    DONE = "done"
    ABORTED = "aborted"


class TCPConnection:
    """One endpoint of a simulated TCP connection.

    Interface (socket-like)::

        conn.on_receive = lambda data: ...
        conn.on_established = lambda: ...
        conn.on_remote_close = lambda: ...   # peer's FIN (EOF)
        conn.on_close = lambda reason: ...   # "fin", "stalled", ...
        conn.send(data)
        conn.close()

    The stack (owner) provides ``transmit(segment)`` which wraps the
    segment in an IP packet and hands it to the host.
    """

    def __init__(self, sim: Simulator, transmit: Callable[[TCPSegment], None],
                 local_addr: str, local_port: int,
                 remote_addr: str, remote_port: int,
                 config: Optional[TCPConfig] = None,
                 iss: int = 0):
        self.sim = sim
        self._transmit = transmit
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.config = config if config is not None else TCPConfig()
        self.state = TCPState.CLOSED
        self.stats = TCPStats()

        # ---- sender state
        self.iss = iss
        self.snd_una = iss           # oldest unacknowledged sequence number
        self.snd_nxt = iss           # next sequence number to send
        self._buffer = bytearray()   # unsent + unacked application bytes
        self._buffer_seq = iss + 1   # seq of _buffer[0]
        self._fin_queued = False
        self._fin_seq: Optional[int] = None
        self._peer_rwnd = 0xFFFF
        self._dup_ack_count = 0
        self._retx_count = 0
        # Single in-progress RTT measurement: (end_seq, tx_time).  Any
        # retransmission invalidates it — a cumulative ACK that arrives
        # after hole repairs would otherwise be measured as a
        # multi-second "RTT" and blow up the RTO estimate.
        self._timing: Optional[tuple] = None
        self._sacked = RangeSet()               # receiver-reported holes filled
        self._retx_marked = RangeSet()          # retransmitted this recovery
        self._recovery_point: Optional[int] = None
        self._rto_mode = False                  # recovery entered via RTO
        self.rto = RtoEstimator(min_rto=self.config.min_rto,
                                max_rto=self.config.max_rto,
                                initial_rto=self.config.initial_rto)
        self.cc = make_congestion_control(
            self.config.congestion, self.config.mss,
            self.config.initial_cwnd_segments, clock=lambda: sim.now)
        self._retx_timer = Timer(sim, self._on_rto)

        # ---- receiver state
        self.irs: Optional[int] = None
        self.rcv_nxt: Optional[int] = None
        self._ooo_data: Dict[int, bytes] = {}
        self._ooo_ranges = RangeSet()
        self._recent_ooo_seqs: list = []   # most recent first, for SACK
        self._delack_timer = Timer(sim, self._delack_fire)
        self._delack_pending = 0
        self._remote_fin_seq: Optional[int] = None
        self._remote_fin_delivered = False

        # ---- app callbacks
        self.on_receive: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None
        self.on_remote_close: Optional[Callable[[], None]] = None

        # ---- timeline markers for metrics
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.close_reason: Optional[str] = None

        # Duck-typed causal span recorder (repro.metrics.spans).  When
        # set, retransmissions emit a ``tcp_retransmit`` span linked to
        # the original segment's trace — the hop that ties a receiver
        # stall back to the encoder decision that caused it.  Costs one
        # ``is not None`` check per retransmission when absent.
        self.spans = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state is not TCPState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = TCPState.SYN_SENT
        self.snd_nxt = self.iss + 1   # SYN consumes one sequence number
        self._send_segment(TCPSegment.SYN, seq=self.iss)
        self._arm_retx_timer()

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self.state in (TCPState.DONE, TCPState.ABORTED):
            raise RuntimeError(f"send() on closed connection ({self.state})")
        if self._fin_queued:
            raise RuntimeError("send() after close()")
        self._buffer.extend(data)
        self._try_send()

    def close(self) -> None:
        """Half-close: FIN goes out once all queued data has been sent."""
        if self._fin_queued or self.state in (TCPState.DONE, TCPState.ABORTED):
            return
        self._fin_queued = True
        self._try_send()

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately."""
        self._finish(TCPState.ABORTED, reason)

    @property
    def is_open(self) -> bool:
        return self.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD,
                              TCPState.ESTABLISHED, TCPState.FIN_SENT)

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def in_recovery(self) -> bool:
        return self._recovery_point is not None

    # ------------------------------------------------------------------
    # passive open (used by the stack's listener)
    # ------------------------------------------------------------------

    def accept_syn(self, segment: TCPSegment) -> None:
        """Passive open: a SYN arrived for a listening port."""
        self.state = TCPState.SYN_RCVD
        self.irs = segment.seq
        self.rcv_nxt = segment.seq + 1
        self.snd_nxt = self.iss + 1
        self._send_segment(TCPSegment.SYN | TCPSegment.ACK, seq=self.iss)
        self._arm_retx_timer()

    # ------------------------------------------------------------------
    # segment arrival
    # ------------------------------------------------------------------

    def segment_arrived(self, segment: TCPSegment) -> None:
        """Entry point from the stack's demultiplexer."""
        self.stats.segments_received += 1

        if segment.rst:
            self._finish(TCPState.ABORTED, "reset")
            return

        if self.state is TCPState.SYN_SENT:
            self._handle_in_syn_sent(segment)
            return
        if self.state is TCPState.SYN_RCVD:
            if segment.has_ack and segment.ack > self.iss:
                self._become_established()
            elif segment.syn:
                # Retransmitted SYN: the SYN-ACK was lost; resend it.
                self._send_segment(TCPSegment.SYN | TCPSegment.ACK, seq=self.iss)
                return
            # fall through: the ACK may carry data

        if self.state not in (TCPState.ESTABLISHED, TCPState.FIN_SENT):
            return

        if segment.syn:
            # Stray retransmitted SYN: the peer never saw our SYN-ACK.
            self._send_segment(TCPSegment.SYN | TCPSegment.ACK, seq=self.iss)
            return

        if segment.has_ack:
            self._process_ack(segment)

        if segment.data or segment.fin:
            self._process_payload(segment)

    # ------------------------------------------------------------------
    # handshake helpers
    # ------------------------------------------------------------------

    def _handle_in_syn_sent(self, segment: TCPSegment) -> None:
        if not (segment.syn and segment.has_ack and segment.ack == self.iss + 1):
            return
        self.irs = segment.seq
        self.rcv_nxt = segment.seq + 1
        self.snd_una = segment.ack
        self._peer_rwnd = segment.window
        self._retx_count = 0
        self._become_established()
        self._send_ack()
        self._try_send()

    def _become_established(self) -> None:
        if self.state is TCPState.ESTABLISHED:
            return
        self.state = TCPState.ESTABLISHED
        self.established_at = self.sim.now
        self._retx_timer.stop()
        self._retx_count = 0
        if self.on_established is not None:
            self.on_established()

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def _effective_window(self) -> int:
        window = min(self.cc.window(), self._peer_rwnd)
        if 0 < self._dup_ack_count < self.config.dup_ack_threshold:
            # RFC 3042 limited transmit: the first two duplicate ACKs
            # each allow one new segment, keeping the ACK clock alive
            # when the window is too small for fast retransmit.
            window += self._dup_ack_count * self.config.mss
        return window

    def _buffer_end_seq(self) -> int:
        return self._buffer_seq + len(self._buffer)

    def _try_send(self) -> None:
        """Transmit as much new data as the windows allow."""
        if self.state not in (TCPState.ESTABLISHED, TCPState.FIN_SENT):
            return
        if self.in_recovery and self.config.sack_enabled:
            self._sack_transmit()
            return
        mss = self.config.mss
        limit = self.snd_una + self._effective_window()
        while self.snd_nxt < self._buffer_end_seq():
            chunk_len = min(mss, self._buffer_end_seq() - self.snd_nxt)
            if self.snd_nxt + chunk_len > limit:
                # Never emit a window-truncated runt: segments stay
                # MSS-quantised (as Linux does), which keeps packet
                # boundaries identical across retransmissions — a
                # boundary-shifted copy would poison the byte caches
                # with same-fingerprint-different-payload entries.
                break
            self._send_from_buffer(self.snd_nxt, chunk_len, fresh=True)
            self.snd_nxt += chunk_len
        self._maybe_send_fin()
        if self.flight_size > 0:
            self._arm_retx_timer(only_if_unarmed=True)

    def _send_new_data_once(self) -> bool:
        """Send one new segment if data is available (recovery rule b)."""
        if self.snd_nxt >= self._buffer_end_seq():
            return False
        chunk_len = min(self.config.mss, self._buffer_end_seq() - self.snd_nxt)
        self._send_from_buffer(self.snd_nxt, chunk_len, fresh=True)
        self.snd_nxt += chunk_len
        return True

    def _send_from_buffer(self, seq: int, length: int, fresh: bool) -> None:
        start = seq - self._buffer_seq
        data = bytes(self._buffer[start: start + length])
        self._send_data_segment(seq, data, fresh=fresh)

    def _maybe_send_fin(self) -> None:
        if not self._fin_queued or self._fin_seq is not None:
            return  # no close requested, or FIN already sent
        if self.snd_nxt < self._buffer_end_seq():
            return  # data still unsent; FIN goes after it
        self._fin_seq = self._buffer_end_seq()
        self._send_segment(TCPSegment.FIN | TCPSegment.ACK, seq=self._fin_seq)
        self.snd_nxt = self._fin_seq + 1
        self.state = TCPState.FIN_SENT
        self._arm_retx_timer(only_if_unarmed=True)

    def _send_data_segment(self, seq: int, data: bytes, fresh: bool) -> None:
        flags = TCPSegment.ACK | TCPSegment.PSH
        segment = TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq, ack=self.rcv_nxt if self.rcv_nxt is not None else 0,
            flags=flags, window=self._advertised_window(),
            data=data, checksum=payload_checksum(data))
        if fresh:
            self.stats.bytes_sent += len(data)
            if self._timing is None:
                self._timing = (seq + len(data), self.sim.now)
        else:
            self.stats.retransmissions += 1
            self._timing = None  # Karn: a retransmission spoils the sample
            spans = self.spans
            if spans is not None:
                spans.note_retransmit(
                    f"tcp:{self.local_addr}:{self.local_port}",
                    (self.local_addr, self.local_port,
                     self.remote_addr, self.remote_port),
                    seq, length=len(data))
        self.stats.segments_sent += 1
        self._transmit(segment)

    def _send_segment(self, flags: int, seq: int,
                      sack_blocks: tuple = ()) -> None:
        """Send a zero-data control segment (SYN / FIN / bare ACK)."""
        options_size = 10 + 8 * len(sack_blocks) if sack_blocks else 0
        segment = TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt if self.rcv_nxt is not None else 0,
            flags=flags, window=self._advertised_window(),
            options_size=options_size)
        segment.sack_blocks = sack_blocks
        self.stats.segments_sent += 1
        self._transmit(segment)

    def _send_ack(self) -> None:
        self._delack_pending = 0
        self._delack_timer.stop()
        blocks: tuple = ()
        if self.config.sack_enabled and self._ooo_ranges:
            blocks = select_sack_blocks(self._ooo_ranges,
                                        self._recent_ooo_seqs)
        self._send_segment(TCPSegment.ACK, seq=self.snd_nxt,
                           sack_blocks=blocks)

    def _delack_fire(self) -> None:
        if self._delack_pending > 0:
            self._send_ack()

    def _advertised_window(self) -> int:
        return min(self.config.rwnd, 0xFFFFFFF)

    # ------------------------------------------------------------------
    # ACK processing (sender side)
    # ------------------------------------------------------------------

    def _process_ack(self, segment: TCPSegment) -> None:
        ack = segment.ack
        self._peer_rwnd = max(segment.window, self.config.mss)

        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore

        sack_advanced = self._absorb_sack(segment)

        if ack > self.snd_una:
            self._handle_new_ack(ack)
            return

        if ack == self.snd_una and self.flight_size > 0 and not segment.data:
            self.stats.dup_acks_received += 1
            self._dup_ack_count += 1
            if self._dup_ack_count < self.config.dup_ack_threshold \
                    and not self._should_enter_recovery():
                self._try_send()  # limited transmit
            elif not self.in_recovery:
                self._enter_recovery()
            else:
                self.cc.on_dup_ack_in_recovery()
                self._try_send()
        elif sack_advanced and self.in_recovery:
            self._sack_transmit()

    def _handle_new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        self.snd_una = ack
        self._retx_count = 0
        self._dup_ack_count = 0
        # Forward progress clears RTO backoff (Linux resets icsk_backoff
        # when snd_una advances; without this a retransmission-heavy
        # phase pins the RTO at max_rto and the connection crawls).
        self.rto.reset_backoff()
        self._sample_rtt(ack)
        self._trim_buffer(ack)
        self._sacked.remove_below(ack)
        self._retx_marked.remove_below(ack)

        if self.in_recovery:
            assert self._recovery_point is not None
            if self.snd_una >= self._recovery_point:
                self._exit_recovery()
            else:
                # NewReno/RFC 6675 partial ACK: keep filling holes.
                self.cc.on_new_ack(acked, self.snd_una)
                self._sack_transmit(force_front=True)
                self._arm_retx_timer()
                return
        else:
            self.cc.on_new_ack(acked, self.snd_una)

        if self.flight_size > 0:
            self._arm_retx_timer()
        else:
            self._retx_timer.stop()
        self._check_send_complete()
        self._try_send()

    def _absorb_sack(self, segment: TCPSegment) -> bool:
        blocks = getattr(segment, "sack_blocks", ()) or ()
        if not self.config.sack_enabled or not blocks:
            return False
        before = self._sacked.coverage(self.snd_una, self.snd_nxt)
        for start, end in blocks:
            if end > self.snd_una:
                self._sacked.add(max(start, self.snd_una),
                                 min(end, self.snd_nxt))
        return self._sacked.coverage(self.snd_una, self.snd_nxt) > before

    def _should_enter_recovery(self) -> bool:
        """RFC 6675 trigger: enough SACKed bytes imply a loss."""
        if not self.config.sack_enabled:
            return False
        sacked = self._sacked.coverage(self.snd_una, self.snd_nxt)
        return sacked > (self.config.dup_ack_threshold - 1) * self.config.mss

    def _enter_recovery(self) -> None:
        self.stats.fast_retransmits += 1
        self._recovery_point = self.snd_nxt
        self._retx_marked.clear()
        self.cc.on_fast_retransmit(self.flight_size, self.snd_nxt)
        if self.config.sack_enabled:
            self._sack_transmit(force_front=True)
        else:
            self._retransmit_front()
        self._arm_retx_timer()

    def _exit_recovery(self) -> None:
        self._recovery_point = None
        self._rto_mode = False
        self._retx_marked.clear()
        if self.cc.in_fast_recovery:
            self.cc.on_new_ack(0, self.snd_una)  # full-ACK deflation

    # -- SACK-based recovery transmission ---------------------------------

    def _loss_domain_end(self) -> int:
        """Highest sequence presumed lost when unsacked.

        After an RTO everything outstanding is presumed lost (go-back-N
        over the scoreboard); in SACK fast recovery only holes below the
        highest SACKed byte are known-lost (RFC 6675).
        """
        if self._rto_mode and self._recovery_point is not None:
            return min(self._recovery_point, self.snd_nxt)
        return min(self._sacked.max_end(), self.snd_nxt)

    def _pipe(self) -> int:
        """RFC 6675 pipe: bytes considered in flight.

        flight minus SACKed minus presumed-lost-and-not-yet-
        retransmitted holes in the loss domain.
        """
        flight = self.flight_size
        sacked = self._sacked.coverage(self.snd_una, self.snd_nxt)
        lost = 0
        domain_end = self._loss_domain_end()
        for gap_start, gap_end in self._sacked.gaps(self.snd_una, domain_end):
            lost += (gap_end - gap_start) - self._retx_marked.coverage(
                gap_start, gap_end)
        return flight - sacked - lost

    def _next_hole(self) -> Optional[tuple]:
        """Lowest unsacked, un-retransmitted hole in the loss domain."""
        data_end = min(self._loss_domain_end(), self._buffer_end_seq())
        for gap_start, gap_end in self._sacked.gaps(self.snd_una, data_end):
            for sub_start, sub_end in self._retx_marked.gaps(gap_start, gap_end):
                if sub_end > sub_start:
                    return (sub_start, min(sub_end, sub_start + self.config.mss))
        return None

    def _sack_transmit(self, force_front: bool = False) -> None:
        """Fill holes / send new data while the pipe has room."""
        mss = self.config.mss
        if force_front and not self._retx_marked.contains_point(self.snd_una) \
                and not self._sacked.contains_point(self.snd_una):
            self._retransmit_range(self.snd_una,
                                   min(self.snd_una + mss,
                                       self._buffer_end_seq()))
        budget = 200  # hard bound on work per ACK
        while budget > 0:
            budget -= 1
            if self._pipe() + mss > self.cc.window():
                break
            hole = self._next_hole()
            if hole is not None:
                self._retransmit_range(hole[0], hole[1])
                continue
            # New data is additionally bounded by the peer's window:
            # outstanding (unacked) bytes must never exceed it.
            if self.flight_size + mss > self._peer_rwnd:
                break
            if not self._send_new_data_once():
                break
        self._maybe_send_fin()

    def _retransmit_range(self, start: int, end: int) -> None:
        if end <= start:
            return
        if start >= self._buffer_end_seq():
            # The hole is the FIN.
            if self._fin_seq is not None and start == self._fin_seq:
                self._send_segment(TCPSegment.FIN | TCPSegment.ACK,
                                   seq=self._fin_seq)
            return
        self.stats.sack_retransmissions += 1
        self._send_from_buffer(start, end - start, fresh=False)
        self._retx_marked.add(start, end)

    def _retransmit_front(self) -> None:
        """Retransmit the earliest unacknowledged segment."""
        if self.state is TCPState.SYN_SENT:
            self._send_segment(TCPSegment.SYN, seq=self.iss)
            return
        if self.state is TCPState.SYN_RCVD:
            self._send_segment(TCPSegment.SYN | TCPSegment.ACK, seq=self.iss)
            return
        if self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send_segment(TCPSegment.FIN | TCPSegment.ACK, seq=self._fin_seq)
            return
        seq = self.snd_una
        end = min(seq + self.config.mss, self._buffer_end_seq())
        if end <= seq:
            return
        # Goes through _retransmit_range so the recovery scoreboard
        # knows this range is back in the pipe.
        self._retransmit_range(seq, end)

    def _sample_rtt(self, ack: int) -> None:
        if self._timing is None:
            return
        end_seq, tx_time = self._timing
        if ack >= end_seq:
            self._timing = None
            self.rto.sample(self.sim.now - tx_time)

    def _trim_buffer(self, ack: int) -> None:
        """Release acknowledged bytes from the send buffer."""
        end = min(ack, self._buffer_end_seq())
        if end > self._buffer_seq:
            del self._buffer[: end - self._buffer_seq]
            self._buffer_seq = end

    def _check_send_complete(self) -> None:
        if (self.state is TCPState.FIN_SENT and self._fin_seq is not None
                and self.snd_una > self._fin_seq):
            self._finish(TCPState.DONE, "fin")

    # ------------------------------------------------------------------
    # retransmission timeout
    # ------------------------------------------------------------------

    def _arm_retx_timer(self, only_if_unarmed: bool = False) -> None:
        if only_if_unarmed and self._retx_timer.armed:
            return
        self._retx_timer.start(self.rto.rto)

    def _on_rto(self) -> None:
        if self.flight_size == 0 and self.state not in (
                TCPState.SYN_SENT, TCPState.SYN_RCVD):
            return
        self._retx_count += 1
        self.stats.timeouts += 1
        max_retries = (self.config.syn_retries
                       if self.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD)
                       else self.config.max_retries)
        if self._retx_count > max_retries:
            self._finish(TCPState.ABORTED, "stalled")
            return
        self.cc.on_timeout(self.flight_size)
        self.rto.back_off()
        self._dup_ack_count = 0
        # An RTO starts a go-back-N recovery episode: everything
        # outstanding and unsacked is presumed lost and will be resent
        # as the (collapsed, slow-starting) window allows.  The SACK
        # scoreboard itself stays valid — SACKed data is not resent.
        if self.state not in (TCPState.SYN_SENT, TCPState.SYN_RCVD):
            self._recovery_point = self.snd_nxt
            self._rto_mode = True
        self._retx_marked.clear()
        self._retransmit_front()
        self._arm_retx_timer()

    # ------------------------------------------------------------------
    # receiver internals
    # ------------------------------------------------------------------

    def _process_payload(self, segment: TCPSegment) -> None:
        assert self.rcv_nxt is not None

        if segment.data and self.config.verify_checksums:
            if not verify_payload(segment.data, segment.checksum):
                self.stats.checksum_drops += 1
                return  # corrupted payload: no ACK, as if never received

        if segment.fin:
            self._remote_fin_seq = segment.seq + len(segment.data)

        advanced = False
        if segment.data:
            advanced = self._ingest_data(segment.seq, segment.data)

        # FIN consumes one sequence number once all data before it is in.
        if (self._remote_fin_seq is not None
                and self.rcv_nxt == self._remote_fin_seq
                and not self._remote_fin_delivered):
            self._remote_fin_delivered = True
            self.rcv_nxt += 1
            self._send_ack()
            self._on_remote_fin()
            return

        if segment.data or segment.fin:
            if not advanced:
                # Out-of-order or duplicate: ACK immediately so the
                # sender's dup-ack machinery keeps working (RFC 1122
                # exempts these from delaying).
                self.stats.dup_acks_sent += 1
                self._send_ack()
            elif self.config.delayed_ack and not self._ooo_ranges:
                self._delack_pending += 1
                if self._delack_pending >= 2:
                    self._send_ack()
                else:
                    self._delack_timer.start(self.config.delayed_ack_timeout)
            else:
                self._send_ack()

    def _ingest_data(self, seq: int, data: bytes) -> bool:
        """Insert a data segment; returns True if rcv_nxt advanced."""
        assert self.rcv_nxt is not None
        end = seq + len(data)
        if end <= self.rcv_nxt:
            return False  # entirely duplicate
        if seq > self.rcv_nxt:
            if seq - self.rcv_nxt <= self.config.rwnd:
                if seq not in self._ooo_data or len(self._ooo_data[seq]) < len(data):
                    self._ooo_data[seq] = data
                    self._ooo_ranges.add(seq, end)
                    self.stats.out_of_order_segments += 1
                    if seq in self._recent_ooo_seqs:
                        self._recent_ooo_seqs.remove(seq)
                    self._recent_ooo_seqs.insert(0, seq)
                    del self._recent_ooo_seqs[8:]
            return False
        # Overlapping or exactly in order: deliver the new part.
        self._deliver(data[self.rcv_nxt - seq:])
        self._drain_ooo()
        self._ooo_ranges.remove_below(self.rcv_nxt)
        return True

    def _drain_ooo(self) -> None:
        assert self.rcv_nxt is not None
        while True:
            match = None
            for seq, data in self._ooo_data.items():
                if seq <= self.rcv_nxt:
                    match = seq
                    break
            if match is None:
                return
            data = self._ooo_data.pop(match)
            if match + len(data) > self.rcv_nxt:
                self._deliver(data[self.rcv_nxt - match:])

    def _deliver(self, data: bytes) -> None:
        assert self.rcv_nxt is not None
        self.rcv_nxt += len(data)
        self.stats.bytes_delivered += len(data)
        if self.on_receive is not None and data:
            self.on_receive(data)

    def _on_remote_fin(self) -> None:
        if self.state is TCPState.FIN_SENT:
            self._check_send_complete()
        if self.on_remote_close is not None:
            self.on_remote_close()

    # ------------------------------------------------------------------

    def _finish(self, state: TCPState, reason: str) -> None:
        if self.state in (TCPState.DONE, TCPState.ABORTED):
            return
        self.state = state
        self.close_reason = reason
        self.closed_at = self.sim.now
        self._retx_timer.stop()
        if self.on_close is not None:
            self.on_close(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TCPConnection {self.local_addr}:{self.local_port}->"
                f"{self.remote_addr}:{self.remote_port} {self.state.value} "
                f"una={self.snd_una} nxt={self.snd_nxt}>")
