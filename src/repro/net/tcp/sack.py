"""Selective acknowledgment support (RFC 2018 / RFC 6675, simplified).

Two pieces live here:

* :class:`RangeSet` — a sorted set of disjoint half-open byte ranges,
  used for the receiver's out-of-order map, the sender's SACK
  scoreboard, and the per-recovery retransmission marks.
* :func:`select_sack_blocks` — builds the (up to 3) SACK blocks a
  receiver reports, most-recently-updated range first per RFC 2018.
  The ordering is load-bearing: with more than 3 out-of-order ranges,
  always reporting the same 3 would leave the sender's scoreboard
  blind to the rest and stall recovery; recency-first rotates every
  range through the ACK stream.

The paper's testbed ran Linux TCP, which has had SACK on by default
since 2.2 — without it, the correlated losses byte caching induces
(§VI) collapse into retransmission-timeout chains far more often than
the paper observed, so SACK is part of the faithful substrate.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, List, Optional, Tuple

Range = Tuple[int, int]


class RangeSet:
    """Sorted disjoint half-open integer ranges with merge-on-add."""

    def __init__(self, ranges: Optional[Iterable[Range]] = None):
        self._starts: List[int] = []
        self._ends: List[int] = []
        if ranges:
            for start, end in ranges:
                self.add(start, end)

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self):
        return iter(zip(self._starts, self._ends))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{s},{e})" for s, e in self)
        return f"RangeSet({spans})"

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging any overlapping ranges."""
        if end <= start:
            return
        # Find all existing ranges overlapping or adjacent to [start, end).
        left = bisect_left(self._ends, start)
        right = bisect_right(self._starts, end)
        if left < right:
            start = min(start, self._starts[left])
            end = max(end, self._ends[right - 1])
        self._starts[left:right] = [start]
        self._ends[left:right] = [end]

    def remove_below(self, bound: int) -> None:
        """Drop everything strictly below ``bound``."""
        index = bisect_right(self._ends, bound)
        self._starts = self._starts[index:]
        self._ends = self._ends[index:]
        if self._starts and self._starts[0] < bound:
            self._starts[0] = bound

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    def contains_point(self, value: int) -> bool:
        index = bisect_right(self._starts, value) - 1
        return index >= 0 and value < self._ends[index]

    def covers(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` lies entirely inside one range."""
        if end <= start:
            return True
        index = bisect_right(self._starts, start) - 1
        return index >= 0 and self._ends[index] >= end

    def coverage(self, start: int, end: int) -> int:
        """Total covered bytes within ``[start, end)``."""
        total = 0
        for range_start, range_end in self:
            lo = max(start, range_start)
            hi = min(end, range_end)
            if hi > lo:
                total += hi - lo
            if range_start >= end:
                break
        return total

    def first_gap(self, start: int, end: int) -> Optional[Range]:
        """Lowest uncovered sub-range of ``[start, end)``, or None."""
        cursor = start
        for range_start, range_end in self:
            if range_end <= cursor:
                continue
            if range_start > cursor:
                return (cursor, min(range_start, end))
            cursor = range_end
            if cursor >= end:
                return None
        if cursor < end:
            return (cursor, end)
        return None

    def gaps(self, start: int, end: int) -> List[Range]:
        """All uncovered sub-ranges of ``[start, end)``."""
        out: List[Range] = []
        cursor = start
        for range_start, range_end in self:
            if range_end <= cursor:
                continue
            if range_start >= end:
                break
            if range_start > cursor:
                out.append((cursor, range_start))
            cursor = max(cursor, range_end)
        if cursor < end:
            out.append((cursor, end))
        return out

    def max_end(self) -> int:
        """Highest covered value (0 when empty)."""
        return self._ends[-1] if self._ends else 0


def select_sack_blocks(ooo: RangeSet, recent_seqs: Iterable[int] = (),
                       limit: int = 3) -> Tuple[Range, ...]:
    """Choose the SACK blocks a receiver advertises.

    ``recent_seqs`` lists recently arrived out-of-order sequence
    numbers, most recent first; the blocks containing them are reported
    first (RFC 2018 §4), then any remaining ranges lowest-first.
    """
    ranges = list(ooo)
    chosen: List[Range] = []
    for seq in recent_seqs:
        if len(chosen) >= limit:
            break
        for block in ranges:
            if block[0] <= seq < block[1] and block not in chosen:
                chosen.append(block)
                break
    for block in ranges:
        if len(chosen) >= limit:
            break
        if block not in chosen:
            chosen.append(block)
    return tuple(chosen)
