"""Protocol substrate: packets, checksums, TCP and UDP stacks."""

from .checksum import payload_checksum, verify_payload
from .packet import (ControlMessage, IPPacket, IP_HEADER_SIZE, PROTO_DRE_CONTROL,
                     PROTO_TCP, PROTO_UDP, TCPSegment, TCP_HEADER_SIZE,
                     UDPDatagram, UDP_HEADER_SIZE)
from .tcp import TCPConfig, TCPConnection, TCPStack, TCPState, TCPStats
from .udp import UDPSocket, UDPStack

__all__ = [
    "payload_checksum",
    "verify_payload",
    "ControlMessage",
    "IPPacket",
    "IP_HEADER_SIZE",
    "PROTO_DRE_CONTROL",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCPSegment",
    "TCP_HEADER_SIZE",
    "UDPDatagram",
    "UDP_HEADER_SIZE",
    "TCPConfig",
    "TCPConnection",
    "TCPStack",
    "TCPState",
    "TCPStats",
    "UDPSocket",
    "UDPStack",
]
