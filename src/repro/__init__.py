"""repro — byte caching (data redundancy elimination) in lossy wireless
networks.

A complete reproduction of *Byte Caching in Wireless Networks*
(Le, Srivatsa & Iyengar, ICDCS 2012): the Spring & Wetherall encoder,
the paper's three loss-robust encoding algorithms, the extension
schemes it discusses, and the full simulated testbed (TCP with SACK,
lossy rate-limited links, gateways, workloads, experiment harness) the
evaluation runs on.

Quick tour::

    from repro import (FingerprintScheme, ByteCache, ByteCachingEncoder,
                       ByteCachingDecoder)
    from repro.core.policies import CacheFlushPolicy, PacketMeta

    scheme = FingerprintScheme()            # w=16, k=4 (§III-B)
    encoder = ByteCachingEncoder(scheme, ByteCache(), CacheFlushPolicy())

End-to-end experiments::

    from repro.experiments import ExperimentConfig, run_transfer
    result = run_transfer(ExperimentConfig(policy="cache_flush",
                                           loss_rate=0.05))
    print(result.download_time, result.perceived_loss_rate)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .core import (ByteCache, ByteCachingDecoder, ByteCachingEncoder,
                   DecodeResult, DecodeStatus, EncodeResult,
                   FingerprintScheme, PolyFingerprinter, RabinFingerprinter)
from .core.adaptive import AdaptiveKDistancePolicy, LossRateEstimator
from .experiments import ExperimentConfig, run_paired, run_transfer
from .gateway import DecoderGateway, EncoderGateway, GatewayPair
from .sim import Simulator
from .workload import corpus_names, corpus_object

__version__ = "1.0.0"

__all__ = [
    "ByteCache",
    "ByteCachingDecoder",
    "ByteCachingEncoder",
    "DecodeResult",
    "DecodeStatus",
    "EncodeResult",
    "FingerprintScheme",
    "PolyFingerprinter",
    "RabinFingerprinter",
    "AdaptiveKDistancePolicy",
    "LossRateEstimator",
    "ExperimentConfig",
    "run_paired",
    "run_transfer",
    "DecoderGateway",
    "EncoderGateway",
    "GatewayPair",
    "Simulator",
    "corpus_names",
    "corpus_object",
    "__version__",
]
