"""Chaos campaign engine.

Declarative fault *campaigns* — timed phases composing several
concurrent injections from :mod:`repro.sim.faults` — run against any
experiment scenario, with steady-state (SLO) hypotheses checked during
and after each phase and the verdicts emitted as a ``repro.chaos/v1``
resilience scorecard.

* :mod:`repro.chaos.campaign` — the :class:`Campaign`/:class:`Phase`
  spec (JSON round-trippable, seeded, replayable like fuzz cases) and
  the library of canonical campaigns (``handover-storm``,
  ``flaky-backhaul``, ``cache-thrash``, ...).
* :mod:`repro.chaos.slo` — the steady-state oracles: goodput floor vs
  the no-DRE baseline, bounded undecodable rate, MTTR ceiling after
  each phase, no permanent degradation, byte integrity always.
* :mod:`repro.chaos.runner` — the campaign runner (rides the sweep
  engine's ``parallel_map``), scorecard assembly/validation/replay and
  the table renderer behind ``repro chaos``.
"""

from .campaign import (CAMPAIGNS, CHAOS_POLICIES, CHAOS_SCHEMA, Campaign,
                       Phase, canonical_campaign)
from .runner import (CampaignReport, format_scorecard, replay_report,
                     run_campaign, validate_chaos_report)
from .slo import SLOResult, evaluate_slos

__all__ = [
    "CAMPAIGNS", "CHAOS_POLICIES", "CHAOS_SCHEMA", "Campaign", "Phase",
    "canonical_campaign", "CampaignReport", "format_scorecard",
    "replay_report", "run_campaign", "validate_chaos_report",
    "SLOResult", "evaluate_slos",
]
