"""Campaign/phase spec and the canonical campaign library.

A :class:`Campaign` is a fully declarative chaos scenario: a base
experiment configuration plus timed :class:`Phase` windows, each phase
composing several concurrent *injections* (dicts with a ``kind`` tag,
mirroring the fuzz-case fault-event vocabulary).  Campaigns are JSON
round-trippable and all randomness flows through named
:class:`~repro.sim.rng.RngRegistry` streams derived from the run seed,
so a failed campaign replays byte-for-byte from its scorecard.

Injection vocabulary (``kind`` → parameters; times are seconds relative
to the phase start, windows default to the whole phase):

``bursty_loss``
    Gilbert-Elliott loss on ``link`` ("forward"/"reverse") for the
    phase window: ``p_good_bad``, ``p_bad_good``, ``loss_good``,
    ``loss_bad``.
``link_flap``
    ``link`` goes administratively down ``down_for`` seconds,
    ``flaps`` times, ``period`` apart.
``partition``
    Both directions down for ``duration`` starting at ``offset``.
``control_blackout``
    Drop every gateway control message (optionally only ``kinds``)
    in both directions for the phase window.
``loss``
    Uniform extra loss: set ``link.loss_rate`` to ``rate`` for the
    phase window, restoring the scenario rate afterwards.
``reorder_data`` / ``dup_data``
    Re-order (by ``extra_delay``) / duplicate every ``every``-th data
    segment offered during the phase window.
``restart``
    Crash the ``side`` gateway at ``offset``, restart ``downtime``
    later.
``evict``
    Asymmetrically evict ``fraction`` of the ``side`` cache at
    ``offset``.
``memory_pressure``
    Squeeze the ``side`` cache byte budget to ``fraction`` of its
    in-use bytes at ``offset`` (eviction storm), restoring the budget
    after ``duration`` when given.
``clock_skew``
    Stretch the encoder's heartbeat clock by ``factor`` at ``offset``,
    restored at the phase end.

Gateway-side injections are skipped automatically on the no-DRE
baseline run (there are no gateways to fault); link-level injections
apply to both, so the goodput-floor oracle compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..experiments.config import ExperimentConfig

CHAOS_SCHEMA = "repro.chaos/v1"

#: The paper's three robust §V policies — the default campaign matrix.
CHAOS_POLICIES = ("cache_flush", "tcp_seq", "k_distance")

#: Per-policy constructor kwargs used by campaign runs.
POLICY_KWARGS: Dict[str, Dict[str, Any]] = {"k_distance": {"k": 8}}

MSS = 1460

_INJECTION_KINDS = frozenset({
    "bursty_loss", "link_flap", "partition", "control_blackout", "loss",
    "reorder_data", "dup_data", "restart", "evict", "memory_pressure",
    "clock_skew",
})

#: Injections that need gateways (skipped on the no-DRE baseline).
GATEWAY_KINDS = frozenset({
    "restart", "evict", "memory_pressure", "clock_skew",
    "control_blackout",
})


@dataclass
class Phase:
    """One timed window of concurrent injections."""

    name: str
    start: float
    duration: float
    injections: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"phase {self.name!r}: non-positive duration")
        if self.start < 0:
            raise ValueError(f"phase {self.name!r}: negative start")
        for injection in self.injections:
            kind = injection.get("kind")
            if kind not in _INJECTION_KINDS:
                raise ValueError(
                    f"phase {self.name!r}: unknown injection kind {kind!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "start": self.start,
                "duration": self.duration,
                "injections": [dict(i) for i in self.injections]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Phase":
        return cls(name=payload["name"], start=payload["start"],
                   duration=payload["duration"],
                   injections=[dict(i)
                               for i in payload.get("injections", [])])


@dataclass
class Campaign:
    """A declarative, seeded, replayable chaos scenario."""

    name: str
    description: str
    scale: str = "smoke"                      # "smoke" | "full"
    #: ExperimentConfig field overrides shared by every run of the
    #: campaign (workload, link shape, TCP tunables, time limit).
    scenario: Dict[str, Any] = field(default_factory=dict)
    phases: List[Phase] = field(default_factory=list)
    #: SLO thresholds consumed by repro.chaos.slo.evaluate_slos.
    slo: Dict[str, float] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (11,)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"campaign {self.name!r} has no phases")
        ordered = sorted(self.phases, key=lambda p: p.start)
        if [p.name for p in ordered] != [p.name for p in self.phases]:
            raise ValueError(f"campaign {self.name!r}: phases out of order")
        if not self.seeds:
            raise ValueError(f"campaign {self.name!r} has no seeds")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "description": self.description,
                "scale": self.scale, "scenario": dict(self.scenario),
                "phases": [phase.to_dict() for phase in self.phases],
                "slo": dict(self.slo), "seeds": list(self.seeds)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Campaign":
        return cls(name=payload["name"],
                   description=payload.get("description", ""),
                   scale=payload.get("scale", "smoke"),
                   scenario=dict(payload.get("scenario", {})),
                   phases=[Phase.from_dict(p) for p in payload["phases"]],
                   slo=dict(payload.get("slo", {})),
                   seeds=tuple(payload.get("seeds", (11,))))

    def config(self, policy, seed: int,
               resilience: bool = True) -> ExperimentConfig:
        """The experiment configuration for one campaign run.

        ``policy=None`` builds the no-DRE baseline (gateway faults are
        skipped at arming time).  Telemetry is always on — the SLO
        oracles are layered on the sampled gauge series — and the
        verification harness is armed whenever DRE is.
        """
        kwargs = dict(POLICY_KWARGS.get(policy or "", {}))
        dre = policy is not None
        return ExperimentConfig(
            policy=policy, policy_kwargs=kwargs, seed=seed,
            resilience=resilience and dre,
            telemetry=True, verify=dre,
            **self.scenario)


# ---------------------------------------------------------------------------
# canonical campaigns
# ---------------------------------------------------------------------------

def _base_scenario(scale: str) -> Dict[str, Any]:
    """The shared campaign testbed: a slowed bottleneck so sub-second
    resilience timescales (heartbeats at 0.25 s, resync at 0.25 s) fit
    inside the transfer, and bounded-RTO TCP so a genuine stall
    resolves in seconds rather than the paper-scale 600 s."""
    smoke = scale == "smoke"
    return {
        # Long-range redundancy (matches far behind the TCP window):
        # cache divergence costs until actively repaired, instead of
        # self-healing within one retransmission.
        "corpus": "longhaul",
        "file_size": (600 if smoke else 1400) * MSS,
        # Slow enough that the DRE-compressed transfer (~2x faster than
        # raw) still spans every phase window — a campaign whose faults
        # fire after the download finished proves nothing.
        "bandwidth": 250_000.0,
        "tcp_min_rto": 0.05,
        "tcp_max_rto": 1.0,
        "tcp_max_retries": 12,
        "time_limit": 30.0 if smoke else 60.0,
    }


def _seeds(scale: str) -> Tuple[int, ...]:
    return (11,) if scale == "smoke" else (11, 23)


def _unit(scale: str) -> float:
    """Phase time unit: campaigns are authored in units so the full
    scale stretches the same shape over the bigger object."""
    return 0.4 if scale == "smoke" else 0.8


_DEFAULT_SLO = {
    # Repaired runs land near or below the no-DRE baseline (~0.8-1.2x);
    # an unrepaired cache divergence on the longhaul corpus costs ~2.5x+
    # — the ceiling sits between the two regimes.
    "goodput_delay_ratio": 2.0,
    "max_undecodable_rate": 0.15,
    "mttr_ceiling": 3.0,
}


def _campaign(name: str, description: str, scale: str,
              phases: List[Phase], **slo_overrides: float) -> Campaign:
    slo = dict(_DEFAULT_SLO)
    slo.update(slo_overrides)
    return Campaign(name=name, description=description, scale=scale,
                    scenario=_base_scenario(scale), phases=phases,
                    slo=slo, seeds=_seeds(scale))


def handover_storm(scale: str = "smoke") -> Campaign:
    """Repeated short outages + loss bursts, and the handover lands the
    flow behind a cold decoder (a different box with an empty cache)."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        Phase("storm", 2 * u, 3 * u, [
            {"kind": "link_flap", "link": "forward", "down_for": 0.3 * u,
             "flaps": 2, "period": 1.4 * u},
            {"kind": "bursty_loss", "link": "forward",
             "p_good_bad": 0.05, "p_bad_good": 0.3, "loss_bad": 0.5},
            {"kind": "reorder_data", "every": 7, "extra_delay": 0.05},
            {"kind": "restart", "side": "decoder", "offset": 0.7 * u,
             "downtime": 0.2 * u},
        ]),
        Phase("aftermath", 5 * u, 2 * u),
    ]
    return _campaign(
        "handover-storm",
        "link flaps + Gilbert-Elliott bursts + a cold-cache decoder "
        "handover mid-storm", scale, phases)


def flaky_backhaul(scale: str = "smoke") -> Campaign:
    """Sustained bursty loss with a control-plane brownout on top."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, u),
        Phase("bursty", u, 4 * u, [
            {"kind": "bursty_loss", "link": "forward",
             "p_good_bad": 0.08, "p_bad_good": 0.35, "loss_bad": 0.5},
            {"kind": "bursty_loss", "link": "reverse",
             "p_good_bad": 0.03, "p_bad_good": 0.4, "loss_bad": 0.3},
        ]),
        Phase("settle", 5 * u, 2 * u),
    ]
    return _campaign(
        "flaky-backhaul",
        "sustained Gilbert-Elliott loss in both directions",
        scale, phases)


def cache_thrash(scale: str = "smoke") -> Campaign:
    """Memory pressure forces eviction storms against the byte-budget
    cap while one-sided eviction diverges the caches."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        Phase("thrash", 2 * u, 2 * u, [
            {"kind": "memory_pressure", "side": "decoder", "offset": 0.0,
             "fraction": 0.25, "duration": u},
            {"kind": "memory_pressure", "side": "encoder",
             "offset": 0.5 * u, "fraction": 0.25, "duration": u},
            {"kind": "evict", "side": "decoder", "offset": 1.2 * u,
             "fraction": 0.5},
        ]),
        Phase("refill", 4 * u, 2 * u),
    ]
    return _campaign(
        "cache-thrash",
        "byte-budget squeezes + asymmetric eviction: watchdog territory",
        scale, phases)


def split_brain_resync(scale: str = "smoke") -> Campaign:
    """Overlapping decoder crashes with the control channel black: the
    resync client must retry through the blackout and survive the
    superseded restore (the idempotent crash/restore path)."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        Phase("split-brain", 2 * u, 2.5 * u, [
            {"kind": "restart", "side": "decoder", "offset": 0.0,
             "downtime": 0.6 * u},
            {"kind": "restart", "side": "decoder", "offset": 0.3 * u,
             "downtime": 0.6 * u},
            {"kind": "control_blackout"},
        ]),
        Phase("resync", 4.5 * u, 2.5 * u),
    ]
    return _campaign(
        "split-brain-resync",
        "overlapping decoder crashes under a control blackout",
        scale, phases, mttr_ceiling=4.0)


def degraded_brownout(scale: str = "smoke") -> Campaign:
    """A control blackout long enough to trip the encoder into
    pass-through (degraded) mode; it must recover when control returns
    and never stay degraded."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        # > heartbeat_timeout (0.75 s) at smoke scale: 3 u = 1.2 s.
        Phase("brownout", 2 * u, 3 * u, [
            {"kind": "control_blackout"},
        ]),
        Phase("restore", 5 * u, 2.5 * u),
    ]
    return _campaign(
        "degraded-brownout",
        "control plane dies long enough to force pass-through mode",
        scale, phases, mttr_ceiling=4.0)


def clock_drift(scale: str = "smoke") -> Campaign:
    """A drifting encoder clock stretches heartbeat ticks; acks thin
    out and the encoder flirts with false degradation under mild
    loss."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        Phase("drift", 2 * u, 3 * u, [
            {"kind": "clock_skew", "factor": 4.0, "offset": 0.0},
            {"kind": "loss", "link": "forward", "rate": 0.03},
        ]),
        Phase("resync-clocks", 5 * u, 2 * u),
    ]
    return _campaign(
        "clock-drift",
        "4x heartbeat clock skew on the encoder + mild loss",
        scale, phases)


def dup_reorder_storm(scale: str = "smoke") -> Campaign:
    """Duplication and re-ordering at once: the decode path must stay
    byte-exact when the same wire bytes arrive twice and out of
    order."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, u),
        Phase("storm", u, 4 * u, [
            {"kind": "dup_data", "every": 5},
            {"kind": "reorder_data", "every": 3, "extra_delay": 0.04},
            {"kind": "bursty_loss", "link": "forward",
             "p_good_bad": 0.03, "p_bad_good": 0.4, "loss_bad": 0.4},
        ]),
        Phase("drain", 5 * u, 2 * u),
    ]
    return _campaign(
        "dup-reorder-storm",
        "duplicated + re-ordered + bursty-lost data packets",
        scale, phases)


def brownout_thrash(scale: str = "smoke") -> Campaign:
    """The kitchen sink: memory pressure during a control brownout
    with flapping links — correlated failure the way deployments
    actually fail."""
    u = _unit(scale)
    phases = [
        Phase("warmup", 0.0, 2 * u),
        Phase("everything", 2 * u, 3 * u, [
            {"kind": "control_blackout"},
            {"kind": "memory_pressure", "side": "decoder",
             "offset": 0.5 * u, "fraction": 0.3},
            {"kind": "link_flap", "link": "forward", "down_for": 0.25 * u,
             "flaps": 2, "period": 1.5 * u},
        ]),
        Phase("pick-up-the-pieces", 5 * u, 3 * u),
    ]
    return _campaign(
        "brownout-thrash",
        "control blackout + memory pressure + link flaps at once",
        scale, phases, mttr_ceiling=4.0, max_undecodable_rate=0.4)


#: name -> builder(scale) for every canonical campaign.
CAMPAIGNS = {
    "handover-storm": handover_storm,
    "flaky-backhaul": flaky_backhaul,
    "cache-thrash": cache_thrash,
    "split-brain-resync": split_brain_resync,
    "degraded-brownout": degraded_brownout,
    "clock-drift": clock_drift,
    "dup-reorder-storm": dup_reorder_storm,
    "brownout-thrash": brownout_thrash,
}


def canonical_campaign(name: str, scale: str = "smoke") -> Campaign:
    """Build canonical campaign ``name`` at ``scale`` ("smoke"/"full")."""
    if scale not in ("smoke", "full"):
        raise ValueError(f"unknown scale {scale!r} (smoke|full)")
    try:
        builder = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; try: "
            f"{', '.join(sorted(CAMPAIGNS))}") from None
    return builder(scale)
