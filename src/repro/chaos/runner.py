"""Campaign execution, scorecard assembly, validation and replay.

One campaign *cell* = (campaign, policy, seed): a full simulated
transfer with the campaign's phases armed as scheduled faults, plus a
no-DRE baseline per seed under the same link-level faults.  Cells ride
the sweep engine's :func:`~repro.experiments.sweep.parallel_map`, and
every number in the resulting ``repro.chaos/v1`` scorecard is a pure
function of the campaign spec — no wall clock, no process-global
randomness — so ``replay_report`` can check byte-for-byte equality by
simply re-running.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..app.transfer import FileClient, FileServer
from ..experiments.runner import (FILE_NAME, SERVER_ADDR, Testbed,
                                  build_testbed, collect_result)
from ..experiments.sweep import parallel_map
from ..metrics.collectors import TransferResult
from ..metrics.report import format_table
from ..metrics.spans import spans_rollup
from ..sim.faults import (FaultInjector, GatewayFaultLog, all_of,
                          control_blackout, match_time_window,
                          schedule_asymmetric_eviction, schedule_bursty_loss,
                          schedule_clock_skew, schedule_gateway_restart,
                          schedule_link_flap, schedule_memory_pressure,
                          schedule_partition)
from ..sim.rng import RngRegistry
from ..verify.oracles import InvariantViolation
from ..workload.corpus import corpus_object
from .campaign import CHAOS_POLICIES, CHAOS_SCHEMA, GATEWAY_KINDS, Campaign
from .slo import ORACLES, _round, evaluate_slos, phase_recovery_times


# ---------------------------------------------------------------------------
# arming a campaign onto a testbed
# ---------------------------------------------------------------------------

def _match_every_nth_data(every: int) -> Callable:
    """Match every ``every``-th TCP data segment *evaluated*.

    Stateful like ``match_nth_data`` — compose after a window guard via
    ``all_of`` so the counter only advances inside the phase window.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    counter = {"seen": 0}

    def predicate(pkt, index):
        segment = pkt.tcp
        if segment is None or not segment.data:
            return False
        counter["seen"] += 1
        return counter["seen"] % every == 0

    return predicate


def _link(testbed: Testbed, name: str):
    if name == "forward":
        return testbed.bottleneck_forward
    if name == "reverse":
        return testbed.bottleneck_reverse
    raise ValueError(f"unknown link {name!r} (forward|reverse)")


def _gateway(testbed: Testbed, side: str):
    if side not in ("encoder", "decoder"):
        raise ValueError(f"unknown gateway side {side!r} (encoder|decoder)")
    return getattr(testbed.gateways, side)


def _injector(testbed: Testbed, injectors: Dict[str, FaultInjector],
              direction: str) -> FaultInjector:
    if direction not in injectors:
        injectors[direction] = FaultInjector(_link(testbed, direction))
    return injectors[direction]


@dataclass
class ArmedFaults:
    """Handles onto everything a campaign armed (for the fault digest)."""

    injectors: Dict[str, FaultInjector] = field(default_factory=dict)
    gateway_log: GatewayFaultLog = field(default_factory=GatewayFaultLog)
    bursty_models: List[Any] = field(default_factory=list)

    def digest(self) -> Dict[str, Any]:
        """JSON-safe summary of what actually fired (deterministic)."""
        link = {"dropped": 0, "reordered": 0, "duplicated": 0}
        for injector in self.injectors.values():
            link["dropped"] += len(injector.log.dropped)
            link["reordered"] += len(injector.log.reordered)
            link["duplicated"] += len(injector.log.duplicated)
        return {
            "link": link,
            "bursty_losses": sum(m.losses for m in self.bursty_models),
            "crashes": [_round(t) for t in self.gateway_log.crashes],
            "restarts": [_round(t) for t in self.gateway_log.restarts],
            "evictions": sum(n for _, n in self.gateway_log.evictions),
            "pressure_evictions": sum(
                n for _, n in self.gateway_log.pressure),
            "skew_changes": len(self.gateway_log.skews),
        }


def arm_campaign(campaign: Campaign, testbed: Testbed,
                 seed: int) -> ArmedFaults:
    """Schedule every phase injection of ``campaign`` onto ``testbed``.

    Gateway-side injections are skipped when the testbed has no
    gateways (the no-DRE baseline); all randomness flows through named
    streams of a registry forked from ``seed``, so the fault pattern is
    identical across the DRE run and its baseline and across replays.
    """
    rng = RngRegistry(seed).fork("chaos")
    armed = ArmedFaults()
    has_gateways = testbed.gateways is not None
    for phase in campaign.phases:
        for index, injection in enumerate(phase.injections):
            kind = injection["kind"]
            if kind in GATEWAY_KINDS and not has_gateways:
                continue
            _arm_one(testbed, phase, injection, armed,
                     rng.stream(f"ge:{phase.name}:{index}"))
    return armed


def _arm_one(testbed: Testbed, phase, injection: Dict[str, Any],
             armed: ArmedFaults, stream) -> None:
    sim = testbed.sim
    kind = injection["kind"]
    at = phase.start + injection.get("offset", 0.0)
    window = (phase.start, phase.end)

    if kind == "bursty_loss":
        params = {k: v for k, v in injection.items()
                  if k not in ("kind", "link")}
        armed.bursty_models.append(schedule_bursty_loss(
            sim, _link(testbed, injection.get("link", "forward")),
            window[0], window[1], stream, **params))
    elif kind == "link_flap":
        schedule_link_flap(
            sim, _link(testbed, injection.get("link", "forward")), at,
            injection["down_for"], flaps=injection.get("flaps", 1),
            period=injection.get("period"))
    elif kind == "partition":
        schedule_partition(sim, testbed.bottleneck_forward,
                           testbed.bottleneck_reverse, at,
                           injection["duration"])
    elif kind == "control_blackout":
        both = [_injector(testbed, armed.injectors, "forward"),
                _injector(testbed, armed.injectors, "reverse")]
        control_blackout(both, window[0], window[1],
                         *injection.get("kinds", ()))
    elif kind == "loss":
        link = _link(testbed, injection.get("link", "forward"))
        original = link.loss_rate
        sim.at(window[0], setattr, link, "loss_rate", injection["rate"])
        sim.at(window[1], setattr, link, "loss_rate", original)
    elif kind == "reorder_data":
        _injector(testbed, armed.injectors, "forward").reorder_when(
            all_of(match_time_window(lambda s=sim: s.now, *window),
                   _match_every_nth_data(injection["every"])),
            extra_delay=injection.get("extra_delay", 0.05))
    elif kind == "dup_data":
        _injector(testbed, armed.injectors, "forward").duplicate_when(
            all_of(match_time_window(lambda s=sim: s.now, *window),
                   _match_every_nth_data(injection["every"])),
            delay=injection.get("delay", 0.0))
    elif kind == "restart":
        schedule_gateway_restart(
            sim, _gateway(testbed, injection["side"]), at,
            downtime=injection.get("downtime", 0.0), log=armed.gateway_log)
    elif kind == "evict":
        schedule_asymmetric_eviction(
            sim, _gateway(testbed, injection["side"]), at,
            fraction=injection.get("fraction", 0.5), log=armed.gateway_log)
    elif kind == "memory_pressure":
        schedule_memory_pressure(
            sim, _gateway(testbed, injection["side"]), at,
            fraction=injection.get("fraction", 0.25),
            duration=injection.get("duration"), log=armed.gateway_log)
    elif kind == "clock_skew":
        schedule_clock_skew(
            sim, testbed.gateways.encoder, at, injection["factor"],
            duration=injection.get("duration", phase.end - at),
            log=armed.gateway_log)
    else:  # pragma: no cover - Phase.__post_init__ rejects unknown kinds
        raise ValueError(f"unknown injection kind {kind!r}")


# ---------------------------------------------------------------------------
# one campaign cell (module-level: must pickle for parallel_map)
# ---------------------------------------------------------------------------

def _run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (campaign, policy, seed) cell; everything JSON-safe."""
    campaign = Campaign.from_dict(payload["campaign"])
    config = campaign.config(payload["policy"], payload["seed"],
                             resilience=payload["resilience"])
    # Sampled causal tracing in every cell: a failed SLO record then
    # carries trace ids that replay back to a concrete causal chain.
    # The rollup folded into the scorecard excludes wall times, so
    # replay_report's byte-for-byte comparison still holds.
    config.spans = True
    config.spans_kwargs = {"trace_sample": 16, "max_spans": 4000}
    testbed = build_testbed(config)
    armed = arm_campaign(campaign, testbed, payload["seed"])

    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client = FileClient(testbed.client_stack, testbed.sim)
    on_data = None
    if testbed.verifier is not None:
        testbed.verifier.arm_integrity(data)
        on_data = testbed.verifier.on_deliver

    violation: Optional[Dict[str, Any]] = None
    outcome = client.fetch(
        SERVER_ADDR, FILE_NAME, expected_size=len(data),
        expected_content=(data if config.verify_content or config.verify
                          else None),
        on_data=on_data,
        on_done=lambda _outcome: testbed.sim.stop())
    try:
        testbed.sim.run(until=config.time_limit)
        if testbed.verifier is not None:
            testbed.verifier.finalize(outcome)
    except InvariantViolation as exc:
        # The run is over at the first violated invariant; the partial
        # result still carries stats and telemetry for the scorecard.
        summary = exc.summary()
        violation = {"oracle": summary["oracle"],
                     "message": summary["message"],
                     "trace": summary["context"].get("trace_id"),
                     "span": summary["context"].get("span_id")}

    result = collect_result(testbed, outcome, config)
    return {"result": result.to_dict(), "violation": violation,
            "faults": armed.digest()}


# ---------------------------------------------------------------------------
# the campaign report
# ---------------------------------------------------------------------------

@dataclass
class CampaignReport:
    """Scorecard for one campaign execution (``repro.chaos/v1``)."""

    campaign: Campaign
    policies: Tuple[str, ...]
    resilience: bool
    runs: List[Dict[str, Any]]
    summary: Dict[str, Any]

    @property
    def passed(self) -> bool:
        return bool(self.summary["passed"])

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": CHAOS_SCHEMA,
                "campaign": self.campaign.to_dict(),
                "policies": list(self.policies),
                "resilience": self.resilience,
                "runs": self.runs,
                "summary": self.summary}


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def run_campaign(campaign: Campaign,
                 policies: Tuple[str, ...] = CHAOS_POLICIES,
                 resilience: bool = True,
                 workers: Optional[int] = None) -> CampaignReport:
    """Execute ``campaign`` for every (policy, seed) cell.

    Each seed also gets one no-DRE baseline cell under the same
    link-level faults; the goodput-floor oracle compares against it.
    A run passes when all five SLO oracles pass; the campaign passes
    when every run does.
    """
    spec = campaign.to_dict()
    payloads: List[Dict[str, Any]] = []
    for seed in campaign.seeds:
        payloads.append({"campaign": spec, "policy": None, "seed": seed,
                         "resilience": False})
        for policy in policies:
            payloads.append({"campaign": spec, "policy": policy,
                             "seed": seed, "resilience": resilience})
    outputs = parallel_map(_run_cell, payloads, workers=workers)

    baselines: Dict[int, TransferResult] = {}
    for payload, output in zip(payloads, outputs):
        if payload["policy"] is None:
            baselines[payload["seed"]] = TransferResult.from_dict(
                output["result"])

    fault_phase_ends = [phase.end for phase in campaign.phases
                       if phase.injections]
    runs: List[Dict[str, Any]] = []
    for payload, output in zip(payloads, outputs):
        if payload["policy"] is None:
            continue
        result = TransferResult.from_dict(output["result"])
        mttrs: List[Optional[float]] = []
        if result.telemetry is not None:
            mttrs = phase_recovery_times(result.telemetry, fault_phase_ends)
        baseline = baselines.get(payload["seed"])
        slos = evaluate_slos(campaign, result, baseline, mttrs,
                             output["violation"])
        runs.append(_run_record(payload, result, baseline, slos, mttrs,
                                output))

    return CampaignReport(campaign=campaign, policies=tuple(policies),
                          resilience=resilience, runs=runs,
                          summary=_summarise(runs))


def _trace_hints(doc: Optional[Dict[str, Any]],
                 limit: int = 5) -> List[int]:
    """Trace ids worth replaying for a failed cell (deterministic).

    Picks the first traces containing a watchdog trip, an abandoned
    resync, or an undecodable drop — the spans a §IV post-mortem
    starts from (``repro spans <trace-id>`` on the cell's config).
    """
    if doc is None:
        return []
    hints: List[int] = []
    seen = set()
    for span in doc["spans"]:
        name = span["name"]
        tags = span.get("tags", {})
        interesting = (
            name == "watchdog_trip"
            or (name == "decode" and tags.get("status") == "missing")
            or (name == "resync" and tags.get("outcome") == "gave_up"))
        if interesting and span["trace"] not in seen:
            seen.add(span["trace"])
            hints.append(span["trace"])
            if len(hints) >= limit:
                break
    return hints


def _run_record(payload, result: TransferResult,
                baseline: Optional[TransferResult], slos, mttrs,
                output) -> Dict[str, Any]:
    passed = all(s.passed for s in slos)
    return {
        "policy": payload["policy"],
        "seed": payload["seed"],
        "passed": passed,
        "slos": [s.to_dict() for s in slos],
        "mttrs": [_round(m) for m in mttrs],
        "metrics": {
            "completed": result.completed,
            "download_time": _round(result.download_time),
            "bytes_on_link": result.bytes_on_link,
            "undecodable_drops": result.undecodable_drops,
            "resyncs_completed": result.resyncs_completed,
            "watchdog_trips": result.watchdog_trips,
            "degraded_packets": result.degraded_packets,
            "retransmissions": result.server_retransmissions,
        },
        "baseline": {
            "completed": baseline.completed if baseline else None,
            "download_time": (_round(baseline.download_time)
                              if baseline else None),
        },
        "faults": output["faults"],
        "violation": output["violation"],
        "spans": (spans_rollup(result.spans)
                  if result.spans is not None else None),
        "trace_hints": ([] if passed else _trace_hints(result.spans)),
    }


def _summarise(runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    failures = {oracle: 0 for oracle in ORACLES}
    for run in runs:
        for slo in run["slos"]:
            if not slo["passed"]:
                failures[slo["oracle"]] += 1
    mttr_values = [m for run in runs for m in run["mttrs"] if m is not None]
    return {
        "passed": bool(runs) and all(run["passed"] for run in runs),
        "runs": len(runs),
        "failed_runs": sum(1 for run in runs if not run["passed"]),
        "oracle_failures": failures,
        "mttr": {
            "p50": _round(_percentile(mttr_values, 50)),
            "p90": _round(_percentile(mttr_values, 90)),
            "max": _round(max(mttr_values) if mttr_values else None),
        },
    }


# ---------------------------------------------------------------------------
# validation and replay
# ---------------------------------------------------------------------------

def validate_chaos_report(doc: Dict[str, Any]) -> None:
    """Structural validation of a ``repro.chaos/v1`` document.

    Raises ``ValueError`` on the first problem; CI runs this over every
    scorecard the chaos-smoke job emits.
    """
    if not isinstance(doc, dict):
        raise ValueError("chaos report must be a JSON object")
    if doc.get("schema") != CHAOS_SCHEMA:
        raise ValueError(
            f"schema mismatch: {doc.get('schema')!r} != {CHAOS_SCHEMA!r}")
    for key in ("campaign", "policies", "resilience", "runs", "summary"):
        if key not in doc:
            raise ValueError(f"missing top-level key {key!r}")
    Campaign.from_dict(doc["campaign"])      # raises on a malformed spec
    if not isinstance(doc["runs"], list) or not doc["runs"]:
        raise ValueError("runs must be a non-empty list")
    for position, run in enumerate(doc["runs"]):
        where = f"runs[{position}]"
        for key in ("policy", "seed", "passed", "slos", "metrics"):
            if key not in run:
                raise ValueError(f"{where}: missing {key!r}")
        oracles = [slo.get("oracle") for slo in run["slos"]]
        if oracles != list(ORACLES):
            raise ValueError(f"{where}: oracle set {oracles} != {ORACLES}")
        if run["passed"] != all(slo["passed"] for slo in run["slos"]):
            raise ValueError(f"{where}: passed flag disagrees with slos")
    summary = doc["summary"]
    failed = sum(1 for run in doc["runs"] if not run["passed"])
    if summary.get("failed_runs") != failed:
        raise ValueError(
            f"summary.failed_runs {summary.get('failed_runs')} != {failed}")
    if summary.get("passed") != (failed == 0):
        raise ValueError("summary.passed disagrees with per-run verdicts")


def replay_report(doc: Dict[str, Any],
                  workers: Optional[int] = None
                  ) -> Tuple[CampaignReport, bool]:
    """Re-run the campaign recorded in ``doc`` and compare scorecards.

    The spec is fully seeded and the report contains no wall-clock
    state, so a faithful replay reproduces the document byte-for-byte
    (after JSON normalisation).  Returns ``(fresh_report, matches)``.
    """
    validate_chaos_report(doc)
    campaign = Campaign.from_dict(doc["campaign"])
    report = run_campaign(campaign, policies=tuple(doc["policies"]),
                          resilience=bool(doc["resilience"]),
                          workers=workers)
    fresh = json.loads(json.dumps(report.to_dict(), sort_keys=True))
    recorded = json.loads(json.dumps(doc, sort_keys=True))
    return report, fresh == recorded


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_ORACLE_HEADERS = {
    "byte_integrity": "integrity",
    "goodput_floor": "goodput",
    "undecodable_rate": "undecodable",
    "mttr_ceiling": "mttr",
    "no_permanent_degradation": "end_state",
}


def _mark(slo: Dict[str, Any]) -> str:
    base = "ok" if slo["passed"] else "FAIL"
    if slo.get("value") is not None:
        return f"{base} {slo['value']:.2f}"
    return base


def format_scorecard(report: CampaignReport) -> str:
    """The resilience scorecard table for one campaign report."""
    campaign = report.campaign
    headers = (["policy", "seed", "verdict"]
               + [_ORACLE_HEADERS[oracle] for oracle in ORACLES])
    rows = []
    for run in report.runs:
        by_name = {slo["oracle"]: slo for slo in run["slos"]}
        rows.append([run["policy"], run["seed"],
                     "PASS" if run["passed"] else "FAIL"]
                    + [_mark(by_name[oracle]) for oracle in ORACLES])
    title = (f"chaos campaign {campaign.name!r} ({campaign.scale}): "
             f"{campaign.description}")
    lines = [format_table(title, headers, rows)]
    summary = report.summary
    mttr = summary["mttr"]
    if mttr["max"] is not None:
        lines.append(
            f"MTTR p50={mttr['p50']:.2f}s p90={mttr['p90']:.2f}s "
            f"max={mttr['max']:.2f}s")
    else:
        lines.append("MTTR: no recovery windows measured")
    verdict = "PASS" if summary["passed"] else "FAIL"
    lines.append(f"campaign verdict: {verdict} "
                 f"({summary['runs'] - summary['failed_runs']}/"
                 f"{summary['runs']} runs passed)")
    return "\n".join(lines)
