"""Steady-state (SLO) oracles for chaos campaigns.

Each oracle turns one steady-state hypothesis — "the system keeps its
service level under and after this fault regime" — into a pass/fail
verdict with the measured value and threshold attached.  They are
layered on what the repo already measures: the telemetry gauge series
(PR 3) for recovery timing, the verification harness (PR 4) for byte
integrity, and the paired no-DRE baseline for the goodput floor.

Oracles
-------
``byte_integrity``
    The client's bytes match the source object and no
    ``InvariantViolation`` fired.  Always armed; never waived.
``goodput_floor``
    The transfer completes, and no slower than
    ``goodput_delay_ratio`` x the no-DRE baseline run under the *same*
    link faults (gateway faults don't apply to the baseline — DRE may
    pay for its statefulness, but only this much).
``undecodable_rate``
    Decoder drops (undecodable / epoch-gated / mid-resync) stay under
    ``max_undecodable_rate`` of the data packets the encoder emitted.
``mttr_ceiling``
    After each phase ends, the data path recovers — decoder decoding
    again with no resync in flight and no degraded encoder — within
    ``mttr_ceiling`` seconds (measured on the sampled gauge series).
``no_permanent_degradation``
    At end of run the encoder is not stuck in pass-through and the
    decoder is not stuck resyncing: chaos may bend the service level,
    it must not leave a dent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..metrics.collectors import TransferResult
from .campaign import Campaign

#: Oracle names in report order.
ORACLES = ("byte_integrity", "goodput_floor", "undecodable_rate",
           "mttr_ceiling", "no_permanent_degradation")


@dataclass
class SLOResult:
    """One oracle's verdict on one campaign run."""

    oracle: str
    passed: bool
    value: Optional[float]
    threshold: Optional[float]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "passed": self.passed,
                "value": _round(self.value),
                "threshold": self.threshold, "detail": self.detail}


def _round(value: Optional[float]) -> Optional[float]:
    """Stable JSON scalar: bounded precision, nan/inf as None."""
    if value is None or not math.isfinite(value):
        return None
    return round(value, 6)


# ---------------------------------------------------------------------------
# MTTR from the sampled gauge series
# ---------------------------------------------------------------------------

def _series(telemetry: Dict[str, Any], key: str) -> Optional[List]:
    return telemetry["sampler"]["series"].get(key)


def phase_recovery_times(telemetry: Dict[str, Any],
                         phase_ends: List[float]) -> List[Optional[float]]:
    """Seconds from each phase end to a recovered data path.

    Recovery at sample *t* means: the decoder decoded at least one more
    packet than it had at the phase end (data is moving again), no
    resync is in flight, and the encoder is not degraded.  ``None``
    marks "nothing to recover" — the transfer was already complete (or
    the phase never started) before the phase end.  A run that ends
    without recovering scores infinity, which fails any ceiling.
    """
    times = telemetry["sampler"]["times"]
    decoded = _series(telemetry, "gw.decoded_ok{gw=decoder}")
    resyncing = _series(telemetry, "resilience.resyncing{gw=decoder}")
    degraded = _series(telemetry, "resilience.degraded{gw=encoder}")
    results: List[Optional[float]] = []
    for phase_end in phase_ends:
        results.append(_recovery_after(times, decoded, resyncing, degraded,
                                       phase_end))
    return results


def _recovery_after(times: List[float], decoded: Optional[List],
                    resyncing: Optional[List], degraded: Optional[List],
                    phase_end: float) -> Optional[float]:
    if not times or times[-1] <= phase_end:
        return None                      # run over before the phase ended
    # Decoded count as of the phase end (last sample at or before it).
    base = None
    for index, t in enumerate(times):
        if t > phase_end:
            break
        base = index
    base_decoded = _at(decoded, base, default=0.0)
    for index, t in enumerate(times):
        if t <= phase_end:
            continue
        if _at(resyncing, index, default=0.0):
            continue
        if _at(degraded, index, default=0.0):
            continue
        if _at(decoded, index, default=0.0) > base_decoded:
            return t - phase_end
    # The run kept going but the path never came back: unrecovered.
    # Unless the transfer had already delivered everything — then there
    # was simply no traffic left to prove recovery with; the
    # no_permanent_degradation oracle covers the end state.
    return math.inf


def _at(series: Optional[List], index: Optional[int],
        default: float) -> float:
    if series is None or index is None:
        return default
    value = series[index]
    if value is None:
        return default
    value = float(value)
    if math.isnan(value):
        return default
    return value


# ---------------------------------------------------------------------------
# the oracle battery
# ---------------------------------------------------------------------------

def evaluate_slos(campaign: Campaign, result: TransferResult,
                  baseline: Optional[TransferResult],
                  mttrs: List[Optional[float]],
                  violation: Optional[Dict[str, Any]]) -> List[SLOResult]:
    """Run every oracle against one campaign run.

    ``baseline`` is the no-DRE run under the same link faults (None
    when it could not complete — the floor is then just "complete at
    all").  ``mttrs`` are the per-phase recovery times from
    :func:`phase_recovery_times`; ``violation`` is the
    ``InvariantViolation.summary()`` dict when the harness tripped.
    """
    slo = campaign.slo
    results = [
        _byte_integrity(result, violation),
        _goodput_floor(slo, result, baseline),
        _undecodable_rate(slo, result),
        _mttr_ceiling(slo, mttrs),
        _no_permanent_degradation(result),
    ]
    return results


def _byte_integrity(result: TransferResult,
                    violation: Optional[Dict[str, Any]]) -> SLOResult:
    if violation is not None:
        return SLOResult(
            "byte_integrity", False, None, None,
            f"invariant violation [{violation.get('oracle')}]: "
            f"{str(violation.get('message'))[:120]}")
    return SLOResult("byte_integrity", True, None, None,
                     "no invariant violations")


def _goodput_floor(slo: Dict[str, float], result: TransferResult,
                   baseline: Optional[TransferResult]) -> SLOResult:
    ceiling = slo.get("goodput_delay_ratio", 4.0)
    if not result.completed:
        return SLOResult(
            "goodput_floor", False, None, ceiling,
            f"transfer did not complete "
            f"({result.fraction_retrieved:.0%} retrieved, "
            f"{'stalled' if result.stalled else 'time limit'})")
    if (baseline is None or not baseline.completed
            or not baseline.download_time or not result.download_time):
        return SLOResult("goodput_floor", True, None, ceiling,
                         "completed; no comparable baseline")
    ratio = result.download_time / baseline.download_time
    return SLOResult(
        "goodput_floor", ratio <= ceiling, ratio, ceiling,
        f"download {result.download_time:.2f}s vs baseline "
        f"{baseline.download_time:.2f}s")


def _undecodable_rate(slo: Dict[str, float],
                      result: TransferResult) -> SLOResult:
    ceiling = slo.get("max_undecodable_rate", 0.3)
    offered = (result.encoder_stats.data_packets
               if result.encoder_stats is not None else 0)
    if offered == 0:
        return SLOResult("undecodable_rate", True, None, ceiling,
                         "no data packets offered")
    rate = result.undecodable_drops / offered
    return SLOResult(
        "undecodable_rate", rate <= ceiling, rate, ceiling,
        f"{result.undecodable_drops} decoder drops / {offered} data "
        f"packets")


def _mttr_ceiling(slo: Dict[str, float],
                  mttrs: List[Optional[float]]) -> SLOResult:
    ceiling = slo.get("mttr_ceiling", 3.0)
    measured = [m for m in mttrs if m is not None]
    if not measured:
        return SLOResult("mttr_ceiling", True, None, ceiling,
                         "no recovery windows to measure")
    worst = max(measured)
    detail = ("phase recoveries: "
              + ", ".join("unrecovered" if math.isinf(m) else f"{m:.2f}s"
                          for m in measured))
    return SLOResult("mttr_ceiling", worst <= ceiling,
                     None if math.isinf(worst) else worst, ceiling, detail)


def _no_permanent_degradation(result: TransferResult) -> SLOResult:
    problems = []
    if not result.completed:
        problems.append("transfer never completed")
    enc = result.encoder_resilience
    if enc is not None and enc.degraded:
        problems.append("encoder still in pass-through mode")
    telemetry = result.telemetry
    if telemetry is not None:
        final = telemetry.get("final_gauges", {})
        if final.get("resilience.resyncing{gw=decoder}"):
            problems.append("decoder still resyncing")
    if problems:
        return SLOResult("no_permanent_degradation", False, None, None,
                         "; ".join(problems))
    return SLOResult("no_permanent_degradation", True, None, None,
                     "clean end state")
