"""Experiment harness: configs, runners, and paper scenarios."""

from .config import ExperimentConfig
from .mobility import MobilityConfig, MobilityResult, run_mobility
from .multiflow import (MultiFlowResult, MultiFlowSetResult,
                        run_concurrent_fetches, run_parallel_flows,
                        run_sequential_fetches)
from .runner import Testbed, build_testbed, run_paired, run_transfer
from .sweep import (CellResult, SweepResult, SweepSpec, config_hash,
                    parallel_map, run_sweep, write_bench_json)

__all__ = [
    "ExperimentConfig",
    "CellResult",
    "SweepResult",
    "SweepSpec",
    "config_hash",
    "parallel_map",
    "run_sweep",
    "write_bench_json",
    "MobilityConfig",
    "MobilityResult",
    "run_mobility",
    "MultiFlowResult",
    "MultiFlowSetResult",
    "run_concurrent_fetches",
    "run_parallel_flows",
    "run_sequential_fetches",
    "Testbed",
    "build_testbed",
    "run_paired",
    "run_transfer",
]
