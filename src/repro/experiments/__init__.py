"""Experiment harness: configs, runners, and paper scenarios."""

from .config import ExperimentConfig
from .mobility import MobilityConfig, MobilityResult, run_mobility
from .multiflow import (MultiFlowResult, run_concurrent_fetches,
                        run_sequential_fetches)
from .runner import Testbed, build_testbed, run_paired, run_transfer

__all__ = [
    "ExperimentConfig",
    "MobilityConfig",
    "MobilityResult",
    "run_mobility",
    "MultiFlowResult",
    "run_concurrent_fetches",
    "run_sequential_fetches",
    "Testbed",
    "build_testbed",
    "run_paired",
    "run_transfer",
]
