"""Experiment configuration.

One :class:`ExperimentConfig` fully describes a transfer run: workload,
encoding policy, link impairments, TCP tunables and seeds.  Defaults
follow the paper's testbed (§III-C): a 1 MB/s traffic-shaped link whose
loss rate is swept 0–20 %, retrieving a ~574 KB object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..net.tcp import TCPConfig


@dataclass
class ExperimentConfig:
    """Everything needed to run (and re-run) one transfer."""

    # -- workload
    corpus: str = "file1"
    file_size: int = 0              # 0 = corpus default
    corpus_seed: int = 3

    # -- byte caching
    policy: Optional[str] = "cache_flush"   # None disables DRE entirely
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    fingerprint_window: int = 16            # w of §III-B
    fingerprint_zero_bits: int = 4          # k of §III-B
    fingerprint_kind: str = "poly"
    fingerprint_selection: str = "value"    # "value" (§III-A) | "winnowing"
    cache_bytes: int = 16 * 1024 * 1024
    cache_max_packets: Optional[int] = None
    cache_eviction: str = "fifo"            # "fifo" (paper) | "lru"
    #: > 0 selects the sharded shared cache (repro.core.shardcache):
    #: N fingerprint-routed shards with per-shard byte budgets, the
    #: serving mode's population cache.  0 keeps the paper's single
    #: per-transfer ByteCache.
    cache_shards: int = 0
    #: Probabilistic admission for the sharded cache: fraction of
    #: payloads admitted, decided by a content-keyed coin so the
    #: encoder and decoder always agree.  1.0 = admit everything.
    cache_admission: float = 1.0

    # -- gateway resilience layer (epochs / resync / heartbeats; see
    #    repro.gateway.resilience).  Off by default: the paper's runs
    #    model cooperative gateways that never crash.
    resilience: bool = False
    resilience_kwargs: Dict[str, Any] = field(default_factory=dict)

    # -- the constrained (wireless) segment, Fig. 3
    bandwidth: float = 1_000_000.0          # 1 MB/s traffic shaper
    bottleneck_delay: float = 0.0025        # one-way propagation (s)
    loss_rate: float = 0.0                  # swept 0–20 % in the paper
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    reverse_loss_rate: float = 0.0          # ACK-path loss (off by default)

    # -- LAN hops between hosts and gateways
    lan_bandwidth: float = 125_000_000.0    # 1 Gb/s
    lan_delay: float = 0.0005

    # -- TCP endpoint tunables
    tcp_mss: int = 1460
    tcp_min_rto: float = 0.2
    tcp_max_rto: float = 8.0
    # Linux's tcp_retries2-style give-up threshold.  High enough that
    # the bounded undecodable chains of k-distance (at most k failed
    # attempts per chain, §V-C) ride out; only a genuine livelock (the
    # naive policy's circular dependency) exhausts it.
    tcp_max_retries: int = 20
    # 32 KB (~22 segments) keeps the in-flight window — and therefore
    # the span of packets a single loss can take down via encoding
    # dependencies (Fig. 8) — at the scale of the paper's testbed.
    tcp_rwnd: int = 32 * 1024
    tcp_congestion: str = "reno"          # "reno" | "cubic" (Linux-2012 era)

    # -- run control
    seed: int = 0
    time_limit: float = 600.0
    verify_content: bool = False
    trace: bool = False
    #: Collect per-stage hot-path timings (repro.metrics.profiling)
    #: into TransferResult.profile.  Near-zero cost when False.
    profile: bool = False
    #: Record time-resolved run telemetry (repro.metrics.telemetry):
    #: cwnd/RTO/in-flight, cache occupancy, link queues, perceived loss
    #: sampled on a sim-time tick, plus a flight recorder dumped on
    #: stall/watchdog/time-limit.  The telemetry/v1 export lands in
    #: TransferResult.telemetry.  When False every instrumented layer
    #: pays exactly one None-check (bench_hotpath budget).
    telemetry: bool = False
    #: TelemetryConfig field overrides (sample_interval, max_samples,
    #: flight_ring, flight_flows, dump_events).
    telemetry_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Record causal span traces (repro.metrics.spans): one trace per
    #: sampled data packet, spans across encode -> link transit ->
    #: decode with cross-trace encoded_against/retransmit links, plus
    #: control-plane traces for resyncs and watchdog trips.  The
    #: spans/v1 export lands in TransferResult.spans.  When False every
    #: hook site pays exactly one None-check (bench_hotpath budget).
    spans: bool = False
    #: SpanRecorder overrides (trace_sample=1/N flows, max_spans).
    spans_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Arm the verification oracles (repro.verify.oracles): end-to-end
    #: byte integrity, quiescent-point cache coherence, and the
    #: policy's declared safety properties, each raising a structured
    #: InvariantViolation (with flight-recorder dump) the moment it is
    #: broken.  When False every hook site pays exactly one None-check
    #: (the bench_hotpath budget, like profile/telemetry).
    verify: bool = False
    #: VerificationHarness overrides (coherence_interval).
    verify_kwargs: Dict[str, Any] = field(default_factory=dict)

    def tcp_config(self) -> TCPConfig:
        return TCPConfig(mss=self.tcp_mss, rwnd=self.tcp_rwnd,
                         min_rto=self.tcp_min_rto, max_rto=self.tcp_max_rto,
                         max_retries=self.tcp_max_retries,
                         congestion=self.tcp_congestion)

    def with_updates(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced (sweeps use this heavily)."""
        from dataclasses import replace

        return replace(self, **kwargs)

    @property
    def dre_enabled(self) -> bool:
        return self.policy is not None
