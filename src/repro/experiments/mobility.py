"""The §II mobility experiment: handoff during a transfer.

Builds the two-path topology of the paper's motivation section:

* **path A** ("cellular"): client — G1 — 1 MB/s lossy segment — G2 —
  server, where G1/G2 are byte-caching gateways in one of two modes:
  IP-level (:mod:`repro.gateway.middlebox`) or transparent split-TCP
  (:mod:`repro.gateway.tcp_proxy`);
* **path B** ("WiFi"): client — direct segment — server, with no
  gateways.

Mid-transfer the client *hands off* from path A to path B (its address
is preserved, as Mobile IP would).  §II's claims, reproduced by
:func:`run_mobility`:

* with **TCP-level** gateways the transfer stalls: the client's ACKs
  now reach the real server inside a connection whose sequence numbers
  belong to G1's split connection (Fig. 1, t5);
* with **IP-level** gateways TCP stays end-to-end, the client's ACK
  from the new path tells the server exactly what was received, and the
  download resumes (§II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app.transfer import FileClient, FileServer, TransferOutcome
from ..gateway.pair import GatewayPair
from ..gateway.tcp_proxy import create_proxy_pair
from ..net.tcp import TCPConfig, TCPStack
from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.node import Host, Node
from ..sim.rng import RngRegistry
from ..workload.corpus import corpus_object

CLIENT_ADDR = "10.0.1.1"
SERVER_ADDR = "10.0.2.1"
FILE_NAME = "object"


@dataclass
class MobilityConfig:
    """Parameters of a handoff run."""

    mode: str = "ip-dre"            # "ip-dre" | "tcp-proxy" | "none"
    policy: str = "cache_flush"     # DRE policy (both modes)
    handoff_at: float = 0.25        # seconds into the transfer
    corpus: str = "file1"
    file_size: int = 0
    corpus_seed: int = 3
    bandwidth: float = 1_000_000.0
    path_delay: float = 0.0025
    loss_rate_a: float = 0.01
    loss_rate_b: float = 0.0
    seed: int = 11
    time_limit: float = 120.0
    tcp_max_retries: int = 8
    tcp_max_rto: float = 2.0


@dataclass
class MobilityResult:
    """Outcome of a handoff run."""

    outcome: TransferOutcome
    mode: str
    handoff_at: float
    bytes_path_a: int = 0
    bytes_path_b: int = 0
    sim_time: float = 0.0

    @property
    def completed(self) -> bool:
        return self.outcome.completed

    @property
    def survived_handoff(self) -> bool:
        return self.completed and self.outcome.finished_at >= self.handoff_at


def run_mobility(config: MobilityConfig) -> MobilityResult:
    """Run one transfer with a mid-stream path A → path B handoff."""
    sim = Simulator()
    rng = RngRegistry(config.seed)
    tcp_config = TCPConfig(max_retries=config.tcp_max_retries,
                           max_rto=config.tcp_max_rto)

    client = Host(sim, "client", CLIENT_ADDR)
    server = Host(sim, "server", SERVER_ADDR)
    client_stack = TCPStack(sim, client, tcp_config)
    server_stack = TCPStack(sim, server, tcp_config)

    # ---- path A: client - G1 - bottleneck - G2 - server
    lan_c_up = Link(sim, 1e9, 0.0005, rng=rng.stream("lan_c_up"))
    lan_c_down = Link(sim, 1e9, 0.0005, rng=rng.stream("lan_c_down"))
    bott_up = Link(sim, config.bandwidth, config.path_delay,
                   rng=rng.stream("bott_up"))
    bott_down = Link(sim, config.bandwidth, config.path_delay,
                     loss_rate=config.loss_rate_a,
                     rng=rng.stream("bott_down"))
    lan_s_up = Link(sim, 1e9, 0.0005, rng=rng.stream("lan_s_up"))
    lan_s_down = Link(sim, 1e9, 0.0005, rng=rng.stream("lan_s_down"))

    if config.mode == "ip-dre":
        gateways = GatewayPair.create(sim, policy=config.policy,
                                      data_dst=CLIENT_ADDR)
        g1: Node = gateways.decoder     # client side
        g2: Node = gateways.encoder     # server side
    elif config.mode == "tcp-proxy":
        g1, g2 = create_proxy_pair(sim, CLIENT_ADDR, SERVER_ADDR,
                                   policy=config.policy,
                                   tcp_config=tcp_config)
    elif config.mode == "none":
        g1, g2 = Node(sim, "a1"), Node(sim, "a2")
    else:
        raise ValueError(f"unknown mode {config.mode!r}")

    lan_c_up.connect(g1.receive)
    bott_up.connect(g2.receive)
    lan_s_up.connect(server.receive)
    lan_s_down.connect(g2.receive)
    bott_down.connect(g1.receive)
    lan_c_down.connect(client.receive)

    client.set_default_route(lan_c_up)
    server.set_default_route(lan_s_down)
    if config.mode == "tcp-proxy":
        g1.attach_routes(toward_client=lan_c_down, toward_server=bott_up,
                         peer_address=g2.address, peer_side="server")
        g2.attach_routes(toward_client=bott_down, toward_server=lan_s_up,
                         peer_address=g1.address, peer_side="client")
        g1.connect_relay(g2.address)
    else:
        g1.add_route(CLIENT_ADDR, lan_c_down)
        g1.set_default_route(bott_up)
        g2.add_route(CLIENT_ADDR, bott_down)
        g2.set_default_route(lan_s_up)
        if config.mode == "ip-dre":
            g2.add_route(g1.address, bott_down)
            g1.add_route(g2.address, bott_up)

    # ---- path B: client - direct segment - server (no gateways)
    path_b_up = Link(sim, config.bandwidth, config.path_delay,
                     loss_rate=config.loss_rate_b,
                     rng=rng.stream("path_b_up"))
    path_b_down = Link(sim, config.bandwidth, config.path_delay,
                       loss_rate=config.loss_rate_b,
                       rng=rng.stream("path_b_down"))
    path_b_up.connect(server.receive)
    path_b_down.connect(client.receive)

    # ---- application
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(server_stack, {FILE_NAME: data})
    client_app = FileClient(client_stack, sim)
    outcome = client_app.fetch(SERVER_ADDR, FILE_NAME,
                               expected_size=len(data),
                               expected_content=data,
                               on_done=lambda _o: sim.stop())

    # ---- the handoff: both endpoints re-route (Mobile IP keeps the
    # client's address; the server's path to it follows the binding),
    # and the old access link goes dark — anything in flight on path A
    # towards the client is lost, as §II-B describes.
    def handoff() -> None:
        client.set_default_route(path_b_up)
        server.add_route(CLIENT_ADDR, path_b_down)
        lan_c_down.connect(lambda pkt: None)   # radio detached

    sim.after(config.handoff_at, handoff)
    sim.run(until=config.time_limit)

    return MobilityResult(
        outcome=outcome, mode=config.mode, handoff_at=config.handoff_at,
        bytes_path_a=bott_down.stats.bytes_offered,
        bytes_path_b=path_b_down.stats.bytes_offered,
        sim_time=sim.now)
