"""UDP streaming experiments (§V-C).

k-distance "applies to not only TCP but also UDP traffic": there are no
retransmissions, so a lost packet simply costs every not-yet-referenced
dependent frame — compression and frame delivery trade off directly
against the reference spacing k.  This module runs a media-like frame
stream across the lossy segment and measures that trade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.fingerprint import FingerprintScheme
from ..gateway.pair import GatewayPair
from ..net.udp import UDPStack
from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.node import Host, Node
from ..sim.rng import RngRegistry

CLIENT_ADDR = "10.0.1.1"
SERVER_ADDR = "10.0.2.1"


@dataclass
class StreamingConfig:
    """Parameters of a UDP streaming run."""

    policy: Optional[str] = "k_distance"   # None disables DRE
    k: int = 8
    frame_count: int = 400
    frame_size: int = 1200
    frame_interval: float = 0.0015
    overlap_fraction: float = 0.5     # how much of each frame repeats
    bandwidth: float = 1_000_000.0
    delay: float = 0.0025
    loss_rate: float = 0.0
    seed: int = 11
    corpus_seed: int = 3


@dataclass
class StreamingResult:
    """What a streaming run measured."""

    frames_sent: int
    frames_delivered: int
    bytes_on_link: int
    undecodable: int
    channel_lost: int

    @property
    def delivery_fraction(self) -> float:
        if self.frames_sent == 0:
            return 1.0
        return self.frames_delivered / self.frames_sent

    @property
    def goodput_fraction(self) -> float:
        return self.delivery_fraction


def make_frames(config: StreamingConfig) -> List[bytes]:
    """Media-like frames: container header + inter-frame redundancy.

    Each frame half-overlaps its predecessor (slowly changing content),
    chaining frame N to frame N-1 — the dependency structure reference
    packets exist to bound.
    """
    rng = random.Random(config.corpus_seed)
    header = rng.randbytes(32)
    frames: List[bytes] = []
    previous = rng.randbytes(config.frame_size)
    overlap = int(config.frame_size * config.overlap_fraction)
    for index in range(config.frame_count):
        fresh = rng.randbytes(max(0, config.frame_size - overlap - 36))
        frame = (header + index.to_bytes(4, "big")
                 + previous[-overlap:] + fresh)[: config.frame_size]
        frames.append(frame)
        previous = frame
    return frames


def run_streaming(config: StreamingConfig) -> StreamingResult:
    """Stream frames server→client across the lossy segment."""
    sim = Simulator()
    rng = RngRegistry(config.seed)
    server = Host(sim, "server", SERVER_ADDR)
    client = Host(sim, "client", CLIENT_ADDR)

    if config.policy is None:
        enc_node: Node = Node(sim, "n1")
        dec_node: Node = Node(sim, "n2")
        gateways = None
    else:
        kwargs = {"k": config.k} if config.policy == "k_distance" else {}
        gateways = GatewayPair.create(sim, policy=config.policy,
                                      scheme=FingerprintScheme(),
                                      data_dst=CLIENT_ADDR, **kwargs)
        enc_node, dec_node = gateways.encoder, gateways.decoder

    up = Link(sim, 1e9, 0.0005, rng=rng.stream("up"))
    bottleneck = Link(sim, config.bandwidth, config.delay,
                      loss_rate=config.loss_rate,
                      rng=rng.stream("bottleneck"))
    down = Link(sim, 1e9, 0.0005, rng=rng.stream("down"))
    up.connect(enc_node.receive)
    bottleneck.connect(dec_node.receive)
    down.connect(client.receive)
    server.set_default_route(up)
    enc_node.set_default_route(bottleneck)
    dec_node.set_default_route(down)

    server_udp = UDPStack(sim, server)
    client_udp = UDPStack(sim, client)
    received: List[bytes] = []
    sock = client_udp.socket(9000)
    sock.on_receive = lambda src, port, data: received.append(data)
    sender = server_udp.socket(9001)

    frames = make_frames(config)
    for index, frame in enumerate(frames):
        sim.at(index * config.frame_interval, sender.sendto, frame,
               CLIENT_ADDR, 9000)
    sim.run(until=config.frame_count * config.frame_interval + 5.0)

    return StreamingResult(
        frames_sent=len(frames),
        frames_delivered=len(received),
        bytes_on_link=bottleneck.stats.bytes_offered,
        undecodable=(gateways.decoder.stats.dropped_total
                     if gateways else 0),
        channel_lost=bottleneck.stats.packets_lost,
    )
