"""End-to-end experiment runner.

Builds the Fig. 3 topology::

    server ──LAN── encoder-gw ══1 MB/s lossy══ decoder-gw ──LAN── client

runs one file retrieval over it, and returns a
:class:`~repro.metrics.collectors.TransferResult`.  With
``config.policy is None`` the gateways are replaced by plain forwarding
nodes, producing the no-DRE baseline every ratio in Figs. 10–12 is
normalised against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..app.transfer import FileClient, FileServer
from ..core.fingerprint import FingerprintScheme
from ..gateway.pair import GatewayPair
from ..gateway.resilience import ResilienceConfig
from ..metrics.collectors import TransferResult
from ..metrics.profiling import StageProfiler, profiler_if
from ..metrics.spans import SpanRecorder, spans_if
from ..metrics.telemetry import FlightRecorder, Telemetry, telemetry_if
from ..net.tcp import TCPStack
from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.node import Host, Node
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from ..workload.corpus import corpus_object
from .config import ExperimentConfig

CLIENT_ADDR = "10.0.1.1"
SERVER_ADDR = "10.0.2.1"
ENCODER_ADDR = "10.255.0.1"
DECODER_ADDR = "10.255.0.2"
FILE_NAME = "object"


@dataclass
class Testbed:
    """A fully wired topology, exposed for tests and examples."""

    sim: Simulator
    client: Host
    server: Host
    client_stack: TCPStack
    server_stack: TCPStack
    bottleneck_forward: Link
    bottleneck_reverse: Link
    gateways: Optional[GatewayPair]
    tracer: Tracer
    profiler: Optional[StageProfiler] = None
    telemetry: Optional[Telemetry] = None
    #: repro.metrics.spans.SpanRecorder when config.spans.
    spans: Optional[SpanRecorder] = None
    #: repro.verify.oracles.VerificationHarness when config.verify.
    verifier: object = None


def build_testbed(config: ExperimentConfig,
                  tracer: Optional[Tracer] = None) -> Testbed:
    """Construct the simulator, hosts, links and (optionally) gateways."""
    profiler = profiler_if(config.profile)
    sim = Simulator(profiler=profiler)
    rng = RngRegistry(config.seed)
    if tracer is None:
        tracer = Tracer(enabled=config.trace)
    tracer.bind_clock(lambda: sim.now)
    telemetry = telemetry_if(config.telemetry, sim,
                             **config.telemetry_kwargs)
    span_recorder = spans_if(config.spans, sim, **config.spans_kwargs)
    if telemetry is not None:
        # Existing tracer.emit call sites feed the flight recorder even
        # while full tracing stays off.
        tracer.sink = telemetry.trace_sink()

    verifier = None
    if config.verify and config.dre_enabled:
        # Imported here (not at module top): repro.verify.oracles is
        # import-independent of this module, but keeping the runner free
        # of an eager verify import lets repro.verify.{differential,
        # fuzz} import the runner without a cycle.
        from ..verify.oracles import VerificationHarness

        if telemetry is not None:
            recorder = telemetry.recorder
        else:
            # Standalone flight recorder so a violation still carries
            # the recent event history even with telemetry off.
            recorder = FlightRecorder()
            tracer.sink = recorder.record
        recorder.spans = span_recorder
        verifier = VerificationHarness(sim, recorder=recorder,
                                       **config.verify_kwargs)
        verifier.spans = span_recorder
        if telemetry is not None:
            telemetry.register_verifier(verifier)
    if telemetry is not None and span_recorder is not None:
        # Flight-recorder rows resolve packet ids back to trace/span
        # ids, so a post-mortem dump points into the span export.
        telemetry.recorder.spans = span_recorder

    client = Host(sim, "client", CLIENT_ADDR, tracer)
    server = Host(sim, "server", SERVER_ADDR, tracer)

    if config.dre_enabled:
        scheme = FingerprintScheme(window=config.fingerprint_window,
                                   zero_bits=config.fingerprint_zero_bits,
                                   kind=config.fingerprint_kind,
                                   selection=config.fingerprint_selection)
        gateways: Optional[GatewayPair] = GatewayPair.create(
            sim, policy=config.policy, scheme=scheme,
            data_dst=CLIENT_ADDR,
            cache_bytes=config.cache_bytes,
            cache_max_packets=config.cache_max_packets,
            cache_eviction=config.cache_eviction,
            cache_shards=config.cache_shards,
            cache_admission=config.cache_admission,
            encoder_address=ENCODER_ADDR, decoder_address=DECODER_ADDR,
            tracer=tracer,
            resilience=(ResilienceConfig(**config.resilience_kwargs)
                        if config.resilience else None),
            telemetry=telemetry,
            verifier=verifier,
            spans=span_recorder,
            **config.policy_kwargs)
        enc_node: Node = gateways.encoder
        dec_node: Node = gateways.decoder
        if profiler is not None:
            gateways.encoder.encoder.profiler = profiler
            gateways.decoder.decoder.profiler = profiler
    else:
        gateways = None
        enc_node = Node(sim, "fwd-node-1", tracer)
        dec_node = Node(sim, "fwd-node-2", tracer)

    # server <-> encoder LAN
    lan_s_fwd = Link(sim, config.lan_bandwidth, config.lan_delay,
                     rng=rng.stream("lan_s_fwd"), name="lan-server-fwd")
    lan_s_rev = Link(sim, config.lan_bandwidth, config.lan_delay,
                     rng=rng.stream("lan_s_rev"), name="lan-server-rev")
    # encoder <-> decoder: the constrained wireless segment
    bott_fwd = Link(sim, config.bandwidth, config.bottleneck_delay,
                    loss_rate=config.loss_rate,
                    corrupt_rate=config.corrupt_rate,
                    reorder_rate=config.reorder_rate,
                    rng=rng.stream("bottleneck_fwd"), name="bottleneck-fwd",
                    telemetry=telemetry, spans=span_recorder)
    bott_rev = Link(sim, config.bandwidth, config.bottleneck_delay,
                    loss_rate=config.reverse_loss_rate,
                    rng=rng.stream("bottleneck_rev"), name="bottleneck-rev",
                    telemetry=telemetry, spans=span_recorder)
    # decoder <-> client LAN
    lan_c_fwd = Link(sim, config.lan_bandwidth, config.lan_delay,
                     rng=rng.stream("lan_c_fwd"), name="lan-client-fwd")
    lan_c_rev = Link(sim, config.lan_bandwidth, config.lan_delay,
                     rng=rng.stream("lan_c_rev"), name="lan-client-rev")

    lan_s_fwd.connect(enc_node.receive)
    bott_fwd.connect(dec_node.receive)
    lan_c_fwd.connect(client.receive)
    lan_c_rev.connect(dec_node.receive)
    bott_rev.connect(enc_node.receive)
    lan_s_rev.connect(server.receive)

    server.set_default_route(lan_s_fwd)
    enc_node.add_route(SERVER_ADDR, lan_s_rev)
    enc_node.set_default_route(bott_fwd)          # towards client / decoder
    dec_node.add_route(SERVER_ADDR, bott_rev)
    dec_node.add_route(ENCODER_ADDR, bott_rev)
    dec_node.set_default_route(lan_c_fwd)
    client.set_default_route(lan_c_rev)

    tcp_config = config.tcp_config()
    client_stack = TCPStack(sim, client, tcp_config, telemetry=telemetry,
                            spans=span_recorder)
    server_stack = TCPStack(sim, server, tcp_config, telemetry=telemetry,
                            spans=span_recorder)

    if telemetry is not None:
        telemetry.start()
    if verifier is not None:
        verifier.watch_links(bott_fwd, bott_rev)
        verifier.start()

    return Testbed(sim=sim, client=client, server=server,
                   client_stack=client_stack, server_stack=server_stack,
                   bottleneck_forward=bott_fwd, bottleneck_reverse=bott_rev,
                   gateways=gateways, tracer=tracer, profiler=profiler,
                   telemetry=telemetry, spans=span_recorder,
                   verifier=verifier)


def run_transfer(config: ExperimentConfig,
                 tracer: Optional[Tracer] = None) -> TransferResult:
    """Run one complete retrieval described by ``config``."""
    testbed = build_testbed(config, tracer)
    sim = testbed.sim

    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client_app = FileClient(testbed.client_stack, sim)

    on_data = None
    if testbed.verifier is not None:
        # Arm the byte-integrity oracle: every in-order chunk the client
        # receives is checked against the source object immediately.
        testbed.verifier.arm_integrity(data)
        on_data = testbed.verifier.on_deliver
    outcome = client_app.fetch(
        SERVER_ADDR, FILE_NAME, expected_size=len(data),
        expected_content=(data if config.verify_content or config.verify
                          else None),
        on_data=on_data,
        on_done=lambda _outcome: sim.stop())
    sim.run(until=config.time_limit)
    if testbed.verifier is not None:
        testbed.verifier.finalize(outcome)
    return collect_result(testbed, outcome, config)


def collect_result(testbed: Testbed, outcome,
                   config: ExperimentConfig) -> TransferResult:
    """Assemble the :class:`TransferResult` for a finished run.

    Split out of :func:`run_transfer` so drivers that must own the
    event loop themselves — the fuzz harness, the chaos campaign
    runner — can still produce the same result object (including the
    telemetry export with its post-mortem reason) after their custom
    run/fault/verify sequence.
    """
    sim = testbed.sim
    server_conns = testbed.server_stack.connections()
    retransmissions = sum(c.stats.retransmissions for c in server_conns)
    timeouts = sum(c.stats.timeouts for c in server_conns)

    forward = testbed.bottleneck_forward.stats
    avg_packet = (forward.bytes_offered / forward.packets_offered
                  if forward.packets_offered else 0.0)

    telemetry_export = None
    if testbed.telemetry is not None:
        if outcome.stalled:
            reason = "stall"
        elif not outcome.completed:
            reason = "time_limit"
        elif (testbed.gateways is not None
              and testbed.gateways.decoder.resilience is not None
              and testbed.gateways.decoder.resilience.stats.watchdog_trips):
            reason = "watchdog"
        else:
            reason = "completed"
        # The flight recorder dumps automatically on the post-mortem
        # endings (stall / watchdog trip / time-limit expiry).
        telemetry_export = testbed.telemetry.export(
            reason=reason, dump_flight_recorder=(reason != "completed"))

    return TransferResult(
        outcome=outcome,
        bottleneck_forward=forward,
        bottleneck_reverse=testbed.bottleneck_reverse.stats,
        encoder_stats=(testbed.gateways.encoder.stats
                       if testbed.gateways else None),
        decoder_stats=(testbed.gateways.decoder.stats
                       if testbed.gateways else None),
        encoder_resilience=(testbed.gateways.encoder.resilience.stats
                            if testbed.gateways
                            and testbed.gateways.encoder.resilience
                            else None),
        decoder_resilience=(testbed.gateways.decoder.resilience.stats
                            if testbed.gateways
                            and testbed.gateways.decoder.resilience
                            else None),
        sim_time=sim.now,
        dre_enabled=config.dre_enabled,
        policy=config.policy or "none",
        seed=config.seed,
        server_retransmissions=retransmissions,
        server_timeouts=timeouts,
        avg_data_packet_size=avg_packet,
        data_packets_sent=forward.packets_offered,
        profile=(testbed.profiler.as_dict()
                 if testbed.profiler is not None else None),
        telemetry=telemetry_export,
        spans=(testbed.spans.export()
               if testbed.spans is not None else None),
    )


def run_paired(config: ExperimentConfig,
               baseline_config: Optional[ExperimentConfig] = None
               ) -> tuple:
    """Run the DRE transfer and its no-DRE baseline (same seed)."""
    if not config.dre_enabled:
        raise ValueError("run_paired needs a DRE-enabled config")
    if baseline_config is None:
        baseline_config = config.with_updates(policy=None, policy_kwargs={})
    return run_transfer(config), run_transfer(baseline_config)
