"""Multi-connection experiments: inter-flow redundancy and cross-
connection cache poisoning.

Two claims of the paper live here:

* §I: byte caching "eliminates redundancy both intra-flow and
  inter-flows" — a second client fetching overlapping content through
  the same gateway pair should ride the first client's cache;
* §IV-C: "a packet loss may cause the desynchronization between the
  encoder's and decoder's caches, and, not only one TCP connection, but
  all subsequent connections going through the encoder and decoder may
  get affected" — under the naive policy, a stall on one connection
  leaves poisoned state behind for the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from ..app.transfer import FileClient, FileServer, TransferOutcome
from ..metrics.profiling import StageProfiler
from ..workload.corpus import corpus_object
from .config import ExperimentConfig
from .runner import FILE_NAME, SERVER_ADDR, build_testbed


@dataclass
class MultiFlowResult:
    """Outcomes of several sequential or concurrent fetches."""

    outcomes: List[TransferOutcome]
    bytes_on_link: int
    per_fetch_link_bytes: List[int] = field(default_factory=list)

    @property
    def all_completed(self) -> bool:
        return all(outcome.completed for outcome in self.outcomes)


def run_sequential_fetches(config: ExperimentConfig, n_fetches: int = 2,
                           same_object: bool = True,
                           fetch_timeout: float = 60.0) -> MultiFlowResult:
    """One client fetches ``n_fetches`` times over fresh connections.

    With ``same_object`` the later fetches are fully redundant against
    the gateway caches (inter-flow redundancy in its purest form).  A
    fetch that neither completes nor dies within ``fetch_timeout``
    seconds is abandoned and the next one starts — the §IV-C user who
    gives up and retries.
    """
    testbed = build_testbed(config)
    sim = testbed.sim
    objects = {}
    for index in range(n_fetches):
        name = FILE_NAME if same_object else f"{FILE_NAME}-{index}"
        objects[name] = corpus_object(config.corpus, config.file_size,
                                      config.corpus_seed
                                      + (0 if same_object else index))
    FileServer(testbed.server_stack, objects)
    client_app = FileClient(testbed.client_stack, sim)

    outcomes: List[TransferOutcome] = []
    per_fetch_bytes: List[int] = []

    def fetch(index: int) -> None:
        name = FILE_NAME if same_object else f"{FILE_NAME}-{index}"
        before = testbed.bottleneck_forward.stats.bytes_offered
        advanced = []

        def advance() -> None:
            if advanced:
                return
            advanced.append(True)
            per_fetch_bytes.append(
                testbed.bottleneck_forward.stats.bytes_offered - before)
            if index + 1 < n_fetches:
                # Small gap between connections, as a user would pause.
                sim.after(0.05, fetch, index + 1)
            else:
                sim.stop()

        outcomes.append(client_app.fetch(
            SERVER_ADDR, name, expected_size=len(objects[name]),
            expected_content=objects[name],
            on_done=lambda _outcome: advance()))
        sim.after(fetch_timeout, advance)

    fetch(0)
    sim.run(until=config.time_limit)
    return MultiFlowResult(outcomes=outcomes,
                           bytes_on_link=testbed.bottleneck_forward.stats.bytes_offered,
                           per_fetch_link_bytes=per_fetch_bytes)


def run_version_update(config: ExperimentConfig, size: int = 120 * 1460,
                       change_fraction: float = 0.08) -> MultiFlowResult:
    """Fetch v1, then fetch v2 of the same artifact (§I "modified
    content"): the second transfer should cost roughly the changed
    fraction plus encoding overhead."""
    from ..workload.objects import generate_software_versions

    testbed = build_testbed(config)
    sim = testbed.sim
    v1, v2 = generate_software_versions(size, n_versions=2,
                                        change_fraction=change_fraction,
                                        seed=config.corpus_seed)
    FileServer(testbed.server_stack, {"v1": v1, "v2": v2})
    client_app = FileClient(testbed.client_stack, sim)

    outcomes: List[TransferOutcome] = []
    per_fetch_bytes: List[int] = []

    def fetch(name: str, blob: bytes, then=None) -> None:
        before = testbed.bottleneck_forward.stats.bytes_offered

        def done(_outcome: TransferOutcome) -> None:
            per_fetch_bytes.append(
                testbed.bottleneck_forward.stats.bytes_offered - before)
            if then is not None:
                sim.after(0.05, then)
            else:
                sim.stop()

        outcomes.append(client_app.fetch(
            SERVER_ADDR, name, expected_size=len(blob),
            expected_content=blob, on_done=done))

    fetch("v1", v1, then=lambda: fetch("v2", v2))
    sim.run(until=config.time_limit)
    return MultiFlowResult(outcomes=outcomes,
                           bytes_on_link=testbed.bottleneck_forward.stats.bytes_offered,
                           per_fetch_link_bytes=per_fetch_bytes)


def run_concurrent_fetches(config: ExperimentConfig,
                           n_clients: int = 2) -> MultiFlowResult:
    """``n_clients`` connections fetch the same object simultaneously.

    All connections share the gateway pair, so their packets interleave
    in the caches — the inter-flow setting of §I (and the cross-flow
    eligibility question for the TCP-seq policy).
    """
    testbed = build_testbed(config)
    sim = testbed.sim
    data = corpus_object(config.corpus, config.file_size, config.corpus_seed)
    FileServer(testbed.server_stack, {FILE_NAME: data})
    client_app = FileClient(testbed.client_stack, sim)

    outcomes: List[TransferOutcome] = []
    finished = []

    def done(outcome: TransferOutcome) -> None:
        finished.append(outcome)
        if len(finished) == n_clients:
            sim.stop()

    for index in range(n_clients):
        sim.after(0.002 * index, lambda: outcomes.append(client_app.fetch(
            SERVER_ADDR, FILE_NAME, expected_size=len(data),
            expected_content=data, on_done=done)))

    sim.run(until=config.time_limit)
    return MultiFlowResult(
        outcomes=outcomes,
        bytes_on_link=testbed.bottleneck_forward.stats.bytes_offered)


# ---------------------------------------------------------------------------
# Flow-parallel execution: independent flows sharded over a process pool
# ---------------------------------------------------------------------------

@dataclass
class MultiFlowSetResult:
    """Deterministic merge of independently executed flow runs.

    ``flows[i]`` is the result of ``configs[i]`` regardless of worker
    count or completion order — each flow runs its own testbed and
    simulator with seeds derived only from its config, so the merged
    result of a parallel run is bit-identical to the serial one.
    """

    flows: List[MultiFlowResult]
    total_bytes_on_link: int
    workers_used: int

    @property
    def all_completed(self) -> bool:
        return all(flow.all_completed for flow in self.flows)

    @property
    def per_flow_link_bytes(self) -> List[int]:
        return [flow.bytes_on_link for flow in self.flows]


def _run_flow_job(job: Tuple[int, ExperimentConfig, int]
                  ) -> Tuple[int, MultiFlowResult]:
    """Pool worker: run one flow's transfer in its own simulator.

    Module-level so it pickles into a ``ProcessPoolExecutor``; the
    index rides along so the merge can re-establish submission order.
    """
    index, config, n_fetches = job
    return index, run_sequential_fetches(config, n_fetches=n_fetches)


def run_parallel_flows(configs: Sequence[ExperimentConfig], *,
                       n_fetches: int = 1,
                       workers: Optional[int] = None,
                       profiler: Optional[StageProfiler] = None
                       ) -> MultiFlowSetResult:
    """Run independent flows, optionally sharded across a process pool.

    Flows here are *independent* in the strict sense: each config gets
    its own testbed (gateway pair, caches, simulator), which is what
    makes process sharding sound — there is no shared mutable state to
    race on.  With ``workers`` ``None``/``<=1`` everything runs in this
    process; otherwise the flows fan out over
    :func:`repro.experiments.sweep.parallel_map` and are merged back in
    submission-index order, so the output is byte-identical either way
    (the differential runner asserts exactly that).

    ``profiler``, when given, accumulates the recombination cost under
    the ``merge`` stage.
    """
    from .sweep import parallel_map

    jobs = [(index, config, n_fetches)
            for index, config in enumerate(configs)]
    indexed = parallel_map(_run_flow_job, jobs, workers=workers)
    started = perf_counter() if profiler is not None else 0.0
    # Deterministic merge: order by submission index, never by
    # completion order (parallel_map preserves order today, but the
    # merge must not depend on that detail).
    flows = [flow for _, flow in sorted(indexed, key=lambda pair: pair[0])]
    merged = MultiFlowSetResult(
        flows=flows,
        total_bytes_on_link=sum(flow.bytes_on_link for flow in flows),
        workers_used=1 if workers is None else max(1, workers))
    if profiler is not None:
        profiler.add("merge", perf_counter() - started)
    return merged
