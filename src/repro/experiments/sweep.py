"""Declarative parameter sweeps over :class:`ExperimentConfig`.

The paper's figures are all grids: policy x corpus x loss-rate x seed,
each cell one simulated transfer, many cells sharing one no-DRE
baseline.  This module turns that shape into data:

* :class:`SweepSpec` — a base config, a parameter grid over config
  fields, replicate seeds, and (optionally) paired no-DRE baselines.
* :func:`run_sweep` — executes the spec's cells serially or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, deduplicating
  identical configs (hash-keyed), memoising paired baselines, and
  optionally caching every :class:`TransferResult` on disk so an
  unchanged sweep re-run costs nothing.
* :func:`write_bench_json` — emits the ``BENCH_sweep.json``
  perf-trajectory file (schema ``bench_sweep/v1``).

Determinism: the simulation is fully seeded, so a cell's result is a
pure function of its config.  Cells are enumerated in grid-product
order and aggregated in that order regardless of worker completion
order — a parallel run is bit-identical to a serial one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from ..metrics.collectors import RatioPoint, TransferResult
from .config import ExperimentConfig
from .runner import run_transfer

BENCH_SCHEMA = "bench_sweep/v1"
TELEMETRY_BENCH_SCHEMA = "bench_telemetry/v1"


# ---------------------------------------------------------------------------
# config identity
# ---------------------------------------------------------------------------

def config_hash(config: ExperimentConfig) -> str:
    """Stable content hash of a config (the sweep cache key).

    Canonical JSON over the dataclass fields: two configs hash equal
    iff every field is equal, independent of construction order or
    process.
    """
    payload = json.dumps(asdict(config), sort_keys=True,
                         separators=(",", ":"), default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _freeze(value: Any) -> Any:
    """Hashable, order-independent form of a grid parameter value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


# ---------------------------------------------------------------------------
# spec and cells
# ---------------------------------------------------------------------------

@dataclass
class SweepCell:
    """One coordinate of the grid: a concrete config plus its identity."""

    index: int
    params: Dict[str, Any]          # flattened field assignment for this cell
    seed: int
    config: ExperimentConfig

    @property
    def key(self) -> tuple:
        """Hashable (params, seed) identity used for cell lookup."""
        return (tuple(sorted((name, _freeze(value))
                             for name, value in self.params.items())),
                self.seed)


@dataclass
class SweepSpec:
    """A declarative parameter sweep.

    ``grid`` maps config field names to the values to sweep.  A key may
    name several comma-joined fields (``"policy,policy_kwargs"``) whose
    values are tuples assigned together — that expresses paired axes
    like (policy, its kwargs) without taking their cross product.

    ``seeds`` replicates every grid point; each replicate's config gets
    ``seed=<that seed>`` (deterministic per-cell seeding).  ``None``
    keeps the base config's seed, yielding one replicate per point.

    ``paired_baseline`` runs the no-DRE twin
    (``policy=None, policy_kwargs={}``) of every DRE cell; twins that
    hash equal across cells are executed once and shared.
    """

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Optional[Sequence[int]] = None
    paired_baseline: bool = False

    def cells(self) -> Iterator[SweepCell]:
        """Enumerate cells in grid-product order (the aggregation order)."""
        keys = list(self.grid)
        seeds: Sequence[Optional[int]] = (tuple(self.seeds)
                                          if self.seeds is not None
                                          else (None,))
        index = 0
        for combo in itertools.product(*(self.grid[key] for key in keys)):
            assignment: Dict[str, Any] = {}
            for key, value in zip(keys, combo):
                fields = [name.strip() for name in key.split(",")]
                if len(fields) == 1:
                    assignment[fields[0]] = value
                else:
                    if len(value) != len(fields):
                        raise ValueError(
                            f"grid key {key!r} names {len(fields)} fields "
                            f"but got a value of length {len(value)}")
                    assignment.update(zip(fields, value))
            for seed in seeds:
                updates = dict(assignment)
                if seed is not None:
                    updates["seed"] = seed
                config = self.base.with_updates(**updates)
                yield SweepCell(index=index, params=dict(assignment),
                                seed=config.seed, config=config)
                index += 1

    def size(self) -> int:
        lengths = [len(values) for values in self.grid.values()]
        cells = 1
        for length in lengths:
            cells *= length
        return cells * (len(self.seeds) if self.seeds is not None else 1)


@dataclass
class CellResult:
    """One executed cell: its result and (optionally) its baseline twin."""

    index: int
    params: Dict[str, Any]
    seed: int
    config_hash: str
    result: TransferResult
    baseline: Optional[TransferResult] = None
    baseline_hash: Optional[str] = None
    elapsed: float = 0.0            # seconds simulating (0 on a cache hit)
    from_cache: bool = False

    @property
    def key(self) -> tuple:
        return (tuple(sorted((name, _freeze(value))
                             for name, value in self.params.items())),
                self.seed)

    def ratio_point(self, x: float) -> RatioPoint:
        """Paired DRE/no-DRE ratios at sweep coordinate ``x``."""
        if self.baseline is None:
            raise ValueError("cell has no paired baseline "
                             "(SweepSpec.paired_baseline was False)")
        return RatioPoint.from_results(x, self.result, self.baseline)


@dataclass
class SweepResult:
    """All cells of a sweep, in spec (grid-product) order."""

    cells: List[CellResult]
    executed: int                   # configs actually simulated
    cached: int                     # configs served from the result cache
    wall_clock: float

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def by_key(self) -> Dict[tuple, CellResult]:
        """Lookup table keyed by each cell's (params, seed) identity."""
        return {cell.key: cell for cell in self.cells}


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _execute_config(job: Tuple[str, ExperimentConfig]
                    ) -> Tuple[str, TransferResult, float]:
    """Worker: run one transfer.  Module-level so it pickles."""
    digest, config = job
    started = time.perf_counter()
    result = run_transfer(config)
    return digest, result, time.perf_counter() - started


def _cache_path(cache_dir: str, digest: str) -> str:
    return os.path.join(cache_dir, f"{digest}.json")


def _cache_load(cache_dir: str, digest: str) -> Optional[TransferResult]:
    path = _cache_path(cache_dir, digest)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return TransferResult.from_dict(json.load(handle))
    except (OSError, ValueError, TypeError, KeyError):
        return None


def _cache_store(cache_dir: str, digest: str, result: TransferResult) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, digest)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, separators=(",", ":"))
    os.replace(tmp, path)


def run_sweep(spec: SweepSpec, *,
              workers: Optional[int] = None,
              cache_dir: Optional[str] = None,
              progress: Optional[Callable[[int, int], None]] = None
              ) -> SweepResult:
    """Execute every cell of ``spec`` (plus paired baselines).

    ``workers``: ``None``/``0``/``1`` runs serially in-process; larger
    values fan the *unique* configs out over a process pool.  The
    result is bit-identical either way (see module docstring).

    ``cache_dir``: directory of ``<config-hash>.json`` files.  Configs
    whose hash is present are loaded instead of simulated, so re-running
    an unchanged sweep is free; newly executed configs are stored.

    ``progress``: optional ``(done, total)`` callback, called after
    each unique config resolves.
    """
    started = time.perf_counter()
    cells = list(spec.cells())

    # Unique configs to resolve: every cell, plus each DRE cell's
    # baseline twin.  Dict insertion order keeps job order (and thus
    # scheduling) deterministic.
    jobs: Dict[str, ExperimentConfig] = {}
    cell_hashes: List[str] = []
    baseline_hashes: List[Optional[str]] = []
    for cell in cells:
        digest = config_hash(cell.config)
        cell_hashes.append(digest)
        jobs.setdefault(digest, cell.config)
        if spec.paired_baseline and cell.config.dre_enabled:
            twin = cell.config.with_updates(policy=None, policy_kwargs={})
            twin_digest = config_hash(twin)
            baseline_hashes.append(twin_digest)
            jobs.setdefault(twin_digest, twin)
        else:
            baseline_hashes.append(None)

    results: Dict[str, TransferResult] = {}
    elapsed: Dict[str, float] = {}
    hits: set = set()
    if cache_dir is not None:
        for digest in jobs:
            cached = _cache_load(cache_dir, digest)
            if cached is not None:
                results[digest] = cached
                elapsed[digest] = 0.0
                hits.add(digest)

    todo = [(digest, config) for digest, config in jobs.items()
            if digest not in results]
    total = len(jobs)
    done = len(results)
    if progress is not None and done:
        progress(done, total)

    if todo:
        if workers is not None and workers > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                resolved = pool.map(_execute_config, todo)
                for digest, result, seconds in resolved:
                    results[digest] = result
                    elapsed[digest] = seconds
                    done += 1
                    if progress is not None:
                        progress(done, total)
        else:
            for job in todo:
                digest, result, seconds = _execute_config(job)
                results[digest] = result
                elapsed[digest] = seconds
                done += 1
                if progress is not None:
                    progress(done, total)
        if cache_dir is not None:
            for digest, _config in todo:
                _cache_store(cache_dir, digest, results[digest])

    cell_results = []
    for cell, digest, twin_digest in zip(cells, cell_hashes, baseline_hashes):
        cell_results.append(CellResult(
            index=cell.index, params=cell.params, seed=cell.seed,
            config_hash=digest, result=results[digest],
            baseline=(results[twin_digest] if twin_digest is not None
                      else None),
            baseline_hash=twin_digest,
            elapsed=elapsed[digest],
            from_cache=digest in hits))
    return SweepResult(cells=cell_results, executed=len(todo),
                       cached=len(hits),
                       wall_clock=time.perf_counter() - started)


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any], *,
                 workers: Optional[int] = None) -> List[Any]:
    """Order-preserving map, serial or over a process pool.

    For sweep-adjacent work that is not a transfer (e.g. Table I's
    offline encoder runs).  ``fn`` must be a module-level callable so
    it pickles.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


# ---------------------------------------------------------------------------
# BENCH_sweep.json emission
# ---------------------------------------------------------------------------

def _cell_metrics(result: TransferResult) -> Dict[str, Any]:
    metrics = {
        "completed": result.completed,
        "bytes_on_link": result.forward_bytes_on_link,
        "download_time": result.download_time,
        "perceived_loss_rate": result.perceived_loss_rate,
        "sim_time": result.sim_time,
    }
    if result.spans is not None:
        # Deterministic rollup only (counts + sim durations, no wall
        # times) so cached and fresh cells stay byte-identical.
        from ..metrics.spans import spans_rollup
        metrics["spans"] = spans_rollup(result.spans)
    return metrics


def bench_payload(sweep: SweepResult, name: str) -> Dict[str, Any]:
    """The ``bench_sweep/v1`` document for one sweep run."""
    cells = []
    for cell in sweep.cells:
        entry: Dict[str, Any] = {
            "params": {key: repr(value) if isinstance(value, dict) else value
                       for key, value in cell.params.items()},
            "seed": cell.seed,
            "config_hash": cell.config_hash,
            "from_cache": cell.from_cache,
            "elapsed": cell.elapsed,
            "metrics": _cell_metrics(cell.result),
        }
        if cell.baseline is not None:
            entry["baseline_hash"] = cell.baseline_hash
            entry["metrics"]["bytes_ratio"] = (
                cell.result.forward_bytes_on_link
                / max(1, cell.baseline.forward_bytes_on_link))
        cells.append(entry)
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "cells": cells,
        "summary": {
            "cells": len(sweep.cells),
            "executed": sweep.executed,
            "cached": sweep.cached,
            "wall_clock": sweep.wall_clock,
        },
    }


def append_bench_history(payload: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Write a ``BENCH_*.json`` record, folding the prior run into history.

    If ``path`` already holds a document with the same ``schema``, its
    ``name``/``generated_at``/``summary`` are appended to this
    document's ``history`` list — successive runs accumulate a
    performance trajectory.  Shared by the sweep, hot-path and
    multiflow-scaling bench writers; ``payload`` must carry ``schema``
    and ``summary`` keys and is mutated in place (history + timestamp)
    before being written.
    """
    history: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        if (isinstance(previous, dict)
                and previous.get("schema") == payload.get("schema")):
            history = list(previous.get("history", []))
            history.append({"name": previous.get("name"),
                            "generated_at": previous.get("generated_at"),
                            **previous.get("summary", {})})
    except (OSError, ValueError):
        pass
    payload["history"] = history
    # lint: disable=determinism-wallclock(report metadata timestamp; never feeds simulation state),taint-flow(generated_at is report metadata by design; the bench sentinel compares summaries, never timestamps)
    payload["generated_at"] = time.time()
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def write_bench_json(sweep: SweepResult, path: str, *,
                     name: str = "sweep") -> Dict[str, Any]:
    """Write (or extend) a ``BENCH_sweep.json`` perf-trajectory file.

    If ``path`` already holds a ``bench_sweep/v1`` document, its
    summary is appended to this document's ``history`` — successive
    runs accumulate a wall-clock trajectory.
    """
    return append_bench_history(bench_payload(sweep, name), path)


# ---------------------------------------------------------------------------
# bench_telemetry/v1 emission
# ---------------------------------------------------------------------------

def _telemetry_cell(cell: CellResult) -> Dict[str, Any]:
    return {
        "params": {key: repr(value) if isinstance(value, dict) else value
                   for key, value in cell.params.items()},
        "seed": cell.seed,
        "config_hash": cell.config_hash,
        "telemetry": cell.result.telemetry,
    }


def telemetry_payload(sweep: SweepResult, name: str) -> Dict[str, Any]:
    """The ``bench_telemetry/v1`` document for one sweep run.

    Carries the per-cell ``telemetry/v1`` exports (cells run without
    ``telemetry=True`` are skipped) so every cell's time series survive
    alongside the scalar ``bench_sweep/v1`` metrics.
    """
    cells = [_telemetry_cell(cell) for cell in sweep.cells
             if cell.result.telemetry is not None]
    return {
        "schema": TELEMETRY_BENCH_SCHEMA,
        "name": name,
        "cells": cells,
        "summary": {
            "cells": len(sweep.cells),
            "with_telemetry": len(cells),
        },
    }


def write_telemetry_export(sweep: SweepResult, path: str, *,
                           name: str = "sweep") -> Dict[str, Any]:
    """Write per-cell telemetry as ``bench_telemetry/v1``.

    A ``.jsonl`` path gets one self-describing JSON object per line
    (schema + name on each row, one row per cell) — stream-appendable
    and ``jq``-sliceable per cell.  Any other extension gets the single
    JSON document from :func:`telemetry_payload`.
    """
    payload = telemetry_payload(sweep, name)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".jsonl"):
            for cell in payload["cells"]:
                handle.write(json.dumps(
                    {"schema": TELEMETRY_BENCH_SCHEMA, "name": name, **cell},
                    separators=(",", ":")))
                handle.write("\n")
        else:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return payload


def validate_bench_telemetry(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is valid ``bench_telemetry/v1``.

    Accepts either the single-document form (with a ``cells`` list) or
    one JSONL row (with an inline ``telemetry`` export).  Used by tests
    and the CI smoke step.
    """
    from ..metrics.telemetry import validate_telemetry

    if not isinstance(doc, dict):
        raise ValueError("bench_telemetry document must be a dict")
    if doc.get("schema") != TELEMETRY_BENCH_SCHEMA:
        raise ValueError(f"bad schema: {doc.get('schema')!r}")
    if "cells" in doc:
        cells = doc["cells"]
        if not isinstance(cells, list):
            raise ValueError("cells must be a list")
        for cell in cells:
            validate_telemetry(cell.get("telemetry"))
    elif "telemetry" in doc:
        validate_telemetry(doc["telemetry"])
    else:
        raise ValueError("document carries neither cells nor telemetry")
