"""One callable per paper artifact (every table and figure of §III–§VII).

Each scenario returns a small result object carrying both the raw data
and a ``report()`` string shaped like the paper's table/figure, which
the benchmark harness prints.  Loss rates are fractions (0.05 = 5 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import ByteCache
from ..core.encoder import ByteCachingEncoder
from ..core.fingerprint import FingerprintScheme
from ..core.policies import make_policy_pair
from ..core.policies.base import PacketMeta
from ..metrics.collectors import RatioPoint, TransferResult
from ..metrics.report import format_series, format_table
from ..metrics.series import Series
from ..workload.corpus import corpus_object
from .config import ExperimentConfig
from .runner import run_transfer
from .sweep import SweepSpec, parallel_map, run_sweep

DEFAULT_LOSS_SWEEP = (0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20)
DEFAULT_SEEDS = (11, 23, 37)
MSS = 1460


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def offline_compression_ratio(data: bytes, cache_packets: Optional[int] = None,
                              scheme: Optional[FingerprintScheme] = None,
                              mss: int = MSS) -> float:
    """Bytes-out / bytes-in of the encoder run offline over ``data``.

    This is the trace-style measurement of Table I: no network, the
    cache limited to a window of ``cache_packets`` packets.
    """
    if scheme is None:
        scheme = FingerprintScheme()
    policy, _ = make_policy_pair("naive")
    encoder = ByteCachingEncoder(
        scheme, ByteCache(1 << 30, cache_packets), policy)
    total_out = 0
    for index in range(0, len(data), mss):
        block = data[index: index + mss]
        meta = PacketMeta(packet_id=index, flow=("s", 0, "c", 1),
                          tcp_seq=index, counter=index // mss)
        total_out += encoder.encode(block, meta).bytes_out
    return total_out / max(1, len(data))


@dataclass
class _RatioRuns:
    """Paired-sweep bookkeeping shared by Figures 10-12."""

    bytes_series: Series
    delay_series: Series
    stalls: int = 0
    runs: int = 0

    def add(self, x: float, point: RatioPoint) -> None:
        self.runs += 1
        self.bytes_series.point(x).add(point.bytes_ratio)
        if point.delay_ratio is None:
            self.stalls += 1
        else:
            self.delay_series.point(x).add(point.delay_ratio)


def _paired_ratio(config: ExperimentConfig,
                  baseline_cache: Dict[tuple, TransferResult]) -> RatioPoint:
    """Run a DRE config and its (memoised) no-DRE baseline."""
    key = (config.corpus, config.file_size, config.corpus_seed,
           config.loss_rate, config.corrupt_rate, config.reorder_rate,
           config.seed)
    if key not in baseline_cache:
        baseline_cache[key] = run_transfer(
            config.with_updates(policy=None, policy_kwargs={}))
    dre = run_transfer(config)
    return RatioPoint.from_results(config.loss_rate, dre, baseline_cache[key])


# ---------------------------------------------------------------------------
# Table I — redundancy in web objects
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    rows: List[Tuple[str, int, float]]  # (object, k packets, savings fraction)

    def report(self) -> str:
        objects = sorted({row[0] for row in self.rows})
        ks = sorted({row[1] for row in self.rows})
        table_rows = []
        for k in ks:
            cells: List[object] = [k]
            for name in objects:
                savings = [s for o, kk, s in self.rows
                           if o == name and kk == k]
                cells.append(f"{savings[0] * 100:.3f}%" if savings else "-")
            table_rows.append(cells)
        return format_table(
            "Table I — redundancy in web objects (byte savings vs cache "
            "window of k packets)",
            ["k"] + objects, table_rows)


def _table1_cell(job: Tuple[str, int, int]) -> Tuple[str, int, float]:
    """One Table I cell (module-level so it pickles for parallel_map)."""
    name, k, seed = job
    data = corpus_object(name, seed=seed)
    return (name, k, 1.0 - offline_compression_ratio(data, cache_packets=k))


def table1(ks: Sequence[int] = (10, 100, 1000),
           objects: Sequence[str] = ("ebook", "video", "webpages"),
           seed: int = 3,
           workers: Optional[int] = None) -> Table1Result:
    jobs = [(name, k, seed) for name in objects for k in ks]
    return Table1Result(rows=parallel_map(_table1_cell, jobs,
                                          workers=workers))


# ---------------------------------------------------------------------------
# Figure 6 — frequency of TCP connection stalls (naive, 1 % loss)
# ---------------------------------------------------------------------------

@dataclass
class Figure6Result:
    fractions: List[float]            # % of file retrieved per attempt
    loss_rate: float
    file_size: int

    @property
    def stall_count(self) -> int:
        return sum(1 for f in self.fractions if f < 1.0)

    @property
    def success_count(self) -> int:
        return len(self.fractions) - self.stall_count

    @property
    def mean_fraction(self) -> float:
        if not self.fractions:
            return 0.0
        return sum(self.fractions) / len(self.fractions)

    def report(self) -> str:
        rows = [(i + 1, f"{fraction * 100:.1f}%")
                for i, fraction in enumerate(self.fractions)]
        body = format_table(
            f"Figure 6 — % of file retrieved before stall "
            f"(naive encoding, {self.loss_rate:.0%} loss, "
            f"{len(self.fractions)} runs)",
            ["run", "% retrieved"], rows)
        summary = (f"\nsuccessful retrievals: {self.success_count}/"
                   f"{len(self.fractions)}   mean retrieved: "
                   f"{self.mean_fraction * 100:.1f}% "
                   f"({int(self.mean_fraction * self.file_size)} bytes of "
                   f"{self.file_size})")
        return body + summary


def figure6(runs: int = 50, loss_rate: float = 0.01,
            corpus: str = "ebook", time_limit: float = 400.0,
            workers: Optional[int] = None) -> Figure6Result:
    data = corpus_object(corpus, seed=3)
    spec = SweepSpec(
        base=ExperimentConfig(corpus=corpus, policy="naive",
                              loss_rate=loss_rate, time_limit=time_limit),
        seeds=[1000 + run_index for run_index in range(runs)])
    swept = run_sweep(spec, workers=workers)
    return Figure6Result(
        fractions=[cell.result.fraction_retrieved for cell in swept],
        loss_rate=loss_rate, file_size=len(data))


# ---------------------------------------------------------------------------
# Figures 10 & 11 — bytes-sent and download-time ratios vs loss rate
# ---------------------------------------------------------------------------

@dataclass
class Figure10_11Result:
    bytes_series: List[Series]
    delay_series: List[Series]
    stalls: int

    def report_bytes(self) -> str:
        return format_series(
            "Figure 10 — bytes sent (DRE / no-DRE) vs packet loss rate",
            "loss", self.bytes_series)

    def report_delay(self) -> str:
        return format_series(
            "Figure 11 — download time (DRE / no-DRE) vs packet loss rate",
            "loss", self.delay_series)

    def report(self) -> str:
        return self.report_bytes() + "\n\n" + self.report_delay()


def figure10_11(policies: Sequence[str] = ("cache_flush", "tcp_seq"),
                files: Sequence[str] = ("file1", "file2"),
                losses: Sequence[float] = DEFAULT_LOSS_SWEEP,
                seeds: Sequence[int] = DEFAULT_SEEDS,
                workers: Optional[int] = None,
                cache_dir: Optional[str] = None) -> Figure10_11Result:
    spec = SweepSpec(
        base=ExperimentConfig(),
        grid={"policy": list(policies), "corpus": list(files),
              "loss_rate": list(losses)},
        seeds=tuple(seeds), paired_baseline=True)
    swept = run_sweep(spec, workers=workers, cache_dir=cache_dir)
    cells = iter(swept)
    bytes_series, delay_series = [], []
    stalls = 0
    for policy in policies:
        for corpus in files:
            label = f"{policy}({corpus})"
            runs = _RatioRuns(Series(label), Series(label))
            for loss in losses:
                for _seed in seeds:
                    runs.add(loss, next(cells).ratio_point(loss))
            bytes_series.append(runs.bytes_series)
            delay_series.append(runs.delay_series)
            stalls += runs.stalls
    return Figure10_11Result(bytes_series=bytes_series,
                             delay_series=delay_series, stalls=stalls)


# ---------------------------------------------------------------------------
# Figure 12 — k-distance performance vs k
# ---------------------------------------------------------------------------

@dataclass
class Figure12Result:
    bytes_series: List[Series]   # bytes sent normalised by file size
    delay_series: List[Series]   # delay normalised by loss-free download time
    stalls: int

    def report(self) -> str:
        return (format_series(
            "Figure 12 — k-distance: bytes sent (normalised by file size) "
            "vs k", "k", self.bytes_series)
            + "\n\n" + format_series(
            "Figure 12 — k-distance: delay (normalised by loss-free "
            "download time) vs k", "k", self.delay_series))


def figure12(ks: Sequence[int] = (2, 4, 8, 16, 32, 48, 64, 80),
             losses: Sequence[float] = (0.05, 0.10),
             corpus: str = "file1",
             seeds: Sequence[int] = DEFAULT_SEEDS,
             workers: Optional[int] = None) -> Figure12Result:
    file_size = len(corpus_object(corpus, seed=3))
    base = ExperimentConfig(corpus=corpus, policy="k_distance")
    # Normalisation denominators, per the figure caption: file size for
    # bytes; the download time in the absence of packet losses for delay.
    prelude = run_sweep(SweepSpec(
        base=base.with_updates(policy_kwargs={"k": 8}, loss_rate=0.0),
        seeds=tuple(seeds)), workers=workers)
    loss_free = {cell.seed: cell.result.download_time for cell in prelude}
    swept = run_sweep(SweepSpec(
        base=base,
        grid={"loss_rate": list(losses),
              "policy_kwargs": [{"k": k} for k in ks]},
        seeds=tuple(seeds)), workers=workers)
    cells = iter(swept)
    bytes_series, delay_series, stalls = [], [], 0
    for loss in losses:
        bseries = Series(f"bytes({loss:.0%})")
        dseries = Series(f"delay({loss:.0%})")
        for k in ks:
            for seed in seeds:
                result = next(cells).result
                bseries.point(k).add(result.forward_bytes_on_link / file_size)
                if result.download_time is not None and loss_free[seed]:
                    dseries.point(k).add(
                        result.download_time / loss_free[seed])
                else:
                    stalls += 1
        bytes_series.append(bseries)
        delay_series.append(dseries)
    return Figure12Result(bytes_series=bytes_series,
                          delay_series=delay_series, stalls=stalls)


# ---------------------------------------------------------------------------
# Figure 13 — perceived vs actual packet loss rate
# ---------------------------------------------------------------------------

@dataclass
class Figure13Result:
    series: List[Series]

    def report(self) -> str:
        return format_series(
            "Figure 13 — perceived packet loss rate (%) vs actual loss "
            "rate", "actual", self.series, precision=1)


def figure13(policies: Sequence[Tuple[str, dict]] = (
                 ("cache_flush", {}), ("tcp_seq", {}),
                 ("k_distance", {"k": 8})),
             losses: Sequence[float] = DEFAULT_LOSS_SWEEP,
             corpus: str = "file1",
             seeds: Sequence[int] = DEFAULT_SEEDS,
             workers: Optional[int] = None) -> Figure13Result:
    swept = run_sweep(SweepSpec(
        base=ExperimentConfig(corpus=corpus),
        grid={"policy,policy_kwargs": [(policy, dict(kwargs))
                                       for policy, kwargs in policies],
              "loss_rate": list(losses)},
        seeds=tuple(seeds)), workers=workers)
    cells = iter(swept)
    series_list = []
    for policy, kwargs in policies:
        label = policy if not kwargs else f"{policy}(k={kwargs.get('k')})"
        series = Series(label)
        for loss in losses:
            for _seed in seeds:
                result = next(cells).result
                series.point(loss).add(result.perceived_loss_rate * 100)
        series_list.append(series)
    return Figure13Result(series=series_list)


# ---------------------------------------------------------------------------
# Table II — the three schemes at 5 % and 10 % loss (k = 8)
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    cells: Dict[Tuple[str, str, float], float]  # (metric, policy, loss) -> v
    policies: Sequence[str]

    def report(self) -> str:
        rows = []
        for metric in ("Bytes Sent", "Delay"):
            for loss in (0.05, 0.10):
                row: List[object] = [f"{metric} ({loss:.0%} loss)"]
                for policy in self.policies:
                    value = self.cells.get((metric, policy, loss))
                    row.append("-" if value is None else f"{value:.2f}")
                rows.append(row)
        return format_table(
            "Table II — all three encoding schemes, File 1 "
            "(k-distance: k=8)",
            ["metric"] + list(self.policies), rows)


def table2(losses: Sequence[float] = (0.05, 0.10),
           corpus: str = "file1", k: int = 8,
           seeds: Sequence[int] = DEFAULT_SEEDS,
           workers: Optional[int] = None) -> Table2Result:
    policies = [("cache_flush", {}), ("tcp_seq", {}),
                ("k_distance", {"k": k})]
    swept = run_sweep(SweepSpec(
        base=ExperimentConfig(corpus=corpus),
        grid={"policy,policy_kwargs": [(policy, dict(kwargs))
                                       for policy, kwargs in policies],
              "loss_rate": list(losses)},
        seeds=tuple(seeds), paired_baseline=True), workers=workers)
    sweep_cells = iter(swept)
    cells: Dict[Tuple[str, str, float], float] = {}
    for policy, _kwargs in policies:
        for loss in losses:
            byte_ratios, delay_ratios = [], []
            for _seed in seeds:
                point = next(sweep_cells).ratio_point(loss)
                byte_ratios.append(point.bytes_ratio)
                if point.delay_ratio is not None:
                    delay_ratios.append(point.delay_ratio)
            cells[("Bytes Sent", policy, loss)] = (
                sum(byte_ratios) / len(byte_ratios))
            if delay_ratios:
                cells[("Delay", policy, loss)] = (
                    sum(delay_ratios) / len(delay_ratios))
    return Table2Result(cells=cells, policies=[p for p, _ in policies])


# ---------------------------------------------------------------------------
# Headline claims (§VI first paragraph)
# ---------------------------------------------------------------------------

@dataclass
class HeadlineResult:
    byte_savings: float
    delay_reduction: float

    def report(self) -> str:
        return format_table(
            "Headline (§VI) — gains at zero packet loss",
            ["metric", "paper", "measured"],
            [["byte savings", "45%", f"{self.byte_savings * 100:.1f}%"],
             ["download-time reduction", "28%",
              f"{self.delay_reduction * 100:.1f}%"]])


def headline(corpus: str = "file1", policy: str = "cache_flush",
             seeds: Sequence[int] = DEFAULT_SEEDS,
             workers: Optional[int] = None) -> HeadlineResult:
    swept = run_sweep(SweepSpec(
        base=ExperimentConfig(corpus=corpus, policy=policy, loss_rate=0.0),
        seeds=tuple(seeds), paired_baseline=True), workers=workers)
    byte_ratios, delay_ratios = [], []
    for cell in swept:
        point = cell.ratio_point(0.0)
        byte_ratios.append(point.bytes_ratio)
        if point.delay_ratio is not None:
            delay_ratios.append(point.delay_ratio)
    return HeadlineResult(
        byte_savings=1.0 - sum(byte_ratios) / len(byte_ratios),
        delay_reduction=1.0 - sum(delay_ratios) / max(1, len(delay_ratios)))


# ---------------------------------------------------------------------------
# Ablation (§VII) — average packet size: cache flush vs k-distance
# ---------------------------------------------------------------------------

@dataclass
class AblationResult:
    rows: List[Tuple[str, float, int]]  # (label, avg pkt size, pkt count)

    def report(self) -> str:
        return format_table(
            "Ablation (§VII) — average data packet size and packet count "
            "at 9% loss (paper: cache_flush 835 B/~390 pkts, k=8 920 B, "
            "k=50 634 B/430 pkts)",
            ["scheme", "avg packet size (B)", "packets sent"],
            [[label, f"{size:.0f}", count] for label, size, count in self.rows])


def ablation_packet_size(loss: float = 0.09, corpus: str = "file1",
                         seeds: Sequence[int] = DEFAULT_SEEDS) -> AblationResult:
    schemes = [("cache_flush", "cache_flush", {}),
               ("k_distance(k=8)", "k_distance", {"k": 8}),
               ("k_distance(k=50)", "k_distance", {"k": 50})]
    rows = []
    for label, policy, kwargs in schemes:
        sizes, counts = [], []
        for seed in seeds:
            result = run_transfer(ExperimentConfig(
                corpus=corpus, policy=policy, policy_kwargs=dict(kwargs),
                loss_rate=loss, seed=seed))
            if result.data_packets_sent:
                sizes.append(result.avg_data_packet_size)
                counts.append(result.data_packets_sent)
        rows.append((label, sum(sizes) / max(1, len(sizes)),
                     int(sum(counts) / max(1, len(counts)))))
    return AblationResult(rows=rows)


# ---------------------------------------------------------------------------
# §IV-C extrapolations — stall probability vs size, retrieved vs loss
# ---------------------------------------------------------------------------

@dataclass
class StallScalingResult:
    #: object size -> fraction of runs that stalled (naive policy)
    stall_by_size: Dict[int, float]
    #: loss rate -> mean bytes retrieved before the stall
    retrieved_by_loss: Dict[float, float]
    loss_for_sizes: float

    def report(self) -> str:
        size_rows = [[f"{size:,}", f"{fraction:.0%}"]
                     for size, fraction in sorted(self.stall_by_size.items())]
        loss_rows = [[f"{loss:.1%}", f"{int(mean_bytes):,}",
                      f"{1460 / loss if loss else float('inf'):,.0f}"]
                     for loss, mean_bytes
                     in sorted(self.retrieved_by_loss.items())]
        return (format_table(
            f"§IV-C — naive-policy stall probability vs object size "
            f"({self.loss_for_sizes:.1%} loss)",
            ["object size (B)", "stalled"], size_rows)
            + "\n\n" + format_table(
            "§IV-C — mean bytes retrieved before stall vs loss rate "
            "(paper: ≈ MSS/p)",
            ["loss", "measured mean (B)", "MSS/p prediction (B)"],
            loss_rows))


def stall_scaling(sizes: Sequence[int] = (40 * 1024, 160 * 1024,
                                          640 * 1024, 2 * 1024 * 1024),
                  size_loss: float = 0.002,
                  losses: Sequence[float] = (0.01, 0.02, 0.05),
                  corpus: str = "file1",
                  seeds: Sequence[int] = (11, 23, 37, 51, 77, 101, 137,
                                          173, 211, 251)) -> StallScalingResult:
    """Quantify §IV-C's extrapolation.

    The paper argues that because a single loss kills a naive-encoded
    transfer, large objects (50 % of web volume is >4 MB per Gill et
    al.) are almost guaranteed to fail even at low loss rates — stall
    probability ≈ 1-(1-p)^(size/MSS).  And the average amount retrieved
    before the stall is the mean run to the first loss, ≈ MSS/p bytes.
    """
    stall_by_size: Dict[int, float] = {}
    for size in sizes:
        stalls = 0
        for seed in seeds:
            result = run_transfer(ExperimentConfig(
                corpus=corpus, file_size=size, policy="naive",
                loss_rate=size_loss, seed=seed, time_limit=400.0))
            if not result.completed:
                stalls += 1
        stall_by_size[size] = stalls / len(seeds)

    retrieved_by_loss: Dict[float, float] = {}
    for loss in losses:
        retrieved = []
        for seed in seeds:
            result = run_transfer(ExperimentConfig(
                corpus=corpus, policy="naive", loss_rate=loss, seed=seed,
                time_limit=400.0))
            retrieved.append(result.outcome.bytes_received)
        retrieved_by_loss[loss] = sum(retrieved) / len(retrieved)
    return StallScalingResult(stall_by_size=stall_by_size,
                              retrieved_by_loss=retrieved_by_loss,
                              loss_for_sizes=size_loss)


# ---------------------------------------------------------------------------
# Impairment matrix (§IV) — loss vs corruption vs re-ordering
# ---------------------------------------------------------------------------

@dataclass
class ImpairmentResult:
    #: (policy, impairment kind, rate) -> (completed fraction, delay ratio)
    cells: Dict[Tuple[str, str, float], Tuple[float, Optional[float]]]
    policies: Sequence[str]
    kinds: Sequence[str]
    rates: Sequence[float]

    def report(self) -> str:
        rows = []
        for policy in self.policies:
            for kind in self.kinds:
                row: List[object] = [policy, kind]
                for rate in self.rates:
                    completed, delay = self.cells[(policy, kind, rate)]
                    if completed < 1.0:
                        row.append(f"stall({completed:.0%})")
                    elif delay is None:
                        row.append("done")
                    else:
                        row.append(f"{delay:.2f}x")
                rows.append(row)
        return format_table(
            "Impairment matrix (§IV) — completion / delay ratio per "
            "impairment kind",
            ["policy", "impairment"] + [f"{rate:.0%}" for rate in self.rates],
            rows)


def impairment_matrix(policies: Sequence[str] = ("naive", "cache_flush"),
                      kinds: Sequence[str] = ("loss", "corrupt", "reorder"),
                      rates: Sequence[float] = (0.01, 0.05),
                      corpus: str = "file1",
                      seeds: Sequence[int] = DEFAULT_SEEDS) -> ImpairmentResult:
    """§IV: a single loss, corruption *or* re-ordering can trigger the
    circular-dependency problem; the robust policies survive all three."""
    field_by_kind = {"loss": "loss_rate", "corrupt": "corrupt_rate",
                     "reorder": "reorder_rate"}
    baselines: Dict[tuple, TransferResult] = {}
    cells: Dict[Tuple[str, str, float], Tuple[float, Optional[float]]] = {}
    for policy in policies:
        for kind in kinds:
            for rate in rates:
                impairments = {field_by_kind[kind]: rate}
                completed, delays = 0, []
                for seed in seeds:
                    config = ExperimentConfig(corpus=corpus, policy=policy,
                                              seed=seed, **impairments)
                    point = _paired_ratio(config, baselines)
                    if point.dre.completed:
                        completed += 1
                    if point.delay_ratio is not None:
                        delays.append(point.delay_ratio)
                cells[(policy, kind, rate)] = (
                    completed / len(seeds),
                    sum(delays) / len(delays) if delays else None)
    return ImpairmentResult(cells=cells, policies=list(policies),
                            kinds=list(kinds), rates=list(rates))


# ---------------------------------------------------------------------------
# Extensions (§VIII / §IX) — schemes the paper discusses but did not build
# ---------------------------------------------------------------------------

@dataclass
class ExtensionsResult:
    bytes_series: List[Series]
    delay_series: List[Series]
    stall_counts: Dict[str, int]

    def report(self) -> str:
        stall_rows = [[name, count] for name, count
                      in sorted(self.stall_counts.items())]
        return (format_series(
            "Extensions — bytes ratio vs loss", "loss", self.bytes_series)
            + "\n\n" + format_series(
            "Extensions — delay ratio vs loss", "loss", self.delay_series)
            + "\n\n" + format_table(
            "Extensions — stalled runs", ["scheme", "stalls"], stall_rows))


def extensions(losses: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
               corpus: str = "file1",
               seeds: Sequence[int] = DEFAULT_SEEDS) -> ExtensionsResult:
    schemes = [("informed_marking", {}),
               ("ack_gated", {}),
               ("nack_recovery", {}),
               ("adaptive_k", {})]
    baselines: Dict[tuple, TransferResult] = {}
    bytes_series, delay_series = [], []
    stall_counts: Dict[str, int] = {}
    for policy, kwargs in schemes:
        runs = _RatioRuns(Series(policy), Series(policy))
        for loss in losses:
            for seed in seeds:
                config = ExperimentConfig(corpus=corpus, policy=policy,
                                          policy_kwargs=dict(kwargs),
                                          loss_rate=loss, seed=seed)
                runs.add(loss, _paired_ratio(config, baselines))
        bytes_series.append(runs.bytes_series)
        delay_series.append(runs.delay_series)
        stall_counts[policy] = runs.stalls
    return ExtensionsResult(bytes_series=bytes_series,
                            delay_series=delay_series,
                            stall_counts=stall_counts)
