"""The serving engine: a request stream against one shared-cache testbed.

One :func:`run_serving` call is the serving analogue of
:func:`repro.experiments.runner.run_transfer`: it builds the Fig. 3
topology once, replaces the single-object server with a Zipf catalog
server, arms the gateways with a shared
:class:`~repro.core.shardcache.ShardedByteCache` per direction, and
replays a pre-generated session schedule as overlapping TCP flows —
hundreds to thousands through the one bottleneck and the one cache
pair.

Methodology notes baked in here (DESIGN.md §15 discusses why):

* **Warm-up exclusion.**  A cold byte cache scores near-zero hits; the
  steady-state numbers snapshot the gateway/link counters when the
  first ``warmup_fraction`` of requests have finished and report deltas
  from there.  Download-time percentiles likewise only include
  requests scheduled after the warm-up boundary.
* **Pooled per-flow state.**  A churning population leaks state in
  places a single transfer never notices (the stack's connection
  table, the gateways' analysis logs, per-connection telemetry
  gauges).  The :class:`FlowPool` sweeps fully-closed connections out
  of both stacks after a linger longer than the max RTO, the gateways
  run with ``retain_logs`` off, and telemetry runs with
  ``per_connection`` off; the pool's high-water mark is the invariant
  the soak test bounds.
* **Determinism.**  The schedule is generated before the simulator
  starts, every random draw inside the run comes from the testbed's
  seeded streams, and the report contains no wall-clock — so a report
  is a pure function of its :class:`ServingSpec` and serial/parallel
  sweeps can be compared bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..app.transfer import FileClient, FileServer, TransferOutcome
from ..experiments.config import ExperimentConfig
from ..experiments.runner import SERVER_ADDR, Testbed, build_testbed
from ..net.tcp import TCPConnection, TCPStack
from ..sim.rng import derive_seed
from ..workload.catalog import CatalogSpec, ContentCatalog
from .sessions import Request, SessionSpec, generate_sessions

SERVING_SCHEMA = "serving/v1"


@dataclass
class ServingSpec:
    """Everything needed to run (and re-run) one serving simulation."""

    # -- population / workload
    users: int = 50
    n_contents: int = 200
    alpha: float = 0.8
    mean_object_bytes: int = 8 * 1024
    redundancy: float = 0.5
    arrival_rate: float = 25.0
    think_time: float = 0.3
    requests_per_user: float = 2.0
    max_requests: Optional[int] = None

    # -- shared cache / policy
    policy: str = "cache_flush"
    cache_bytes: int = 4 * 1024 * 1024
    cache_shards: int = 8
    cache_admission: float = 1.0
    cache_eviction: str = "lru"

    # -- link
    bandwidth: float = 8_000_000.0
    loss_rate: float = 0.01

    # -- run control
    seed: int = 0
    warmup_fraction: float = 0.2
    time_limit: float = 3600.0
    fetch_timeout: float = 120.0
    linger: float = 10.0            # > max RTO before pruning closed conns
    verify: bool = False
    telemetry: bool = False
    telemetry_kwargs: Dict[str, Any] = field(default_factory=dict)

    def catalog_spec(self) -> CatalogSpec:
        return CatalogSpec(
            n_contents=self.n_contents, alpha=self.alpha,
            mean_object_bytes=self.mean_object_bytes,
            redundancy=self.redundancy,
            seed=derive_seed(self.seed, "serving:catalog"))

    def session_spec(self) -> SessionSpec:
        return SessionSpec(
            users=self.users, arrival_rate=self.arrival_rate,
            requests_per_user=self.requests_per_user,
            think_time=self.think_time,
            seed=derive_seed(self.seed, "serving:sessions"),
            max_requests=self.max_requests)

    def experiment_config(self) -> ExperimentConfig:
        telemetry_kwargs = {"per_connection": False}
        telemetry_kwargs.update(self.telemetry_kwargs)
        return ExperimentConfig(
            policy=self.policy,
            cache_bytes=self.cache_bytes,
            cache_shards=self.cache_shards,
            cache_admission=self.cache_admission,
            cache_eviction=self.cache_eviction,
            bandwidth=self.bandwidth,
            loss_rate=self.loss_rate,
            seed=self.seed,
            time_limit=self.time_limit,
            verify=self.verify,
            telemetry=self.telemetry,
            telemetry_kwargs=telemetry_kwargs)


class _CatalogFiles:
    """``files``-shaped view over a catalog (only ``.get`` is consumed)."""

    def __init__(self, catalog: ContentCatalog):
        self.catalog = catalog

    def get(self, name: Optional[str]) -> Optional[bytes]:
        if name is None:
            return None
        try:
            cid = self.catalog.content_id(name)
        except (KeyError, ValueError):
            return None
        return self.catalog.object_bytes(cid)


class CatalogFileServer(FileServer):
    """A :class:`FileServer` whose corpus is a lazy content catalog."""

    def __init__(self, stack: TCPStack, catalog: ContentCatalog,
                 port: int = 80):
        super().__init__(stack, {}, port)
        self.catalog = catalog
        self.files = _CatalogFiles(catalog)  # type: ignore[assignment]


class FlowPool:
    """Pooled per-flow TCP state: sweeps closed connections out of the
    stacks so a churning population leaves no residue.

    A connection is released only after it has been observed closed for
    ``linger`` seconds (longer than the max RTO), so a peer still
    retransmitting its FIN finds the state it needs; releasing earlier
    would silently eat the retransmission and stall the peer's
    teardown.  ``high_water`` is the largest combined connection-table
    size ever observed — the bound the soak test asserts stays
    proportional to *concurrent* flows, not total requests.
    """

    def __init__(self, sim, stacks: List[TCPStack],
                 linger: float = 10.0, interval: float = 2.5):
        self.sim = sim
        self.stacks = stacks
        self.linger = linger
        self.interval = interval
        self.high_water = 0
        self.released = 0
        self._closed_since: Dict[int, tuple] = {}

    def start(self) -> None:
        self.sim.after(self.interval, self._tick)

    def sweep(self) -> None:
        now = self.sim.now
        total = 0
        for stack in self.stacks:
            for conn in stack.connections():
                total += 1
                if conn.is_open:
                    continue
                key = id(conn)
                if key not in self._closed_since:
                    self._closed_since[key] = (now, conn, stack)
        if total > self.high_water:
            self.high_water = total
        for key, (closed_at, conn, stack) in list(self._closed_since.items()):
            if now - closed_at >= self.linger:
                if stack.release(conn):
                    self.released += 1
                del self._closed_since[key]

    def _tick(self) -> None:
        self.sweep()
        self.sim.after(self.interval, self._tick)

    def open_connections(self) -> int:
        return sum(stack.connection_count() for stack in self.stacks)


class ServingOracle:
    """Periodic machine check of the sharded-cache invariants.

    Armed when ``spec.verify``: every ``interval`` simulated seconds
    both directions' caches run
    :meth:`~repro.core.shardcache.ShardedByteCache.check_invariants`;
    any violation raises a structured
    :class:`~repro.verify.oracles.InvariantViolation` immediately, with
    the shard snapshot as context.
    """

    def __init__(self, sim, caches: Dict[str, Any], interval: float = 1.0):
        self.sim = sim
        self.caches = caches
        self.interval = interval
        self.checks = 0

    def start(self) -> None:
        self.sim.after(self.interval, self._tick)

    def check_now(self) -> None:
        from ..verify.oracles import InvariantViolation

        for role, cache in self.caches.items():
            check = getattr(cache, "check_invariants", None)
            if check is None:
                continue
            problems = check()
            self.checks += 1
            if problems:
                raise InvariantViolation(
                    "serving_shards",
                    f"{role} cache violates shard invariants: "
                    f"{problems[0]}",
                    context={"role": role, "problems": problems,
                             "occupancy": cache.shard_occupancy()})

    def _tick(self) -> None:
        self.check_now()
        self.sim.after(self.interval, self._tick)


@dataclass
class _CounterSnapshot:
    """Gateway/link counters at the warm-up boundary."""

    data_packets: int = 0
    encoded_packets: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    decoded_ok: int = 0
    undecodable_dropped: int = 0
    evictions: int = 0


def _snapshot(testbed: Testbed) -> _CounterSnapshot:
    snap = _CounterSnapshot()
    if testbed.gateways is not None:
        enc = testbed.gateways.encoder
        snap.data_packets = enc.stats.data_packets
        snap.encoded_packets = enc.stats.encoded_packets
        snap.bytes_before = enc.stats.bytes_before
        snap.bytes_after = enc.stats.bytes_after
        snap.decoded_ok = testbed.gateways.decoder.stats.decoded_ok
        snap.undecodable_dropped = (
            testbed.gateways.decoder.stats.undecodable_dropped)
        snap.evictions = (enc.cache.store.evictions
                          + testbed.gateways.decoder.cache.store.evictions)
    return snap


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(len(sorted_values), rank) - 1]


def run_serving(spec: ServingSpec) -> Dict[str, Any]:
    """Run one serving simulation; returns the ``serving/v1`` report."""
    catalog = ContentCatalog(spec.catalog_spec())
    schedule = generate_sessions(spec.session_spec(), catalog)
    if not schedule:
        raise ValueError("empty session schedule")

    testbed = build_testbed(spec.experiment_config())
    sim = testbed.sim
    if testbed.gateways is not None:
        # Analysis logs grow per packet; a serving run doesn't read them.
        testbed.gateways.encoder.retain_logs = False
        testbed.gateways.decoder.retain_logs = False

    CatalogFileServer(testbed.server_stack, catalog)
    client_app = FileClient(testbed.client_stack, sim)
    pool = FlowPool(sim, [testbed.client_stack, testbed.server_stack],
                    linger=spec.linger)
    pool.start()

    oracle: Optional[ServingOracle] = None
    if spec.verify and testbed.gateways is not None:
        oracle = ServingOracle(sim, {
            "encoder": testbed.gateways.encoder.cache,
            "decoder": testbed.gateways.decoder.cache,
        })
        oracle.start()

    total = len(schedule)
    warmup_n = min(total - 1, int(total * spec.warmup_fraction))
    state = {
        "done": 0,
        "completed": 0,
        "timeouts": 0,
        "stalled": 0,
        "content_bad": 0,
        "snapshot": None,            # set at the warm-up boundary
        "snapshot_time": None,
    }
    durations_all: List[float] = []
    durations_steady: List[float] = []  # requests scheduled post-warm-up

    def finish_one(outcome: TransferOutcome, order: int) -> None:
        state["done"] += 1
        if outcome.completed:
            state["completed"] += 1
            duration = outcome.duration
            if duration is not None:
                durations_all.append(duration)
                if order >= warmup_n:
                    durations_steady.append(duration)
            if outcome.content_ok is False:
                state["content_bad"] += 1
        elif outcome.stalled:
            state["stalled"] += 1
        if state["done"] == warmup_n and state["snapshot"] is None:
            state["snapshot"] = _snapshot(testbed)
            state["snapshot_time"] = sim.now
        if state["done"] >= total:
            sim.stop()

    def start_fetch(req: Request, order: int) -> None:
        body = catalog.object_bytes(req.content_id)
        conn_box: List[TCPConnection] = []
        outcome = client_app.fetch(
            SERVER_ADDR, catalog.name_of(req.content_id),
            expected_size=len(body),
            expected_content=(body if spec.verify else None),
            conn_sink=conn_box.append,
            on_done=lambda o, order=order: finish_one(o, order))

        def timeout_check() -> None:
            if outcome.finished_at is None and conn_box:
                state["timeouts"] += 1
                conn_box[0].abort("serve_timeout")

        sim.after(spec.fetch_timeout, timeout_check)

    for order, req in enumerate(schedule):
        sim.after(req.time, start_fetch, req, order)

    sim.run(until=spec.time_limit)

    # Requests still pending at the time limit count as unfinished.
    unfinished = total - state["done"]
    if state["snapshot"] is None:
        state["snapshot"] = _CounterSnapshot()
        state["snapshot_time"] = 0.0
    snap: _CounterSnapshot = state["snapshot"]
    final = _snapshot(testbed)
    pool.sweep()

    steady_data = final.data_packets - snap.data_packets
    steady_encoded = final.encoded_packets - snap.encoded_packets
    steady_before = final.bytes_before - snap.bytes_before
    steady_after = final.bytes_after - snap.bytes_after
    durations_steady.sort()
    durations_all.sort()

    report: Dict[str, Any] = {
        "schema": SERVING_SCHEMA,
        "spec": asdict(spec),
        "catalog": catalog.describe(),
        "requests": {
            "total": total,
            "warmup": warmup_n,
            "completed": state["completed"],
            "timeouts": state["timeouts"],
            "stalled": state["stalled"],
            "unfinished": unfinished,
            "content_mismatches": state["content_bad"],
        },
        "steady": {
            "since": state["snapshot_time"],
            "data_packets": steady_data,
            "hit_ratio": (steady_encoded / steady_data
                          if steady_data else 0.0),
            "bytes_saved_ratio": (1.0 - steady_after / steady_before
                                  if steady_before else 0.0),
            "p50_download_s": _percentile(durations_steady, 0.50),
            "p99_download_s": _percentile(durations_steady, 0.99),
            "samples": len(durations_steady),
        },
        "overall": {
            "hit_ratio": (final.encoded_packets / final.data_packets
                          if final.data_packets else 0.0),
            "bytes_saved_ratio": (1.0 - final.bytes_after / final.bytes_before
                                  if final.bytes_before else 0.0),
            "p50_download_s": _percentile(durations_all, 0.50),
            "p99_download_s": _percentile(durations_all, 0.99),
            "undecodable_dropped": final.undecodable_dropped,
        },
        "pool": {
            "high_water": pool.high_water,
            "released": pool.released,
            "open_at_end": pool.open_connections(),
        },
        "sim_time": sim.now,
    }
    if testbed.gateways is not None:
        enc_cache = testbed.gateways.encoder.cache
        dec_cache = testbed.gateways.decoder.cache
        report["cache"] = {
            "bytes_used": enc_cache.store.bytes_used,
            "byte_budget": getattr(enc_cache, "byte_budget",
                                   enc_cache.store.byte_budget),
            "entries": len(enc_cache.store),
            "evictions": (enc_cache.store.evictions
                          + dec_cache.store.evictions),
            "admission_rejected": getattr(enc_cache, "admission_rejected", 0),
            "pressure": (enc_cache.store.bytes_used
                         / max(1, enc_cache.store.byte_budget)),
        }
        occupancy = getattr(enc_cache, "shard_occupancy", None)
        if occupancy is not None:
            report["cache"]["shards"] = occupancy()
    if oracle is not None:
        oracle.check_now()
        report["oracle_checks"] = oracle.checks
    if testbed.telemetry is not None:
        report["telemetry"] = testbed.telemetry.export(
            reason="completed", dump_flight_recorder=False)
    return report


def deterministic_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus its (sampler-timing-sensitive) telemetry block.

    Everything left is a pure function of the spec — the form the
    bit-identity tests and the sweep's serial/parallel comparison use.
    """
    return {key: value for key, value in report.items()
            if key != "telemetry"}
