"""Seeded session generator: who requests what, when.

The serving workload is an open arrival process over a churning user
population, the standard shape of gateway trace models:

* users arrive as a Poisson process (``arrival_rate`` per second);
* each user's *session* is a geometric number of requests (mean
  ``requests_per_user``) separated by exponential think times — so
  users depart when their session ends, and the concurrent-user count
  churns instead of being fixed;
* each request picks a content by the catalog's Zipf popularity.

Generation is a pure function of ``(spec, catalog)``: all randomness
comes from named :class:`~repro.sim.rng.RngRegistry` streams (one for
arrivals, one per user), so the request list is byte-identical across
reruns, machines, and — because it is generated *before* the simulator
runs, never inside it — across sweep worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.rng import RngRegistry
from ..workload.catalog import ContentCatalog


@dataclass(frozen=True)
class SessionSpec:
    """Parameters of the arrival/session process."""

    users: int = 50
    arrival_rate: float = 25.0       # user arrivals per second (Poisson)
    requests_per_user: float = 2.0   # geometric mean session length
    think_time: float = 0.3          # mean seconds between a user's requests
    seed: int = 0
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ValueError("users must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.requests_per_user < 1.0:
            raise ValueError("requests_per_user must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")


@dataclass(frozen=True)
class Request:
    """One user request: issue ``content_id`` at sim time ``time``."""

    time: float
    user: int
    index: int        # position within the user's session
    content_id: int


def generate_sessions(spec: SessionSpec,
                      catalog: ContentCatalog) -> List[Request]:
    """The full, time-ordered request list of a serving run."""
    registry = RngRegistry(spec.seed)
    arrivals = registry.stream("serving:arrivals")
    # Probability a session continues after each request; geometric
    # session length with the requested mean.
    p_continue = 1.0 - 1.0 / spec.requests_per_user
    requests: List[Request] = []
    arrival_time = 0.0
    for user in range(spec.users):
        arrival_time += arrivals.expovariate(spec.arrival_rate)
        # One independent stream per user: adding a user (or a draw
        # inside one session) never perturbs any other user's session.
        rng = registry.stream(f"serving:user:{user}")
        t = arrival_time
        index = 0
        while True:
            requests.append(Request(time=t, user=user, index=index,
                                    content_id=catalog.sample(rng.random())))
            index += 1
            if rng.random() >= p_continue:
                break
            if spec.think_time > 0:
                t += rng.expovariate(1.0 / spec.think_time)
    requests.sort(key=lambda r: (r.time, r.user, r.index))
    if spec.max_requests is not None:
        requests = requests[:spec.max_requests]
    return requests


def session_digest(requests: List[Request]) -> str:
    """Stable content hash of a request list (determinism tests)."""
    import hashlib

    hasher = hashlib.sha256()
    for req in requests:
        hasher.update(
            f"{req.time!r}:{req.user}:{req.index}:{req.content_id};"
            .encode("ascii"))
    return hasher.hexdigest()
