"""Population serving mode: Zipf catalog + sessions + shared sharded cache.

The paper evaluates one synthetic transfer at a time; its deployment
story is a cellular gateway serving a whole subscriber population whose
requests overlap in content.  This package is that evaluation mode:

* :mod:`repro.serving.sessions` — seeded Poisson/think-time session
  generator (who asks for what, when);
* :mod:`repro.serving.engine` — drives the generated request stream as
  concurrent flows through one testbed whose gateways share a
  :class:`repro.core.shardcache.ShardedByteCache`, and reports
  warm-up-excluded steady-state metrics;
* :mod:`repro.serving.sweep` — users x catalog x cache-budget grids
  through the sweep engine, emitting ``BENCH_serving.json``.
"""

from .engine import ServingSpec, run_serving
from .sessions import Request, SessionSpec, generate_sessions
from .sweep import (SERVING_BENCH_SCHEMA, run_serving_grid,
                    serving_bench_payload, validate_bench_serving)

__all__ = [
    "ServingSpec",
    "run_serving",
    "Request",
    "SessionSpec",
    "generate_sessions",
    "SERVING_BENCH_SCHEMA",
    "run_serving_grid",
    "serving_bench_payload",
    "validate_bench_serving",
]
