"""Serving grids: users x catalog x cache budget, serial or parallel.

Rides the PR 2 sweep machinery: grid cells run through
:func:`repro.experiments.sweep.parallel_map` (order-preserving, so the
serial and parallel runs of the same grid produce bit-identical
reports) and results land in ``BENCH_serving.json`` via
:func:`repro.experiments.sweep.append_bench_history`, which the
regression sentinel (``repro bench-diff``) folds into a trajectory.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional

from ..experiments.sweep import append_bench_history, parallel_map
from .engine import ServingSpec, deterministic_report, run_serving

SERVING_BENCH_SCHEMA = "bench_serving/v1"


def _run_cell(spec: ServingSpec) -> Dict[str, Any]:
    """Module-level job so the process pool can pickle it."""
    return deterministic_report(run_serving(spec))


def run_serving_grid(specs: Iterable[ServingSpec],
                     workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Run every spec (optionally across a process pool), in order."""
    return parallel_map(_run_cell, list(specs), workers=workers)


def grid_specs(base: ServingSpec,
               users: Iterable[int],
               contents: Iterable[int],
               cache_bytes: Iterable[int]) -> List[ServingSpec]:
    """The full cross product, in deterministic (sorted-axis) order."""
    return [replace(base, users=u, n_contents=n, cache_bytes=b)
            for u in sorted(set(users))
            for n in sorted(set(contents))
            for b in sorted(set(cache_bytes))]


def serving_bench_payload(reports: List[Dict[str, Any]],
                          name: str = "serving") -> Dict[str, Any]:
    """The ``bench_serving/v1`` document for a finished grid.

    ``summary`` carries the scalars the regression sentinel watches:
    the mean steady-state hit ratio and bytes-saved ratio across cells
    (higher is better), and the worst steady p99 download time (lower
    is better).
    """
    if not reports:
        raise ValueError("no serving reports to summarise")
    hit_ratios = [r["steady"]["hit_ratio"] for r in reports]
    saved = [r["steady"]["bytes_saved_ratio"] for r in reports]
    p99s = [r["steady"]["p99_download_s"] for r in reports
            if r["steady"]["p99_download_s"] is not None]
    cells = []
    for report in reports:
        spec = report["spec"]
        cells.append({
            "users": spec["users"],
            "n_contents": spec["n_contents"],
            "cache_bytes": spec["cache_bytes"],
            "cache_shards": spec["cache_shards"],
            "seed": spec["seed"],
            "steady": report["steady"],
            "requests": report["requests"],
            "pool": report["pool"],
            "sim_time": report["sim_time"],
        })
    return {
        "schema": SERVING_BENCH_SCHEMA,
        "name": name,
        "cells": cells,
        "summary": {
            "cells": len(reports),
            "steady_hit_ratio": sum(hit_ratios) / len(hit_ratios),
            "steady_bytes_saved_ratio": sum(saved) / len(saved),
            "worst_p99_download_s": max(p99s) if p99s else None,
            "total_requests": sum(r["requests"]["total"] for r in reports),
            "completed_requests": sum(r["requests"]["completed"]
                                      for r in reports),
        },
    }


def write_serving_bench(reports: List[Dict[str, Any]], path: str,
                        name: str = "serving") -> Dict[str, Any]:
    """Write (or extend) ``BENCH_serving.json``; returns the document."""
    return append_bench_history(serving_bench_payload(reports, name), path)


def validate_bench_serving(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is valid ``bench_serving/v1``.

    Structural validation for tests and the CI serving-smoke step.
    """
    if not isinstance(doc, dict):
        raise ValueError("bench_serving document must be a dict")
    if doc.get("schema") != SERVING_BENCH_SCHEMA:
        raise ValueError(f"bad schema: {doc.get('schema')!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("cells must be a non-empty list")
    for cell in cells:
        steady = cell.get("steady")
        if not isinstance(steady, dict):
            raise ValueError("cell missing steady section")
        for key in ("hit_ratio", "bytes_saved_ratio", "samples"):
            if key not in steady:
                raise ValueError(f"steady section missing {key!r}")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("missing summary")
    for key in ("steady_hit_ratio", "steady_bytes_saved_ratio", "cells"):
        if key not in summary:
            raise ValueError(f"summary missing {key!r}")
    if not isinstance(doc.get("history", []), list):
        raise ValueError("history must be a list")


def load_bench_serving(path: str) -> Dict[str, Any]:
    """Read and validate a ``BENCH_serving.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_bench_serving(doc)
    return doc
