"""Inline suppression pragmas: ``# lint: disable=RULE(reason)``.

A pragma suppresses matching findings on its own line, or — when the
whole line is just the pragma comment — on the next code line below
it.  The parenthesised reason is *mandatory*: a pragma without one is
itself a finding (``pragma-missing-reason``), so every suppression in
the tree documents why the rule does not apply.

``RULE`` may be a full rule id (``determinism-wallclock``) or a family
prefix (``determinism``).  Several suppressions can share one pragma:
``# lint: disable=rule-a(why a),rule-b(why b)``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .findings import Finding

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=(?P<body>.*)$")
_ITEM_RE = re.compile(
    r"\s*(?P<rule>[A-Za-z0-9_-]+)\s*(?:\((?P<reason>[^)]*)\))?\s*")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression item."""

    rule: str          # rule id or family prefix
    reason: str
    line: int          # line the pragma comment sits on

    def matches(self, rule: str) -> bool:
        return rule == self.rule or rule.startswith(self.rule + "-")


def parse_pragmas(text: str, path: str) -> Tuple[Dict[int, List[Pragma]],
                                                 List[Finding]]:
    """Extract pragmas per *effective* line, plus pragma misuse findings.

    The returned mapping is keyed by the line a suppression applies to:
    the pragma's own line, and additionally the next non-blank line
    when the pragma stands alone on its line.
    """
    by_line: Dict[int, List[Pragma]] = {}
    findings: List[Finding] = []
    lines = text.splitlines()
    for lineno, comment in _comments(text):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        line = lines[lineno - 1] if lineno <= len(lines) else comment
        standalone = line.strip().startswith("#")
        for item in _split_items(match.group("body")):
            parsed = _ITEM_RE.fullmatch(item)
            if parsed is None:
                findings.append(Finding(
                    rule="pragma-missing-reason", path=path, line=lineno,
                    message=f"unparseable pragma item {item.strip()!r}; "
                            "expected RULE(reason)"))
                continue
            rule = parsed.group("rule")
            reason = (parsed.group("reason") or "").strip()
            if not reason:
                findings.append(Finding(
                    rule="pragma-missing-reason", path=path, line=lineno,
                    scope=rule,
                    message=f"pragma disabling {rule!r} has no reason; "
                            "write # lint: disable="
                            f"{rule}(why this is safe)"))
                continue
            pragma = Pragma(rule=rule, reason=reason, line=lineno)
            by_line.setdefault(lineno, []).append(pragma)
            if standalone:
                target = _next_code_line(lines, lineno)
                if target is not None:
                    by_line.setdefault(target, []).append(pragma)
    return by_line, findings


def _comments(text: str) -> List[Tuple[int, str]]:
    """(line, comment text) for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma
    syntax mentioned inside strings and docstrings — such as this
    module's own documentation — from parsing as live pragmas.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        return [(tok.start[0], tok.string) for tok in tokens
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # unparseable files are reported by the engine itself


def _split_items(body: str) -> List[str]:
    """Split ``a(x),b(y)`` on commas outside parentheses."""
    items: List[str] = []
    depth = 0
    token = ""
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            if token.strip():
                items.append(token)
            token = ""
        else:
            token += char
    if token.strip():
        items.append(token)
    return items


def _next_code_line(lines: List[str], pragma_line: int) -> Optional[int]:
    """1-based line number of the next non-blank, non-comment line."""
    for offset, line in enumerate(lines[pragma_line:], start=pragma_line + 1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return None
