"""Static architecture analysis (``repro lint``).

An AST-based lint engine that enforces, before every commit, the
architectural assumptions the rest of the repo only checks at runtime:

* **layering** — the import DAG (core below sim below net below the
  gateways; metrics imported only from above) stays a DAG;
* **determinism** — all randomness flows through named
  :class:`~repro.sim.rng.RngRegistry` streams and nothing reads wall
  clocks into results, so fuzz replay and paired sweeps stay
  bit-identical;
* **hot-path discipline** — the registered encoder/decoder/simulator
  hot functions keep the single-None-check telemetry pattern the
  ``bench_hotpath`` 1.5x gate times;
* **robustness hygiene** — no bare excepts, mutable defaults,
  silently swallowed :class:`InvariantViolation`, or tracked bytecode;
* **whole-program dataflow** (PR 10) — a shared
  :class:`~repro.analysis.project.ProjectModel` (symbol table +
  conservative call graph) feeds three interprocedural families:
  ``taint`` (nondeterminism must not reach serialization sinks),
  ``purity`` (what crosses a process boundary must pickle, workers
  must not mutate module globals) and ``excflow``
  (``InvariantViolation`` may not be swallowed outside the harness).
  ``repro lint graph`` exports the graph and taint traces as
  ``repro.lintgraph/v1``.

Everything is declarative config under ``[tool.repro-lint]`` in
``pyproject.toml``; findings ratchet down through a committed baseline
and line-level ``# lint: disable=RULE(reason)`` pragmas whose reasons
are mandatory.
"""

from .baseline import BASELINE_SCHEMA, load_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import collect_files, format_text, rewrite_baseline, run_lint
from .findings import (FAMILIES, LINT_SCHEMA, Finding, LintReport,
                       validate_lint_report)
from .graphexport import (LINTGRAPH_SCHEMA, build_lintgraph, build_project,
                          format_graph_text, validate_lintgraph)
from .project import ProjectModel
from .registry import RULES, Rule, rule, select_rules

__all__ = [
    "BASELINE_SCHEMA", "FAMILIES", "Finding", "LINT_SCHEMA",
    "LINTGRAPH_SCHEMA", "LintConfig", "LintReport", "ProjectModel",
    "RULES", "Rule", "build_lintgraph", "build_project", "collect_files",
    "format_graph_text", "format_text", "load_baseline", "load_config",
    "rewrite_baseline", "rule", "run_lint", "select_rules",
    "validate_lint_report", "validate_lintgraph", "write_baseline",
]
