"""Static architecture analysis (``repro lint``).

An AST-based lint engine that enforces, before every commit, the
architectural assumptions the rest of the repo only checks at runtime:

* **layering** — the import DAG (core below sim below net below the
  gateways; metrics imported only from above) stays a DAG;
* **determinism** — all randomness flows through named
  :class:`~repro.sim.rng.RngRegistry` streams and nothing reads wall
  clocks into results, so fuzz replay and paired sweeps stay
  bit-identical;
* **hot-path discipline** — the registered encoder/decoder/simulator
  hot functions keep the single-None-check telemetry pattern the
  ``bench_hotpath`` 1.5x gate times;
* **robustness hygiene** — no bare excepts, mutable defaults, or
  silently swallowed :class:`InvariantViolation`.

Everything is declarative config under ``[tool.repro-lint]`` in
``pyproject.toml``; findings ratchet down through a committed baseline
and line-level ``# lint: disable=RULE(reason)`` pragmas whose reasons
are mandatory.
"""

from .baseline import BASELINE_SCHEMA, load_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import collect_files, format_text, rewrite_baseline, run_lint
from .findings import (FAMILIES, LINT_SCHEMA, Finding, LintReport,
                       validate_lint_report)
from .registry import RULES, Rule, rule, select_rules

__all__ = [
    "BASELINE_SCHEMA", "FAMILIES", "Finding", "LINT_SCHEMA", "LintConfig",
    "LintReport", "RULES", "Rule", "collect_files", "format_text",
    "load_baseline", "load_config", "rewrite_baseline", "rule", "run_lint",
    "select_rules", "validate_lint_report", "write_baseline",
]
